"""Mesh deformation with dataset-as-index queries — DLS / OCTOPUS / FLAT.

Run:  python examples/mesh_deformation_analysis.py

A tetrahedral specimen deforms (material-science style); range analyses run
every step.  The connectivity-based indexes answer from the live mesh with
zero maintenance, while the R-tree baseline needs a rebuild per step — the
Section 4.3 argument, live.
"""

import time

import numpy as np

from repro import AABB, DLS, Octopus, RTree
from repro.analysis.reporting import format_table
from repro.mesh import carve_hole, structured_tet_mesh

STEPS = 6
QUERIES_PER_STEP = 15


def analysis_queries(mesh, count, seed):
    rng = np.random.default_rng(seed)
    hull = mesh.hull()
    lo = np.asarray(hull.lo)
    hi = np.asarray(hull.hi)
    for _ in range(count):
        start = rng.uniform(lo, hi)
        end = np.minimum(start + rng.uniform(0.5, 1.5, 3), hi)
        yield AABB(start, end)


def main() -> None:
    mesh = structured_tet_mesh(8, 8, 6)
    print(f"specimen: {len(mesh)} tetrahedra, "
          f"{len(mesh.boundary_cells)} surface cells")

    dls = DLS(mesh)
    octopus = Octopus(mesh)
    rng = np.random.default_rng(13)

    rtree_maintenance = 0.0
    walker_query_time = 0.0
    rtree_query_time = 0.0
    for step in range(STEPS):
        mesh.jitter(0.004, rng)  # deformation happens in the dataset itself

        start = time.perf_counter()
        rtree = RTree(max_entries=16)
        rtree.bulk_load([(c.cid, mesh.bounds(c.cid)) for c in mesh.cells])
        rtree_maintenance += time.perf_counter() - start

        for query in analysis_queries(mesh, QUERIES_PER_STEP, seed=step):
            start = time.perf_counter()
            expected = sorted(rtree.range_query(query))
            rtree_query_time += time.perf_counter() - start
            start = time.perf_counter()
            got = sorted(dls.range_query(query))
            walker_query_time += time.perf_counter() - start
            assert got == expected

    print("\nconvex mesh, deforming every step:")
    print(
        format_table(
            ["approach", "maintenance s", "query s"],
            [
                ["R-tree (rebuild/step)", rtree_maintenance, rtree_query_time],
                ["DLS (walks live mesh)", 0.0, walker_query_time],
            ],
        )
    )

    # Concave meshes: carve a channel and show OCTOPUS staying complete.
    concave = carve_hole(structured_tet_mesh(8, 8, 4), AABB((3, 1, -1), (5, 7, 5)))
    octopus = Octopus(concave)
    complete = 0
    total = 0
    for query in analysis_queries(concave, 30, seed=99):
        total += 1
        if sorted(octopus.range_query(query)) == sorted(concave.scan_range(query)):
            complete += 1
    print(f"\nconcave mesh ({len(concave)} tets): OCTOPUS complete on "
          f"{complete}/{total} queries")


if __name__ == "__main__":
    main()
