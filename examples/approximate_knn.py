"""Approximate kNN through one query session — the accuracy knob.

Run:  PYTHONPATH=src python examples/approximate_knn.py

A :class:`~repro.SpillTree` answers the same ``knn`` calls as every other
index, plus a defeatist (no-backtrack) batch kernel the planner may route
to.  The knob is per call: ``accuracy='exact'`` (the default) keeps the
bit-exact contract, a float is a recall target the session honors only when
the tree's calibrated recall clears it — otherwise the batch silently runs
exact.  This example sweeps the knob from 0.8 to exact over one session and
prints the recall / throughput / leaves-scanned trade the planner is making,
then the session's own telemetry report.
"""

import time

import numpy as np

from repro import QuerySession, SpillTree
from repro.analysis import query_session_report
from repro.analysis.reporting import format_table
from repro.geometry.aabb import AABB

K = 8


def clustered_workload(n: int, m: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(10.0, 90.0, size=(12, 3))
    pts = centers[rng.integers(0, len(centers), size=n)]
    pts = np.clip(pts + rng.normal(0.0, 3.0, size=(n, 3)), 0.0, 100.0)
    probes = pts[rng.integers(0, n, size=m)] + rng.normal(0.0, 0.5, size=(m, 3))
    return pts, [tuple(p) for p in np.clip(probes, 0.0, 100.0)]


def main() -> None:
    pts, probes = clustered_workload(n=20_000, m=2_000)
    tree = SpillTree(tau=0.2, leaf_size=64, split_rule="kd", seed=0)
    tree.bulk_load([(eid, AABB(p, p)) for eid, p in enumerate(pts.tolist())])
    session = QuerySession(tree)
    print(
        f"spill tree: {len(tree):,} clustered points, {tree.leaves:,} leaves, "
        f"calibrated recall >= {tree.estimated_recall(K):.3f} at k={K}"
    )

    sweep = [0.8, 0.9, 0.99, "exact"]
    answers = {}
    rows = []
    for accuracy in sweep:
        before = session.stats.batch
        descents0, leaves0 = before.approx_descents, before.leaves_scanned
        start = time.perf_counter()
        answers[accuracy] = session.knn(probes, K, accuracy=accuracy)
        seconds = time.perf_counter() - start
        stats = session.stats.batch
        routed_approx = stats.approx_descents > descents0
        rows.append(
            [
                str(accuracy),
                "defeatist" if routed_approx else "exact",
                f"{len(probes) / seconds:,.0f}",
                f"{stats.leaves_scanned - leaves0:,}",
                accuracy,  # recall patched below once the oracle is in
            ]
        )

    oracle = answers["exact"]
    for row, accuracy in zip(rows, sweep):
        got = answers[accuracy]
        hits = sum(
            len({e for _, e in want} & {e for _, e in have})
            for want, have in zip(oracle, got)
        )
        row[-1] = f"{hits / (len(oracle) * K):.3f}"

    print(
        "\nOne session, four accuracy targets (a target above the calibrated\n"
        "recall falls back to the exact kernels — same answers, no surprises):\n"
        + format_table(["accuracy", "routed", "qps", "leaves scanned", "recall"], rows)
    )
    print("\nSession telemetry:\n" + query_session_report(session))


if __name__ == "__main__":
    main()
