"""Tour of the join subsystem: specs, the planner, strategies, sharding.

Run:  python examples/join_session.py

The join counterpart of ``examples/query_session.py``: joins are described
as first-class specs, submitted through a JoinSession whose planner routes
them across the strategy registry, with deferred handles, a sharded
executor for large probe sides, vectorized distance refinement, and the
telemetry report that shows where every spec went.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro import (
    AABB,
    DistanceJoinSpec,
    JoinSession,
    PairJoinSpec,
    SelfJoinSpec,
    ShardedJoinExecutor,
    SynapseJoinSpec,
    available_join_strategies,
)
from repro.analysis import join_report
from repro.datasets import generate_neurons
from repro.datasets.points import clustered_boxes, uniform_boxes

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


def main() -> None:
    rng_seed = 7
    cells = uniform_boxes(5_000, UNIVERSE, 0.2, 1.5, seed=rng_seed)
    vessels = [
        (eid + 100_000, box)
        for eid, box in clustered_boxes(3_000, UNIVERSE, clusters=6, seed=rng_seed + 1)
    ]

    # -- 1. the planner: tiny specs scan, big specs ride the grid ------------
    session = JoinSession()
    tiny = SelfJoinSpec(cells[:20])
    big = SelfJoinSpec(cells)
    print("registry:", ", ".join(available_join_strategies()))
    print(f"planner: {len(tiny.items)} items -> {session.plan(tiny).strategy.name}, "
          f"{len(big.items)} items -> {session.plan(big).strategy.name}")

    # -- 2. deferred handles: submit now, one flush on first read ------------
    collisions = session.submit(big)
    contacts = session.submit(PairJoinSpec(cells, vessels))
    print(f"pending specs: {session.pending}")
    print(f"self-join pairs: {len(collisions.result()):,} "
          f"(flush resolved {contacts.resolved and 'both' or 'one'})")
    print(f"cell-vessel contacts: {len(contacts.result()):,}")

    # -- 3. pin a strategy per spec or per session ---------------------------
    via_pbsm = session.run(SelfJoinSpec(cells), strategy="pbsm")
    assert via_pbsm == collisions.result()
    print(f"pbsm agrees with the planner's choice: {len(via_pbsm):,} pairs")

    # -- 4. distance join with vectorized refinement -------------------------
    near = session.run(DistanceJoinSpec(cells, vessels, epsilon=0.5))
    print(f"within 0.5 um: {len(near):,} cell-vessel pairs")

    # -- 5. the flagship workload: synapse detection -------------------------
    tissue = generate_neurons(neurons=40, segments_per_neuron=30, seed=rng_seed)
    synapses = session.run(SynapseJoinSpec(tissue, epsilon=0.1))
    print(f"synapses at eps=0.1: {len(synapses)} "
          f"(first at {tuple(round(c, 1) for c in synapses[0].location) if synapses else '-'})")

    # -- 6. shard the probe side across a fork pool --------------------------
    sharded = JoinSession(executor=ShardedJoinExecutor(workers=4, min_shard=512))
    sharded_pairs = sharded.run(SelfJoinSpec(cells))
    assert sharded_pairs == collisions.result()
    print(f"sharded executor agrees: {len(sharded_pairs):,} pairs, "
          f"routing {sharded.stats.executor_runs}")

    # -- 7. telemetry --------------------------------------------------------
    print("\njoin telemetry:")
    print(join_report(session))


if __name__ == "__main__":
    main()
