"""Serving-tier tour: async clients, one shared worker pool, one index.

A steered simulation (§3.3) is a serving problem: while the solver owns the
model, analysis dashboards, collision monitors and steering probes all want
answers *now*, concurrently.  The serving tier stacks three pieces for that:

* **awaitable handles** — ``await handle`` parks a client task until its
  flush settles it; nothing blocks the event loop;
* **flush policy** — concurrent submissions coalesce: a quiet loop flushes
  immediately (``idle``), a busy one batches until the latency budget
  (``deadline``) or the queue bound (``full``) trips;
* **worker pool** — flushes shard across long-lived processes that attach
  the index as a shared-memory snapshot once; steady-state requests ship
  only probe arrays and result ids across the process boundary.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

import asyncio
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro import (
    AABB,
    FlushPolicy,
    SelfJoinSpec,
    ServingSession,
    UniformGrid,
    WorkerPool,
)
from repro.analysis.session_report import session_report

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
CLIENTS = 8
ROUNDS = 40


def build_world(n: int = 50_000, seed: int = 11):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.0, 99.0, size=(n, 3))
    hi = lo + rng.uniform(0.1, 1.0, size=(n, 3))
    items = [(eid, AABB(l, h)) for eid, (l, h) in enumerate(zip(lo, hi))]
    grid = UniformGrid(universe=UNIVERSE)
    grid.bulk_load(items)
    return items, grid


async def dashboard(serving: ServingSession, cid: int) -> tuple[int, float]:
    """One client: a monitor polling its region plus nearest neighbours."""
    rng = random.Random(1_000 + cid)
    worst = 0.0
    for _ in range(ROUNDS):
        corner = [rng.uniform(0.0, 92.0) for _ in range(3)]
        window = AABB(corner, [c + 8.0 for c in corner])
        start = time.perf_counter()
        ids = await serving.range_query(window)
        await serving.knn(tuple(c + 4.0 for c in corner), k=8)
        worst = max(worst, time.perf_counter() - start)
        assert all(isinstance(eid, int) for eid in ids)
    return cid, worst


async def collision_monitor(serving: ServingSession, items) -> int:
    """A heavier client: the §2.1 collision self-join over a model slice."""
    slice_items = tuple(items[:4_000])
    pairs = await serving.join(SelfJoinSpec(slice_items))
    return len(pairs)


async def main() -> None:
    items, grid = build_world()
    print(f"world: {len(items):,} boxes in a uniform grid")

    # At least two workers so the shard planner engages the pool even on
    # single-core hosts (WorkerPool() alone sizes to the CPU count).
    with WorkerPool(workers=max(2, os.cpu_count() or 1)) as pool:
        policy = FlushPolicy(max_batch=256, max_delay=0.005)
        async with ServingSession(
            grid, pool=pool, policy=policy, min_shard=4, join_min_shard=500
        ) as serving:
            start = time.perf_counter()
            results = await asyncio.gather(
                *(dashboard(serving, cid) for cid in range(CLIENTS)),
                collision_monitor(serving, items),
            )
            elapsed = time.perf_counter() - start

            *dashboards, collisions = results
            print(
                f"\n{CLIENTS} dashboards x {ROUNDS} rounds + 1 collision join "
                f"in {elapsed:.2f}s"
            )
            print(f"collision pairs in the model slice: {collisions:,}")
            worst = max(latency for _, latency in dashboards)
            print(f"worst single dashboard round: {worst * 1e3:.1f} ms")
            print(
                f"index snapshots exported: {pool.exports} "
                f"({pool.segment_bytes / 1e6:.1f} MB shared, "
                f"{pool.shards_run} shards run)"
            )

            print("\nquery session telemetry:")
            print(session_report(serving.queries))
            print("\njoin session telemetry:")
            print(session_report(serving.joins))


if __name__ == "__main__":
    asyncio.run(main())
