"""Neural plasticity with in-situ monitoring — the paper's Section 4 workload.

Run:  python examples/neural_plasticity_monitoring.py

Every element moves a little every step (mean 0.04 um, the paper's measured
trace).  The simulation is driven twice: once maintaining an R-tree with
per-element updates, once with the adaptive grid index that applies the
Section 4.1 economics each step.  The per-step timeline (Figure 1) and the
strategy decisions are printed.
"""

from repro import AABB, AdaptiveSimulationIndex, LinearScan, RTree, TimeSteppedSimulation, UniformGrid
from repro.analysis.reporting import format_table
from repro.core.amortization import calibrate
from repro.datasets import generate_neurons
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import PlasticityMotion
from repro.sim import PlasticityModel, RangeMonitor

STEPS = 5


def run_simulation(dataset, index, maintenance):
    model = PlasticityModel(
        dict(dataset.items), dataset.universe, neighbourhood_queries=16, seed=3
    )
    monitor = RangeMonitor(dataset.universe, queries_per_step=40, extent=1.5, seed=4)
    sim = TimeSteppedSimulation(model, index, monitors=[monitor], maintenance=maintenance)
    reports = sim.run(STEPS)
    return reports


def main() -> None:
    dataset = generate_neurons(neurons=120, segments_per_neuron=60, seed=2)
    print(f"tissue model: {len(dataset)} segments; every one moves every step")

    # Calibrate the Section 4.1 economics on this machine and dataset.
    queries = random_range_queries(10, dataset.universe, extent=1.5, seed=5)
    moves = PlasticityMotion(universe=dataset.universe, seed=6).step(dict(dataset.items))
    costs = calibrate(
        index_factory=lambda: UniformGrid(universe=dataset.universe),
        items=dataset.items,
        moved_items=moves,
        query_boxes=queries,
        scan_factory=LinearScan,
    )
    print(
        f"calibrated: update {costs.update_per_element * 1e6:.1f} us/elem, "
        f"rebuild {costs.rebuild_fixed * 1e3:.1f} ms, "
        f"crossover at {costs.crossover_fraction():.0%} changed"
    )

    for name, index, maintenance in (
        ("R-tree, per-element updates", RTree(max_entries=16), "update"),
        (
            "adaptive grid (Section 5 design point)",
            AdaptiveSimulationIndex(dataset.universe, costs=costs),
            "adaptive",
        ),
    ):
        reports = run_simulation(dataset, index, maintenance)
        rows = [
            [r.step, r.compute_seconds, r.maintenance_seconds, r.monitor_seconds, r.strategy]
            for r in reports
        ]
        print(f"\n=== {name} ===")
        print(
            format_table(
                ["step", "compute s", "maintain s", "monitor s", "strategy"], rows
            )
        )
        total = sum(r.total_seconds for r in reports)
        print(f"total: {total:.3f} s for {STEPS} steps")


if __name__ == "__main__":
    main()
