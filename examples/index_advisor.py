"""Index advisor: the Section 4.1 economics as a decision tool.

Run:  python examples/index_advisor.py

Calibrates update / rebuild / query costs for a dataset on the current
machine, then prints the strategy map: for each (changed fraction, queries
per step) cell, whether per-element updates, a rebuild, or no index at all is
cheapest — the paper's "rebuilding an index may no longer pay off" argument,
made executable.
"""

from repro import LinearScan, RTree, UniformGrid
from repro.analysis.reporting import format_table
from repro.core.amortization import Strategy, UpdateEconomics, calibrate
from repro.datasets import generate_neurons
from repro.datasets.queries import random_range_queries
from repro.datasets.trajectories import PlasticityMotion

CHANGED_FRACTIONS = (0.01, 0.1, 0.38, 0.7, 1.0)
QUERY_COUNTS = (0, 1, 10, 100, 1000)


def main() -> None:
    dataset = generate_neurons(neurons=150, segments_per_neuron=60, seed=17)
    queries = random_range_queries(10, dataset.universe, extent=1.5, seed=18)
    moves = PlasticityMotion(universe=dataset.universe, seed=19).step(dict(dataset.items))

    for label, factory in (
        ("R-tree", lambda: RTree(max_entries=16)),
        ("uniform grid", lambda: UniformGrid(universe=dataset.universe)),
    ):
        costs = calibrate(
            index_factory=factory,
            items=dataset.items,
            moved_items=moves,
            query_boxes=queries,
            scan_factory=LinearScan,
        )
        economics = UpdateEconomics(costs)
        print(f"\n=== {label} ({len(dataset)} elements) ===")
        print(
            f"update {costs.update_per_element * 1e6:.2f} us/elem | "
            f"rebuild {costs.rebuild_fixed * 1e3:.1f} ms | "
            f"query {costs.query_indexed * 1e3:.2f} ms indexed vs "
            f"{costs.query_scan * 1e3:.2f} ms scanned"
        )
        print(f"update-vs-rebuild crossover: {costs.crossover_fraction():.0%} changed "
              f"(paper measured 38% for its R-tree setup)")
        print(f"queries/step needed to amortize any index: "
              f"{economics.amortization_queries():.1f}")

        header = ["changed \\ queries"] + [str(q) for q in QUERY_COUNTS]
        rows = []
        for fraction in CHANGED_FRACTIONS:
            row = [f"{fraction:.0%}"]
            for query_count in QUERY_COUNTS:
                row.append(economics.choose(fraction, query_count).value)
            rows.append(row)
        print(format_table(header, rows))


if __name__ == "__main__":
    main()
