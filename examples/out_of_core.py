"""Tour of the out-of-core subsystem: budget, spill joins, external builds.

Run:  python examples/out_of_core.py

The paper's datasets "exceed the memory of a single machine by definition".
This example runs the same workloads three ways under a deliberately tiny
memory budget:

1. a spatial join whose working set exceeds the budget — the JoinSession
   planner routes it to the ``pbsm_spill`` strategy, which partitions both
   sides into tile runs, spills them through the page store, and streams
   them back, returning the exact in-memory pair set;
2. an STR bulk load too large for the budget — the chunked external build
   sort-spills entry runs and merges them so the R-tree (and the
   disk-resident R-tree) never hold more than the budget while building;
3. a governed QuerySession — oversized query batches execute in
   budget-sized chunks with identical results.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import (
    DiskRTree,
    JoinSession,
    MemoryBudget,
    PairJoinSpec,
    QuerySession,
    RTree,
    pbsm_working_set_bytes,
)
from repro.analysis import join_report, session_report
from repro.datasets.points import uniform_boxes
from repro.geometry.aabb import AABB

UNIVERSE = AABB((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


def main() -> None:
    side_a = uniform_boxes(20_000, UNIVERSE, 0.1, 1.0, seed=1)
    side_b = [
        (eid + 1_000_000, box)
        for eid, box in uniform_boxes(20_000, UNIVERSE, 0.1, 1.0, seed=2)
    ]

    # -- 1. a join bigger than the budget ------------------------------------
    working_set = pbsm_working_set_bytes(len(side_a), len(side_b))
    budget = working_set // 4
    print(f"estimated join working set: {working_set:,}B; budget: {budget:,}B (25%)")
    with JoinSession(budget=budget) as session:
        pairs = session.run(PairJoinSpec(side_a, side_b))
        print(f"pairs: {len(pairs):,} (exact — every strategy returns the same set)")
        print(join_report(session))

    # Sanity: the unbudgeted in-memory PBSM agrees pair-for-pair.
    assert pairs == JoinSession(strategy="pbsm").run(PairJoinSpec(side_a, side_b))
    print("in-memory PBSM agrees pair-for-pair\n")

    # -- 2. an index build bigger than the budget ----------------------------
    build_budget = MemoryBudget(256 * 1024)
    tree = RTree()
    # `iter(...)`: the external build consumes items streaming; nothing
    # requires the dataset to be materialized as a list.
    tree.bulk_load_external(iter(side_a), budget=build_budget)
    print(
        f"external STR build: {len(tree):,} items, height {tree.height}, "
        f"spilled {tree.counters.spill_bytes_written:,}B of entry runs, "
        f"budget high-water {build_budget.high_water:,}B"
    )
    disk = DiskRTree()
    disk.bulk_load_external(iter(side_a), budget=256 * 1024)
    print(f"external DiskRTree build: {len(disk):,} items over {len(disk.store):,} pages")

    # -- 3. a governed query session -----------------------------------------
    governed = QuerySession(tree, budget=64 * 1024)
    probe_lo = [(x, 50.0, 50.0) for x in range(0, 100, 1)]
    windows = [AABB(lo, tuple(c + 5.0 for c in lo)) for lo in probe_lo]
    hits = governed.range_query(windows)
    print(f"\ngoverned query session: {sum(map(len, hits)):,} hits across {len(windows)} windows")
    print(session_report(governed))


if __name__ == "__main__":
    main()
