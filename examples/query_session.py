"""QuerySession tour: declarative queries, deferred handles, sharded flush.

The analysis phases of §2.2 interleave *deciding what to ask* with *reading
answers*: a monitor walks its regions of interest, a detection pass probes
every branch, a visualizer samples windows — and none of them should care
when or how the queries actually execute.  ``QuerySession`` decouples the
two:

* **submit** — queries are plain values (``RangeQuery`` / ``KNNQuery`` /
  ``PointQuery``) dropped into the session's buffer; each returns a
  deferred ``ResultHandle`` immediately.
* **flush** — the first ``handle.result()`` (or an explicit ``flush()``)
  executes everything buffered as grouped batches through the session's
  executors; reading any handle resolves them all.
* **executors** — the same workload can run inline (scalar), through the
  vectorized batch kernels, or sharded across a process pool, without the
  submitting code changing at all.

Run with::

    PYTHONPATH=src python examples/query_session.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro import (
    AABB,
    KNNQuery,
    PointQuery,
    QuerySession,
    RangeQuery,
    ShardedExecutor,
    UniformGrid,
)
from repro.analysis import session_report
from repro.datasets.neuroscience import generate_neurons


def main() -> None:
    dataset = generate_neurons(neurons=150, segments_per_neuron=100, seed=19)
    index = UniformGrid(universe=dataset.universe)
    index.bulk_load(dataset.items)
    print(f"indexed {len(dataset.items):,} segments")

    # -- 1. deferred handles: accumulate between "simulation phases" --------
    session = QuerySession(index)
    lo = np.asarray(dataset.universe.lo)
    hi = np.asarray(dataset.universe.hi)
    rng = np.random.default_rng(3)

    handles = []
    for i in range(12):  # a monitor's regions of interest, tagged
        corner = rng.uniform(lo, hi - 4.0)
        handles.append(
            session.submit(RangeQuery(AABB(corner, corner + 4.0), tag=f"roi-{i}"))
        )
    probe = session.submit(KNNQuery(tuple((lo + hi) / 2.0), k=8, tag="center-probe"))
    stab = session.submit(PointQuery(tuple(dataset.items[0][1].center()), tag="stab"))
    print(f"buffered {session.pending} queries — nothing executed yet")

    # The first read flushes the whole buffer as grouped batches.
    densities = {h.query.tag: len(h.result()) for h in handles}
    busiest = max(densities, key=densities.get)
    print(f"busiest region: {busiest} with {densities[busiest]} segments")
    print(f"center probe nearest id: {probe.result()[0][1]}  (already resolved: {probe.resolved})")
    print(f"stabbing hit count: {len(stab.result())}")

    # -- 2. the same analysis sweep, single-process vs sharded --------------
    m = 10_000
    q_lo = rng.uniform(lo, hi - 0.5, size=(m, 3))
    sweep = np.stack([q_lo, q_lo + 0.5], axis=1)

    single = QuerySession(index)
    single.range_query(sweep)  # warm the index's packed snapshot
    start = time.perf_counter()
    hits = single.range_query(sweep)
    single_s = time.perf_counter() - start

    sharded = QuerySession(index, executor=ShardedExecutor(workers=4))
    start = time.perf_counter()
    hits_sharded = sharded.range_query(sweep)
    sharded_s = time.perf_counter() - start
    assert [sorted(a) for a in hits] == [sorted(b) for b in hits_sharded]

    print(
        f"analysis sweep of {m:,} windows: single-process {single_s * 1000:.0f} ms, "
        f"sharded {sharded_s * 1000:.0f} ms ({single_s / sharded_s:.2f}x on "
        f"{os.cpu_count()} cores — sharding needs >= 2 to pay off)"
    )
    print("\ndeferred session:", session_report(session), sep="\n")
    print("\nsharded session:", session_report(sharded), sep="\n")


if __name__ == "__main__":
    main()
