"""Indexing the human arterial tree — the multi-resolution case.

Run:  python examples/arterial_tree_indexing.py

The paper's CFD example ("the human arterial tree") is the workload where a
single grid resolution fails: vessel radii span an order of magnitude or
more, so cells sized for arterioles replicate the aorta everywhere and cells
sized for the aorta bury arterioles in candidates.  The multi-resolution
grid (§3.3: "several uniform grids each with a different resolution") assigns
each vessel to the level matching its calibre.
"""

from repro import MultiResolutionGrid, UniformGrid
from repro.analysis.reporting import format_table
from repro.datasets import generate_arterial_tree, random_range_queries
from repro.instrumentation import MemoryCostModel


def main() -> None:
    tree = generate_arterial_tree(root_radius=2.0, min_radius=0.12, seed=4)
    radii = [c.radius for c in tree.capsules.values()]
    print(
        f"arterial tree: {len(tree)} vessel segments, radii "
        f"{min(radii):.2f}-{max(radii):.2f} (x{max(radii) / min(radii):.0f} span), "
        f"{max(tree.neuron_of.values())} branch generations"
    )

    queries = random_range_queries(100, tree.universe, extent=4.0, seed=5)
    model = MemoryCostModel()
    rows = []
    reference = None
    contenders = {
        "fine grid (arteriole-sized cells)": UniformGrid(
            universe=tree.universe, cell_size=0.6
        ),
        "coarse grid (aorta-sized cells)": UniformGrid(
            universe=tree.universe, cell_size=10.0
        ),
        "multi-resolution grid (4 levels)": MultiResolutionGrid(
            universe=tree.universe, levels=4
        ),
    }
    for name, index in contenders.items():
        index.bulk_load(tree.items)
        before = index.counters.snapshot()
        hits = sum(len(index.range_query(q)) for q in queries)
        delta = index.counters.diff(before)
        if reference is None:
            reference = hits
        assert hits == reference
        rows.append([name, delta.elem_tests, delta.cells_probed, model.seconds(delta) * 1e3])

    print("\n100 range queries (4 um windows):")
    print(format_table(["index", "elem tests", "cells probed", "modeled ms"], rows))

    multi = contenders["multi-resolution grid (4 levels)"]
    print(f"\nmulti-grid level populations: {multi.level_populations()}")
    print("(trunk vessels sit in coarse levels, arterioles in fine ones)")


if __name__ == "__main__":
    main()
