"""Continuous queries over a plasticity-style workload.

Run:  PYTHONPATH=src python examples/continuous_monitoring.py

The paper's Section 4 workload re-runs the same analyses every step against
neurons that all move a little.  Here the analyses are *standing*: region
monitors, a nearest-neighbour probe and a within-ε contact join are
subscribed once to a :class:`~repro.continuous.ContinuousSession`, and each
simulation tick yields exact deltas — who entered each region, which
contacts formed and dissolved — maintained by whichever policy the planner
routes to (recompute / incremental / predictive).  The same session then
feeds an async :class:`~repro.serving.ContinuousServing` subscriber, the
dashboard-facing shape of the serving tier.
"""

import asyncio

from repro import (
    AABB,
    ContinuousJoinSpec,
    ContinuousKNNQuery,
    ContinuousRangeQuery,
    ContinuousServing,
    ContinuousSession,
)
from repro.analysis.session_report import continuous_report
from repro.datasets import generate_neurons
from repro.datasets.trajectories import PlasticityMotion, apply_moves

STEPS = 12


def main() -> None:
    dataset = generate_neurons(neurons=80, segments_per_neuron=40, seed=2)
    live = dict(dataset.items)
    print(f"tissue model: {len(live)} segments; plasticity motion every step")

    session = ContinuousSession(live.items(), universe=dataset.universe)
    lo, hi = dataset.universe.lo, dataset.universe.hi
    mid = [(l + h) / 2 for l, h in zip(lo, hi)]
    window = AABB(lo, mid)  # one octant of the tissue
    region = session.subscribe(ContinuousRangeQuery(window, tag="octant"))
    probe = session.subscribe(ContinuousKNNQuery(mid, k=8, tag="soma-probe"))
    contacts = session.subscribe(ContinuousJoinSpec(epsilon=0.05, tag="contacts"))
    print(
        f"subscribed: |octant|={len(region.result)} "
        f"|knn|={len(probe.result)} |contacts|={len(contacts.result)}"
    )

    # Full plasticity motion (every element moves) would route everything to
    # recompute — the paper's own throwaway argument.  A 15% moving fraction
    # is the regime where maintenance wins: the planner sends the join to
    # the incremental policy and the range/kNN probes to the predictive one.
    motion = PlasticityMotion(universe=dataset.universe, moving_fraction=0.15, seed=6)
    for step in range(STEPS):
        moves = motion.step(live)
        apply_moves(live, moves)
        deltas = session.tick(moves)
        formed = len(deltas[contacts.cqid].added)
        dissolved = len(deltas[contacts.cqid].removed)
        print(
            f"step {step:2d}: octant {len(region.result):4d} "
            f"({deltas[region.cqid]!s:>24}), contacts {len(contacts.result):4d} "
            f"(+{formed}/-{dissolved}), routed {region.routed}/{contacts.routed}"
        )

    print("\n" + continuous_report(session))

    # The push tier: an async subscriber receives the same deltas as a
    # stream while the simulation keeps ticking.
    async def dashboard() -> None:
        async with ContinuousServing(session) as serving:
            stream = serving.stream(region)
            for _ in range(3):
                moves = motion.step(live)
                apply_moves(live, moves)
                await serving.tick(moves)
                delta = await stream.get()
                print(
                    f"pushed delta tick={delta.tick}: "
                    f"+{len(delta.added)}/-{len(delta.removed)} "
                    f"-> |octant|={len(region.result)}"
                )

    asyncio.run(dashboard())


if __name__ == "__main__":
    main()
