"""Synapse detection during neuron co-growth — the paper's join application.

Run:  python examples/synapse_detection.py

Grows neuron morphologies step by step (inserting new capsule segments into
the index) and periodically runs the within-epsilon self-join that places
synapses, comparing the join algorithms the paper surveys on the same
workload.
"""

import time

from repro import JoinSession, SynapseJoinSpec, UniformGrid, TimeSteppedSimulation
from repro.analysis.reporting import format_table
from repro.datasets import generate_neurons
from repro.sim import GrowthModel


def main() -> None:
    # Start from small stubs and let them grow into each other.
    dataset = generate_neurons(neurons=60, segments_per_neuron=5, seed=7)
    model = GrowthModel(dataset, epsilon=0.1, join_every=0, seed=8)
    index = UniformGrid(universe=dataset.universe)
    sim = TimeSteppedSimulation(model, index, maintenance="update")

    print(f"growing {len(set(dataset.neuron_of.values()))} neurons...")
    sim.run(25)
    print(f"tissue now has {len(dataset)} segments "
          f"(+{sum(model.grown)} grown during co-growth)")

    # Detect synapses with every registry strategy; all must agree.
    rows = []
    reference = None
    for name in ("nested_loop", "sweepline", "pbsm", "touch", "tree", "grid"):
        session = JoinSession(strategy=name)
        start = time.perf_counter()
        synapses = session.run(SynapseJoinSpec(dataset, epsilon=0.1))
        elapsed = time.perf_counter() - start
        keys = [(s.segment_a, s.segment_b) for s in synapses]
        if reference is None:
            reference = keys
        assert keys == reference, f"{name} disagrees"
        rows.append([name, len(synapses), session.counters.comparisons, elapsed])

    print("\nsynapse-detection join (epsilon = 0.1 um):")
    print(format_table(["strategy", "synapses", "comparisons", "wall s"], rows))

    by_pair: dict[tuple[int, int], int] = {}
    for synapse in JoinSession().run(SynapseJoinSpec(dataset, epsilon=0.1)):
        pair = (synapse.neuron_a, synapse.neuron_b)
        by_pair[pair] = by_pair.get(pair, 0) + 1
    connected = sorted(by_pair.items(), key=lambda kv: -kv[1])[:5]
    print("\nmost connected neuron pairs:")
    for (a, b), count in connected:
        print(f"  neuron {a} <-> neuron {b}: {count} synapses")


if __name__ == "__main__":
    main()
