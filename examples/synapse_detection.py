"""Synapse detection during neuron co-growth — the paper's join application.

Run:  python examples/synapse_detection.py

Grows neuron morphologies step by step (inserting new capsule segments into
the index) and periodically runs the within-epsilon self-join that places
synapses, comparing the join algorithms the paper surveys on the same
workload.
"""

import time

from repro import UniformGrid, TimeSteppedSimulation
from repro.analysis.reporting import format_table
from repro.datasets import generate_neurons
from repro.instrumentation import Counters
from repro.joins import (
    SynapseDetector,
    grid_join,
    nested_loop_join,
    pbsm_join,
    sweepline_join,
    touch_join,
)
from repro.sim import GrowthModel


def main() -> None:
    # Start from small stubs and let them grow into each other.
    dataset = generate_neurons(neurons=60, segments_per_neuron=5, seed=7)
    model = GrowthModel(dataset, epsilon=0.1, join_every=0, seed=8)
    index = UniformGrid(universe=dataset.universe)
    sim = TimeSteppedSimulation(model, index, maintenance="update")

    print(f"growing {len(set(dataset.neuron_of.values()))} neurons...")
    sim.run(25)
    print(f"tissue now has {len(dataset)} segments "
          f"(+{sum(model.grown)} grown during co-growth)")

    # Detect synapses with each join algorithm; all must agree.
    algorithms = {
        "nested loop": nested_loop_join,
        "sweep line": sweepline_join,
        "PBSM": pbsm_join,
        "TOUCH": touch_join,
        "grid join": grid_join,
    }
    rows = []
    reference = None
    for name, algorithm in algorithms.items():
        detector = SynapseDetector(dataset, epsilon=0.1)
        start = time.perf_counter()
        synapses = detector.detect(box_join=algorithm)
        elapsed = time.perf_counter() - start
        keys = sorted((s.segment_a, s.segment_b) for s in synapses)
        if reference is None:
            reference = keys
        assert keys == reference, f"{name} disagrees"
        rows.append([name, len(synapses), detector.counters.comparisons, elapsed])

    print("\nsynapse-detection join (epsilon = 0.1 um):")
    print(format_table(["algorithm", "synapses", "comparisons", "wall s"], rows))

    by_pair: dict[tuple[int, int], int] = {}
    detector = SynapseDetector(dataset, epsilon=0.1)
    for synapse in detector.detect():
        pair = (synapse.neuron_a, synapse.neuron_b)
        by_pair[pair] = by_pair.get(pair, 0) + 1
    connected = sorted(by_pair.items(), key=lambda kv: -kv[1])[:5]
    print("\nmost connected neuron pairs:")
    for (a, b), count in connected:
        print(f"  neuron {a} <-> neuron {b}: {count} synapses")


if __name__ == "__main__":
    main()
