"""Batched synapse-style analysis through the QuerySession API.

The paper's motivating workload (§2.2): after every simulation step,
analyses fire enormous numbers of small spatial queries — synapse detection
probes the neighbourhood of *every* neuron branch, and in-situ visualization
samples a whole grid of windows.  This example runs that workload through
the library's single public query surface, :class:`repro.QuerySession`:

1. index a neuron dataset's ~10k branch segments in a UniformGrid,
2. probe the reach of every segment in ONE session call (the
   synapse-candidate sweep that `repro.joins.synapse` refines into touches),
3. sample a 16x16x16 visualization frame in one more call,
4. find each probe's nearest neighbours in a third.

The session routes each batch to an executor (scalar / vectorized kernels /
sharded pool) by its cost heuristic; the closing report shows the routing.

Run with::

    PYTHONPATH=src python examples/batch_analysis.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro import AABB, QuerySession, UniformGrid
from repro.analysis import session_report
from repro.datasets.neuroscience import generate_neurons
from repro.geometry.aabb import boxes_to_array


def main() -> None:
    dataset = generate_neurons(neurons=120, segments_per_neuron=80, seed=7)
    items = dataset.items
    print(f"dataset: {len(items):,} branch segments, universe {dataset.universe}")

    index = UniformGrid(universe=dataset.universe)
    index.bulk_load(items)
    session = QuerySession(index)

    # -- 1. synapse-candidate sweep: probe every segment's reach ------------
    reach = 0.5  # spine length: how far a synapse can bridge
    probes = boxes_to_array([box.expanded(reach) for _, box in items])
    start = time.perf_counter()
    candidates = session.range_query(probes)
    sweep_seconds = time.perf_counter() - start
    pair_count = sum(len(c) - 1 for c in candidates)  # minus the probe itself
    print(
        f"synapse sweep: {len(probes):,} probes -> {pair_count:,} candidate pairs "
        f"in {sweep_seconds * 1000:.0f} ms "
        f"({len(probes) / sweep_seconds:,.0f} queries/s)"
    )

    # -- 2. one visualization frame in a single batch -----------------------
    resolution = 16
    lo = np.asarray(dataset.universe.lo)
    side = (np.asarray(dataset.universe.hi) - lo) / resolution
    cells = np.indices((resolution,) * 3).reshape(3, -1).T * side + lo
    frame_boxes = np.stack([cells, cells + side], axis=1)
    counts = [len(hits) for hits in session.range_query(frame_boxes)]
    frame = np.array(counts).reshape(resolution, resolution, resolution)
    print(
        f"visualization frame: {frame_boxes.shape[0]:,} windows, "
        f"densest cell holds {frame.max()} segments"
    )

    # -- 3. nearest neighbours at unpredictable probe locations -------------
    rng = np.random.default_rng(11)
    probes_knn = rng.uniform(dataset.universe.lo, dataset.universe.hi, size=(500, 3))
    neighbours = session.knn(probes_knn, k=5)
    mean_nn = float(np.mean([dists[0][0] for dists in neighbours if dists]))
    print(f"kNN: {len(probes_knn)} probe points, mean distance to nearest segment {mean_nn:.3f}")

    print(session_report(session))


if __name__ == "__main__":
    main()
