"""N-body structure formation — the paper's cosmology example.

Run:  python examples/nbody_cosmology.py

"The position of each celestial object at time step t(i+1) has to be computed
based on the gravitational field (and thus the locations) of its neighbors at
time step t(i)."  Gravity comes from a Barnes–Hut octree rebuilt every step
(a throwaway index, exactly the Section 4 economics); an in-situ
visualization monitor samples the density field as clusters form.
"""

import numpy as np

from repro import AABB, TimeSteppedSimulation, UniformGrid
from repro.analysis.reporting import format_table
from repro.sim import NBodyModel, VisualizationMonitor
from repro.sim.nbody import direct_forces, BarnesHutTree

N_BODIES = 300
STEPS = 15


def main() -> None:
    rng = np.random.default_rng(11)
    universe = AABB((0, 0, 0), (20, 20, 20))
    positions = rng.uniform(4, 16, (N_BODIES, 3))
    velocities = rng.normal(0, 0.05, (N_BODIES, 3))
    masses = rng.uniform(0.5, 2.0, N_BODIES)

    # Sanity: Barnes-Hut matches the direct sum on the initial state.
    tree = BarnesHutTree(positions, masses, theta=0.5)
    approx = np.stack([tree.acceleration_on(i) for i in range(N_BODIES)])
    exact = direct_forces(positions, masses)
    error = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
    print(f"Barnes-Hut (theta=0.5) vs direct sum: {error:.2%} relative error")

    model = NBodyModel(positions, velocities, masses, universe, dt=0.01, method="barnes-hut")
    monitor = VisualizationMonitor(universe, resolution=4)
    sim = TimeSteppedSimulation(
        model, UniformGrid(universe=universe), monitors=[monitor], maintenance="rebuild"
    )
    reports = sim.run(STEPS)

    rows = [
        [r.step, r.compute_seconds, r.maintenance_seconds, r.monitor_seconds]
        for r in reports[:: max(STEPS // 5, 1)]
    ]
    print("\nsimulation timeline (sampled steps):")
    print(format_table(["step", "compute s", "rebuild s", "monitor s"], rows))

    # Clustering: the densest visualization cell should gain mass over time.
    first = monitor.frames[0]
    last = monitor.frames[-1]
    print(f"\ndensest cell, step 0:  {first.max()} bodies")
    print(f"densest cell, step {STEPS - 1}: {last.max()} bodies")
    print(f"kinetic energy: {model.kinetic_energy():.3f}")


if __name__ == "__main__":
    main()
