"""Quickstart: index a synthetic neuron dataset and ask the paper's queries.

Run:  python examples/quickstart.py

Covers the three query types Section 2.2 identifies — range queries, nearest
neighbours, and the spatial join — and prints the operation accounting that
the paper's figures are built on.
"""

from repro import AABB, Counters, MemoryCostModel, RTree, UniformGrid
from repro.analysis.breakdown import memory_breakdown_report
from repro.datasets import generate_neurons, range_queries_for_selectivity
from repro.joins import SynapseDetector


def main() -> None:
    # 1. A simulation-science dataset: branched neuron morphologies made of
    #    capsule segments (the paper's Blue Brain workload, scaled down).
    dataset = generate_neurons(neurons=100, segments_per_neuron=50, seed=1)
    print(f"dataset: {len(dataset)} segments in universe {dataset.universe}")

    # 2. Range queries — "in-situ visualization ... at locations that cannot
    #    be anticipated".  Compare the classic R-tree with the paper's
    #    proposed uniform grid.
    queries = range_queries_for_selectivity(
        50, dataset.universe, selectivity=1e-4, seed=2
    )
    rtree = RTree(max_entries=16)
    rtree.bulk_load(dataset.items)
    grid = UniformGrid()
    grid.bulk_load(dataset.items)

    rtree_hits = sum(len(rtree.range_query(q)) for q in queries)
    grid_hits = sum(len(grid.range_query(q)) for q in queries)
    assert rtree_hits == grid_hits
    print(f"\n50 range queries -> {rtree_hits} results from both indexes")
    print("\nwhere the R-tree spends its time (modeled, Figure 3 style):")
    print(memory_breakdown_report(rtree.counters))
    print(f"\ngrid counters: {grid.counters}")
    print("note: the grid performs zero tree-node intersection tests")

    # 3. Nearest neighbours — "the position of a vertex ... is computed based
    #    on the force fields of its nearest neighbors".
    center = dataset.universe.center()
    neighbours = grid.knn(center, k=5)
    print(f"\n5 nearest segments to the universe centre:")
    for distance, eid in neighbours:
        print(f"  segment {eid} (neuron {dataset.neuron_of[eid]}) at {distance:.3f} um")

    # 4. The spatial join — synapse detection: "wherever two neurons are
    #    within a given distance of each other, they will form a synapse".
    detector = SynapseDetector(dataset, epsilon=0.1)
    synapses = detector.detect()
    print(f"\nsynapse join: {len(synapses)} appositions within 0.1 um")
    for synapse in synapses[:5]:
        print(
            f"  neurons {synapse.neuron_a}<->{synapse.neuron_b} "
            f"at {tuple(round(c, 2) for c in synapse.location)}"
        )


if __name__ == "__main__":
    main()
