"""In-situ simulation monitoring (§2.2's analysis queries).

"The most important application that needs to execute range queries is the
in-situ visualization of the progressing simulation.  For visualizations, as
well as analyses, thousands of range queries need to be executed between two
simulation steps at locations that cannot be anticipated."
"""

from __future__ import annotations

import numpy as np

from repro.engine import QuerySession
from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex


class RangeMonitor:
    """Random-window analysis: ``queries_per_step`` range queries at
    unpredictable locations, recording result counts."""

    def __init__(
        self,
        universe: AABB,
        queries_per_step: int = 50,
        extent: float = 1.0,
        seed: int = 0,
    ) -> None:
        if queries_per_step < 0:
            raise ValueError(f"queries_per_step must be >= 0, got {queries_per_step}")
        self.universe = universe
        self.queries_per_step = queries_per_step
        self.extent = extent
        self._rng = np.random.default_rng(seed)
        self.result_counts: list[int] = []

    def expected_queries(self) -> int:
        return self.queries_per_step

    def _draw_boxes(self) -> np.ndarray:
        """The step's query windows as an ``(m, 2, d)`` array.

        Drawing all centers with one ``uniform`` call consumes the identical
        RNG stream as the scalar per-query loop did, so batched and looped
        observation see the same windows.
        """
        lo = np.asarray(self.universe.lo)
        hi = np.asarray(self.universe.hi)
        centers = self._rng.uniform(lo, hi, size=(self.queries_per_step, len(lo)))
        half = self.extent / 2.0
        return np.stack([centers - half, centers + half], axis=1)

    def observe(self, index: SpatialIndex, step: int) -> None:
        for box in self._draw_boxes():
            self.result_counts.append(len(index.range_query(AABB(box[0], box[1]))))

    def observe_batch(self, session: QuerySession, step: int) -> None:
        self.result_counts.extend(
            len(hits) for hits in session.range_query(self._draw_boxes())
        )


class NearestNeighborMonitor:
    """Nearest-synapse probes: batched kNN at unpredictable locations.

    Synapse detection and segment-proximity analyses are kNN-shaped — every
    probe asks for the ``k`` nearest elements to a sample point.  The batch
    path hands the step's whole probe set to
    :meth:`~repro.engine.session.QuerySession.knn`, whose executor runs the
    index's vectorized batch-kNN kernel; the per-query path consumes the
    identical RNG stream, so looped and batched observation record the same
    probes.  Per step, the monitor appends one list of k-th-neighbour
    distances (the local "proximity field") and one list of nearest ids.
    """

    def __init__(
        self,
        universe: AABB,
        probes_per_step: int = 50,
        k: int = 4,
        seed: int = 0,
    ) -> None:
        if probes_per_step < 0:
            raise ValueError(f"probes_per_step must be >= 0, got {probes_per_step}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.universe = universe
        self.probes_per_step = probes_per_step
        self.k = k
        self._rng = np.random.default_rng(seed)
        self.kth_distances: list[list[float]] = []
        self.nearest_ids: list[list[int]] = []

    def expected_queries(self) -> int:
        return self.probes_per_step

    def _draw_points(self) -> np.ndarray:
        lo = np.asarray(self.universe.lo)
        hi = np.asarray(self.universe.hi)
        return self._rng.uniform(lo, hi, size=(self.probes_per_step, len(lo)))

    def _record(self, answers) -> None:
        self.kth_distances.append(
            [hits[-1][0] if hits else float("inf") for hits in answers]
        )
        self.nearest_ids.append([hits[0][1] if hits else -1 for hits in answers])

    def observe(self, index: SpatialIndex, step: int) -> None:
        self._record([index.knn(tuple(p), self.k) for p in self._draw_points()])

    def observe_batch(self, session: QuerySession, step: int) -> None:
        self._record(session.knn(self._draw_points(), self.k))


class DensityMonitor:
    """Tracks element counts in fixed regions of interest over time —
    "local analysis of tissue density in neuroscience models"."""

    def __init__(self, regions: list[AABB]) -> None:
        if not regions:
            raise ValueError("DensityMonitor needs at least one region")
        self.regions = regions
        self.history: list[list[int]] = []

    def expected_queries(self) -> int:
        return len(self.regions)

    def observe(self, index: SpatialIndex, step: int) -> None:
        self.history.append([len(index.range_query(region)) for region in self.regions])

    def observe_batch(self, session: QuerySession, step: int) -> None:
        self.history.append(
            [len(hits) for hits in session.range_query(self.regions)]
        )


class ContinuousDensityMonitor:
    """A :class:`DensityMonitor` that subscribes instead of re-asking.

    Fixed regions of interest are the canonical continuous workload: the
    windows never move, only the elements do.  When the simulation carries a
    :class:`~repro.continuous.ContinuousSession`, this monitor registers one
    :class:`~repro.continuous.ContinuousRangeQuery` per region and the
    engine's maintenance tick keeps every count exact through delta
    maintenance — ``expected_queries`` is 0 because the monitor issues no
    per-step queries at all.  ``history`` matches :class:`DensityMonitor`'s
    row-per-step format; ``delta_sizes`` records per-step maintenance volume
    (|added| + |removed| summed over regions).
    """

    def __init__(self, regions: list[AABB]) -> None:
        if not regions:
            raise ValueError("ContinuousDensityMonitor needs at least one region")
        self.regions = regions
        self.history: list[list[int]] = []
        self.delta_sizes: list[int] = []
        self._subs: list = []

    def expected_queries(self) -> int:
        return 0

    def subscribe_continuous(self, continuous) -> None:
        """Engine hook: register one standing range query per region."""
        from repro.continuous import ContinuousRangeQuery

        self._subs = [
            continuous.subscribe(ContinuousRangeQuery(region, tag="density"))
            for region in self.regions
        ]

    def observe(self, index: SpatialIndex, step: int) -> None:
        """Fallback when no continuous session is wired: behave like
        :class:`DensityMonitor` (so the monitor composes with any engine)."""
        if not self._subs:
            self.history.append(
                [len(index.range_query(region)) for region in self.regions]
            )
            return
        self.history.append([len(sub.result) for sub in self._subs])
        self.delta_sizes.append(
            sum(
                len(sub.latest.added) + len(sub.latest.removed)
                for sub in self._subs
                if sub.latest is not None
            )
        )


class VisualizationMonitor:
    """In-situ visualization sampling: a regular grid of small range queries
    forming one density 'frame' per step."""

    def __init__(self, universe: AABB, resolution: int = 8) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.universe = universe
        self.resolution = resolution
        self.frames: list[np.ndarray] = []

    def expected_queries(self) -> int:
        return self.resolution ** self.universe.dims

    def _frame_boxes(self) -> np.ndarray:
        """The full sampling grid as one ``(resolution^d, 2, d)`` batch."""
        dims = self.universe.dims
        lo = np.asarray(self.universe.lo)
        hi = np.asarray(self.universe.hi)
        side = (hi - lo) / self.resolution
        axes = np.indices((self.resolution,) * dims).reshape(dims, -1).T  # (cells, d)
        cell_lo = lo + axes * side
        return np.stack([cell_lo, cell_lo + side], axis=1)

    def observe(self, index: SpatialIndex, step: int) -> None:
        counts = [
            len(index.range_query(AABB(box[0], box[1]))) for box in self._frame_boxes()
        ]
        self.frames.append(
            np.array(counts, dtype=int).reshape((self.resolution,) * self.universe.dims)
        )

    def observe_batch(self, session: QuerySession, step: int) -> None:
        counts = [len(hits) for hits in session.range_query(self._frame_boxes())]
        self.frames.append(
            np.array(counts, dtype=int).reshape((self.resolution,) * self.universe.dims)
        )
