"""The Figure 1 loop: compute → maintain index → monitor.

Each step runs three phases, individually timed and counter-attributed:

1. **compute** — the model advances one step, issuing update queries (kNN,
   range, join partners) against the index;
2. **maintenance** — the step's motion is folded into the index under a
   pluggable strategy (incremental updates, full rebuild, adaptive);
3. **monitor** — in-situ analysis queries run against the fresh state
   ("thousands of range queries ... at locations that cannot be
   anticipated").

The per-step :class:`StepReport` is the timeline Figure 1 sketches; the
``bench_fig1_timeline.py`` benchmark prints it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.core.adaptive import AdaptiveSimulationIndex
from repro.engine import QuerySession
from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex
from repro.instrumentation.counters import Counters
from repro.sim.models import Move, SimulationModel


class Monitor(Protocol):
    """An in-situ analysis task run against the index every step.

    Monitors that additionally implement
    ``observe_batch(session: QuerySession, step: int)`` get handed the
    simulation's query session instead, so a step's whole query volume runs
    through the session's executors (all shipped monitors do).
    """

    def observe(self, index: SpatialIndex, step: int) -> None: ...

    def expected_queries(self) -> int: ...


@dataclass
class StepReport:
    """Timing and accounting for one simulation step."""

    step: int
    compute_seconds: float
    maintenance_seconds: float
    monitor_seconds: float
    moves: int
    strategy: str
    counters: Counters = field(default_factory=Counters)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.maintenance_seconds + self.monitor_seconds


class TimeSteppedSimulation:
    """Drives a :class:`~repro.sim.models.SimulationModel` against an index.

    Parameters
    ----------
    model:
        The physics.
    index:
        Any :class:`~repro.indexes.base.SpatialIndex`; an
        :class:`~repro.core.adaptive.AdaptiveSimulationIndex` additionally
        gets its per-step strategy decision invoked.
    monitors:
        In-situ analysis tasks (may be empty).
    maintenance:
        ``"update"`` — per-element updates; ``"rebuild"`` — bulk reload per
        step; ``"adaptive"`` — delegate to the adaptive index's economics.
    """

    def __init__(
        self,
        model: SimulationModel,
        index: SpatialIndex,
        monitors: Iterable[Monitor] = (),
        maintenance: str = "update",
        continuous: "bool | object" = False,
    ) -> None:
        if maintenance not in ("update", "rebuild", "adaptive"):
            raise ValueError(f"unknown maintenance strategy: {maintenance!r}")
        if maintenance == "adaptive" and not isinstance(index, AdaptiveSimulationIndex):
            raise ValueError("adaptive maintenance needs an AdaptiveSimulationIndex")
        self.model = model
        self.index = index
        self.session = QuerySession(index)
        self.monitors = list(monitors)
        self.maintenance = maintenance
        self._state: dict[int, AABB] = dict(model.items())
        self.index.bulk_load(list(self._state.items()))
        # Standing queries: a ContinuousSession ticked with each step's
        # motion during the maintenance phase, so subscriber monitors read
        # exact delta-maintained results for free in the monitor phase.
        self.continuous = None
        if continuous:
            from repro.continuous import ContinuousSession

            if continuous is True:
                self.continuous = ContinuousSession(
                    list(self._state.items()), universe=model.universe()
                )
            else:
                self.continuous = continuous
            for monitor in self.monitors:
                hook = getattr(monitor, "subscribe_continuous", None)
                if hook is not None:
                    hook(self.continuous)
        self.reports: list[StepReport] = []
        self._step = 0

    def run(self, steps: int) -> list[StepReport]:
        """Execute ``steps`` steps, returning their reports."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.reports.append(self._one_step())
        return self.reports[-steps:] if steps else []

    # -- internals ------------------------------------------------------------------

    def _one_step(self) -> StepReport:
        step = self._step
        before = self.index.counters.snapshot()

        start = time.perf_counter()
        moves = self.model.advance(self.index, step)
        compute_seconds = time.perf_counter() - start

        expected_queries = sum(monitor.expected_queries() for monitor in self.monitors)
        start = time.perf_counter()
        strategy = self._maintain(moves, expected_queries)
        maintenance_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for monitor in self.monitors:
            observe_batch = getattr(monitor, "observe_batch", None)
            if observe_batch is not None:
                observe_batch(self.session, step)
            else:
                monitor.observe(self.index, step)
        monitor_seconds = time.perf_counter() - start

        self._step += 1
        return StepReport(
            step=step,
            compute_seconds=compute_seconds,
            maintenance_seconds=maintenance_seconds,
            monitor_seconds=monitor_seconds,
            moves=len(moves),
            strategy=strategy,
            counters=self.index.counters.diff(before),
        )

    def _maintain(self, moves: Sequence[Move], expected_queries: int) -> str:
        for eid, _, new_box in moves:
            self._state[eid] = new_box
        if self.continuous is not None:
            self.continuous.tick(moves)
        if self.maintenance == "adaptive":
            assert isinstance(self.index, AdaptiveSimulationIndex)
            return self.index.step(moves, expected_queries).value
        if self.maintenance == "rebuild":
            self.index.bulk_load(list(self._state.items()))
            return "rebuild"
        for eid, old_box, new_box in moves:
            self.index.update(eid, old_box, new_box)
        return "update"

    @property
    def state(self) -> dict[int, AABB]:
        """The engine's authoritative id → box state."""
        return dict(self._state)

    @property
    def query_engine(self) -> QuerySession:
        """Deprecated alias from the PR 1 API: the simulation now owns a
        :class:`~repro.engine.QuerySession` (same ``range_query`` / ``knn``
        / ``point_query`` surface)."""
        import warnings

        warnings.warn(
            "TimeSteppedSimulation.query_engine is deprecated; use .session "
            "(a QuerySession with the same query methods).",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session
