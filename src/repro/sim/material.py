"""Material deformation: mass–spring lattice driven by nearest neighbours.

"Material scientists ... need nearest neighbor queries to simulate material
deformation: the position of a vertex in the discretized material model at
the next simulation step is computed based on the force fields of its nearest
neighbors" (§2.2, citing Anciaux et al.).

The model is a damped mass–spring network: at construction each vertex asks
the index for its k nearest neighbours (the paper's model-building query) and
bonds to them at rest length; each step applies Hooke forces plus an external
pull on a face of the specimen, then integrates semi-implicitly.  Fixed
(clamped) vertices realize the boundary condition of a tensile test.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex
from repro.sim.models import Move, SimulationModel


class MaterialModel(SimulationModel):
    """Mass–spring specimen under tension.

    Parameters
    ----------
    positions:
        Vertex coordinates (n, 3).
    universe:
        Simulation domain.
    neighbours:
        Bonds per vertex (k of the kNN query).
    stiffness / damping / dt:
        Integration constants (semi-implicit Euler; keep ``dt·√(k/m)`` well
        under 1 for stability).
    pull:
        External force applied to vertices on the +x face.
    """

    def __init__(
        self,
        positions: np.ndarray,
        universe: AABB,
        neighbours: int = 6,
        stiffness: float = 20.0,
        damping: float = 1.0,
        dt: float = 0.02,
        pull: float = 0.5,
    ) -> None:
        self.positions = np.asarray(positions, dtype=float)
        if self.positions.ndim != 2:
            raise ValueError("positions must be (n, dims)")
        self._universe = universe
        self.neighbours = neighbours
        self.stiffness = stiffness
        self.damping = damping
        self.dt = dt
        self.pull = pull
        self.velocities = np.zeros_like(self.positions)
        self._bonds: list[tuple[int, int, float]] | None = None
        x = self.positions[:, 0]
        span = x.max() - x.min()
        self.fixed = x <= x.min() + 0.05 * span
        self.pulled = x >= x.max() - 0.05 * span

    def items(self) -> dict[int, AABB]:
        return {i: AABB(row, row) for i, row in enumerate(self.positions)}

    def universe(self) -> AABB:
        return self._universe

    @property
    def bonds(self) -> list[tuple[int, int, float]]:
        if self._bonds is None:
            raise RuntimeError("bonds are built on the first advance() call")
        return self._bonds

    def _build_bonds(self, index: SpatialIndex) -> None:
        """Model building: bond each vertex to its k nearest neighbours."""
        bonds: set[tuple[int, int]] = set()
        for i, row in enumerate(self.positions):
            for _, neighbour in index.knn(tuple(row), self.neighbours + 1):
                if neighbour == i:
                    continue
                bonds.add((min(i, neighbour), max(i, neighbour)))
        self._bonds = []
        for a, b in sorted(bonds):
            rest = float(np.linalg.norm(self.positions[a] - self.positions[b]))
            self._bonds.append((a, b, rest))

    def advance(self, index: SpatialIndex, step: int) -> list[Move]:
        if self._bonds is None:
            self._build_bonds(index)
        forces = np.zeros_like(self.positions)
        for a, b, rest in self._bonds:
            delta = self.positions[b] - self.positions[a]
            length = float(np.linalg.norm(delta))
            if length < 1e-12:
                continue
            magnitude = self.stiffness * (length - rest)
            direction = delta / length
            forces[a] += magnitude * direction
            forces[b] -= magnitude * direction
        forces[self.pulled, 0] += self.pull
        forces -= self.damping * self.velocities

        old = self.positions.copy()
        self.velocities += forces * self.dt
        self.velocities[self.fixed] = 0.0
        self.positions = self.positions + self.velocities * self.dt
        lo = np.asarray(self._universe.lo)
        hi = np.asarray(self._universe.hi)
        self.positions = np.clip(self.positions, lo, hi)
        return [
            (i, AABB(old[i], old[i]), AABB(self.positions[i], self.positions[i]))
            for i in range(len(self.positions))
            if not np.array_equal(old[i], self.positions[i])
        ]

    def elongation(self) -> float:
        """Specimen stretch along x — the quantity a tensile test reports."""
        x = self.positions[:, 0]
        return float(x.max() - x.min())
