"""Neuron co-growth with synapse formation (§2.2).

"Neuroscientists simulating the co-growth of neurons ... need to perform a
spatial join to determine the location of synapses: wherever two neurons are
within a given distance of each other, they will form a synapse."

Each step, every neuron's active growth cones extend by one new capsule
segment (an *insert* — this workload exercises growth, not just motion), and
every ``join_every`` steps a within-ε self-join detects new appositions.
The join runs as a :class:`~repro.joins.spec.SynapseJoinSpec` through the
model's persistent :class:`~repro.joins.JoinSession`, so benchmarks can pin
any registry strategy and read the accumulated join telemetry of a living
simulation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.neuroscience import NeuronDataset
from repro.geometry.aabb import AABB
from repro.geometry.primitives import Capsule
from repro.indexes.base import SpatialIndex
from repro.joins import JoinSession, SynapseJoinSpec
from repro.sim.models import Move, SimulationModel


class GrowthModel(SimulationModel):
    """Growing morphologies with periodic synapse detection.

    Note on inserts: the engine's maintenance contract covers *moves*; new
    segments are inserted directly into the index inside :meth:`advance`
    (growth is monotone — no strategy ambiguity), and recorded in
    ``self.grown`` per step for accounting.

    Parameters
    ----------
    dataset:
        Starting morphologies (may be tiny stubs).
    segment_length / branch_probability:
        Growth-cone kinematics, as in the dataset generator.
    epsilon:
        Synapse apposition threshold.
    join_every:
        Steps between synapse-detection joins (0 disables).
    """

    def __init__(
        self,
        dataset: NeuronDataset,
        segment_length: float = 0.8,
        branch_probability: float = 0.08,
        epsilon: float = 0.05,
        join_every: int = 5,
        seed: int = 0,
        continuous: bool = False,
    ) -> None:
        self.dataset = dataset
        self.segment_length = segment_length
        self.branch_probability = branch_probability
        self.epsilon = epsilon
        self.join_every = join_every
        self._rng = np.random.default_rng(seed)
        self._next_eid = max(dataset.capsules, default=-1) + 1
        # One active growth cone per neuron, at its most recent segment tip.
        self._cones: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for eid, capsule in dataset.capsules.items():
            neuron = dataset.neuron_of[eid]
            tip = np.asarray(capsule.b)
            direction = np.asarray(capsule.b) - np.asarray(capsule.a)
            norm = np.linalg.norm(direction)
            direction = direction / norm if norm > 1e-12 else self._random_unit()
            self._cones.setdefault(neuron, []).append((tip, direction))
        for neuron in self._cones:
            self._cones[neuron] = self._cones[neuron][-1:]
        self.grown: list[int] = []
        self.synapse_counts: list[int] = []
        # One session for the whole simulation: every periodic detection
        # shares the planner, counters and JoinStats, so the run's join
        # telemetry accumulates alongside the query engine's.
        self.join_session = JoinSession()
        # Continuous mode: instead of re-running the synapse join from
        # scratch every join_every steps, subscribe one standing
        # ContinuousJoinSpec whose refine is the synapse predicate (exact
        # capsule gap ≤ ε, same-neuron pairs excluded) and feed each step's
        # new segments as inserts — the maintained pair set equals the
        # SynapseJoinSpec result at every step, probing only around growth.
        self.continuous_session = None
        self.synapse_subscription = None
        if continuous:
            from repro.continuous import ContinuousJoinSpec, ContinuousSession

            self.continuous_session = ContinuousSession(
                self.items().items(), universe=dataset.universe
            )
            self.synapse_subscription = self.continuous_session.subscribe(
                ContinuousJoinSpec(
                    epsilon=epsilon, refine=self._synapse_refine, tag="synapses"
                )
            )

    def items(self) -> dict[int, AABB]:
        return {eid: capsule.bounds() for eid, capsule in self.dataset.capsules.items()}

    def universe(self) -> AABB:
        return self.dataset.universe

    def _synapse_refine(self, a: int, b: int) -> bool:
        """The synapse predicate on segment ids: cross-neuron, within ε."""
        if self.dataset.neuron_of[a] == self.dataset.neuron_of[b]:
            return False
        return self.dataset.capsules[a].distance_to(self.dataset.capsules[b]) <= self.epsilon

    def advance(self, index: SpatialIndex, step: int) -> list[Move]:
        lo = np.asarray(self.dataset.universe.lo)
        hi = np.asarray(self.dataset.universe.hi)
        grown = 0
        inserts: list[tuple[int, AABB]] = []
        for neuron, cones in self._cones.items():
            new_cones = []
            for tip, direction in cones:
                direction = self._perturb(direction, 0.35)
                end = np.clip(tip + direction * self.segment_length, lo, hi)
                capsule = Capsule(tip, end, 0.05)
                eid = self._next_eid
                self._next_eid += 1
                self.dataset.capsules[eid] = capsule
                self.dataset.neuron_of[eid] = neuron
                index.insert(eid, capsule.bounds())
                inserts.append((eid, capsule.bounds()))
                grown += 1
                new_cones.append((end, direction))
                if self._rng.random() < self.branch_probability:
                    new_cones.append((end, self._perturb(direction, 1.2)))
            self._cones[neuron] = new_cones
        self.grown.append(grown)

        if self.continuous_session is not None:
            from repro.continuous import Insert

            self.continuous_session.tick(
                [Insert(eid, box) for eid, box in inserts]
            )
            if self.join_every and step % self.join_every == self.join_every - 1:
                self.synapse_counts.append(len(self.synapse_subscription.result))
        elif self.join_every and step % self.join_every == self.join_every - 1:
            synapses = self.join_session.run(
                SynapseJoinSpec(self.dataset, epsilon=self.epsilon)
            )
            self.synapse_counts.append(len(synapses))
        return []  # growth inserts; nothing moved

    def _random_unit(self) -> np.ndarray:
        v = self._rng.normal(size=3)
        return v / np.linalg.norm(v)

    def _perturb(self, direction: np.ndarray, sigma: float) -> np.ndarray:
        v = direction + self._rng.normal(0.0, sigma, size=3)
        norm = np.linalg.norm(v)
        if norm < 1e-12:
            return self._random_unit()
        return v / norm
