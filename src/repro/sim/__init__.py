"""Time-stepped simulation substrate (Figure 1 and Section 2).

"Given a model and an initial state, simulations calculate and approximate
the subsequent states of the model in discrete time steps. ... during the
simulation phase analysis/update queries are executed to update the model and
during the monitoring phase analysis queries are executed to monitor the
progress of the simulation."

* :class:`~repro.sim.engine.TimeSteppedSimulation` — the Figure 1 loop:
  compute (update queries) → index maintenance → monitor (analysis queries),
  with per-phase timing and counter attribution;
* :mod:`~repro.sim.models` — the model protocol plus the paper's motivating
  workloads: neural plasticity, n-body cosmology (Barnes–Hut), material
  deformation (mass–spring via nearest neighbours) and neuron co-growth with
  synapse formation;
* :mod:`~repro.sim.monitors` — in-situ analysis: random-window range
  monitors, density probes, visualization sampling and nearest-neighbour
  (nearest-synapse) probes, all batch-capable.
"""

from repro.sim.engine import StepReport, TimeSteppedSimulation
from repro.sim.models import SimulationModel
from repro.sim.plasticity import PlasticityModel
from repro.sim.nbody import BarnesHutTree, NBodyModel
from repro.sim.material import MaterialModel
from repro.sim.growth import GrowthModel
from repro.sim.monitors import (
    ContinuousDensityMonitor,
    DensityMonitor,
    NearestNeighborMonitor,
    RangeMonitor,
    VisualizationMonitor,
)

__all__ = [
    "TimeSteppedSimulation",
    "StepReport",
    "SimulationModel",
    "PlasticityModel",
    "NBodyModel",
    "BarnesHutTree",
    "MaterialModel",
    "GrowthModel",
    "RangeMonitor",
    "DensityMonitor",
    "ContinuousDensityMonitor",
    "NearestNeighborMonitor",
    "VisualizationMonitor",
]
