"""N-body cosmology: gravity via Barnes–Hut, the paper's §1/§2 example.

"In n-body simulations in physical cosmology the position of each celestial
object at time step t(i+1) has to be computed based on the gravitational
field (and thus the locations) of its neighbors at time step t(i)."

Two force engines are provided:

* :class:`BarnesHutTree` — the classic octree with mass/centre-of-mass
  aggregation and the θ opening criterion, built fresh each step (a
  throwaway index, fittingly);
* :func:`direct_forces` — the exact O(n²) sum, the correctness oracle for
  the tree and the scalability foil for the benchmarks.

The :class:`NBodyModel` integrates with leapfrog and exposes the standard
:class:`~repro.sim.models.SimulationModel` surface so the engine's index
maintenance strategies can be compared on cosmological motion too (bodies
move *fast*, unlike plasticity — a useful contrast in the update benches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex
from repro.sim.models import Move, SimulationModel

_SOFTENING = 1e-2


@dataclass
class _BHNode:
    box: AABB
    mass: float = 0.0
    com: np.ndarray | None = None  # centre of mass
    children: list["_BHNode"] | None = None
    body: int | None = None  # leaf payload: body index


class BarnesHutTree:
    """Octree over point masses with aggregate mass/centre per node."""

    def __init__(self, positions: np.ndarray, masses: np.ndarray, theta: float = 0.5) -> None:
        if len(positions) != len(masses):
            raise ValueError("positions and masses must have equal length")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.positions = np.asarray(positions, dtype=float)
        self.masses = np.asarray(masses, dtype=float)
        self.theta = theta
        lo = self.positions.min(axis=0) - 1e-9
        hi = self.positions.max(axis=0) + 1e-9
        side = float(max(hi - lo))
        center = (lo + hi) / 2.0
        root_box = AABB(center - side / 2.0, center + side / 2.0)
        self._root = _BHNode(box=root_box)
        for body in range(len(self.positions)):
            self._insert(self._root, body, depth=0)
        self._aggregate(self._root)

    def _insert(self, node: _BHNode, body: int, depth: int) -> None:
        if node.children is None and node.body is None and node.mass == 0.0:
            node.body = body
            node.mass = float(self.masses[body])
            node.com = self.positions[body].copy()
            return
        if node.children is None:
            # Split: push the resident body down, then insert the new one.
            if depth > 64:
                # Coincident points: accumulate into this node directly.
                node.mass += float(self.masses[body])
                return
            resident = node.body
            node.body = None
            node.children = [_BHNode(box=child) for child in _subdivide(node.box)]
            if resident is not None:
                self._route(node, resident, depth)
        self._route(node, body, depth)

    def _route(self, node: _BHNode, body: int, depth: int) -> None:
        assert node.children is not None
        point = self.positions[body]
        for child in node.children:
            if child.box.contains_point(point):
                self._insert(child, body, depth + 1)
                return
        # Numerical edge: clamp into the nearest child.
        nearest = min(
            node.children, key=lambda c: c.box.min_distance_to_point(point)
        )
        self._insert(nearest, body, depth + 1)

    def _aggregate(self, node: _BHNode) -> None:
        if node.children is None:
            return
        total = 0.0
        weighted = np.zeros(self.positions.shape[1])
        for child in node.children:
            self._aggregate(child)
            if child.mass > 0.0 and child.com is not None:
                total += child.mass
                weighted += child.mass * child.com
            elif child.body is None and child.children is None and child.mass > 0.0:
                total += child.mass
        if total > 0.0:
            node.mass = total
            node.com = weighted / total

    def acceleration_on(self, body: int, g: float = 1.0) -> np.ndarray:
        """Gravitational acceleration on ``body`` with the θ criterion."""
        point = self.positions[body]
        acc = np.zeros_like(point)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mass <= 0.0 or node.com is None:
                continue
            delta = node.com - point
            dist = math.sqrt(float(delta @ delta)) + _SOFTENING
            side = max(node.box.extents())
            if node.children is None or side / dist < self.theta:
                if node.body == body and node.children is None:
                    continue
                acc += g * node.mass * delta / dist**3
            else:
                stack.extend(node.children)
        return acc


def direct_forces(positions: np.ndarray, masses: np.ndarray, g: float = 1.0) -> np.ndarray:
    """Exact pairwise accelerations — O(n²), the Barnes–Hut oracle."""
    n = len(positions)
    acc = np.zeros_like(positions, dtype=float)
    for i in range(n):
        delta = positions - positions[i]
        dist = np.sqrt((delta**2).sum(axis=1)) + _SOFTENING
        dist[i] = np.inf
        acc[i] = (g * masses[:, None] * delta / dist[:, None] ** 3).sum(axis=0)
    return acc


def _subdivide(box: AABB) -> list[AABB]:
    center = box.center()
    dims = box.dims
    children = []
    for mask in range(1 << dims):
        lo = []
        hi = []
        for axis in range(dims):
            if mask & (1 << axis):
                lo.append(center[axis])
                hi.append(box.hi[axis])
            else:
                lo.append(box.lo[axis])
                hi.append(center[axis])
        children.append(AABB(lo, hi))
    return children


class NBodyModel(SimulationModel):
    """Leapfrog-integrated gravitational system.

    Bodies are point masses; items are degenerate boxes at body positions.
    ``method='barnes-hut'`` (default) rebuilds a
    :class:`BarnesHutTree` every step; ``method='direct'`` uses the exact
    sum (small n only).
    """

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
        universe: AABB,
        dt: float = 0.01,
        g: float = 1.0,
        theta: float = 0.5,
        method: str = "barnes-hut",
    ) -> None:
        if method not in ("barnes-hut", "direct"):
            raise ValueError(f"unknown method: {method!r}")
        self.positions = np.asarray(positions, dtype=float)
        self.velocities = np.asarray(velocities, dtype=float)
        self.masses = np.asarray(masses, dtype=float)
        if not (len(self.positions) == len(self.velocities) == len(self.masses)):
            raise ValueError("positions, velocities and masses must align")
        self._universe = universe
        self.dt = dt
        self.g = g
        self.theta = theta
        self.method = method

    def items(self) -> dict[int, AABB]:
        return {i: AABB(row, row) for i, row in enumerate(self.positions)}

    def universe(self) -> AABB:
        return self._universe

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.masses * (self.velocities**2).sum(axis=1)).sum())

    def advance(self, index: SpatialIndex, step: int) -> list[Move]:
        if self.method == "direct":
            acc = direct_forces(self.positions, self.masses, g=self.g)
        else:
            tree = BarnesHutTree(self.positions, self.masses, theta=self.theta)
            acc = np.stack(
                [tree.acceleration_on(i, g=self.g) for i in range(len(self.positions))]
            )
        old = self.positions.copy()
        self.velocities += acc * self.dt
        self.positions += self.velocities * self.dt
        # Reflect at the universe walls to keep the system bounded.
        lo = np.asarray(self._universe.lo)
        hi = np.asarray(self._universe.hi)
        below = self.positions < lo
        above = self.positions > hi
        self.velocities[below | above] *= -1.0
        self.positions = np.clip(self.positions, lo, hi)
        return [
            (i, AABB(old[i], old[i]), AABB(self.positions[i], self.positions[i]))
            for i in range(len(self.positions))
        ]
