"""The simulation model protocol.

A model owns the elements (id → box, plus whatever richer state it needs) and
knows how to advance one time step *given an index over the current state* —
that index access is the "multitude of analysis & update queries" of
Figure 1.  The engine owns phase timing and index maintenance; models stay
pure physics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex

# One step's motion: (eid, old_box, new_box).
Move = tuple[int, AABB, AABB]


class SimulationModel(ABC):
    """Base class for simulated systems."""

    @abstractmethod
    def items(self) -> dict[int, AABB]:
        """Current id → bounding box state (the engine bulk-loads this)."""

    @abstractmethod
    def advance(self, index: SpatialIndex, step: int) -> list[Move]:
        """Compute one time step, using ``index`` for neighbourhood queries,
        and return the motion performed.

        Implementations must *not* mutate the index — the engine applies the
        returned moves under its maintenance strategy, so that different
        strategies are comparable on identical physics.
        """

    def universe(self) -> AABB:
        """The simulation domain (defaults to the current hull)."""
        boxes = list(self.items().values())
        if not boxes:
            raise ValueError("empty model has no universe")
        hull = boxes[0]
        for box in boxes[1:]:
            hull = hull.union(box)
        return hull
