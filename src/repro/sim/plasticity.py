"""Neural plasticity: the Section 4.1 workload.

"In neural plasticity simulations ... all elements change position in every
step of the simulation, yet each element only shifts minimally."  The model
wraps a neuron dataset (or any item set) with
:class:`~repro.datasets.trajectories.PlasticityMotion`, whose displacement
statistics match the paper's measured trace (mean 0.04 µm, <0.5 % beyond
0.1 µm).

The compute phase also exercises the paper's update-query pattern: each step
samples a population of elements and asks the index for their neighbourhood
(the plasticity rule inputs — local density modulates growth/retraction),
making the workload both update- and query-heavy like the original.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.trajectories import PlasticityMotion
from repro.geometry.aabb import AABB
from repro.indexes.base import SpatialIndex
from repro.sim.models import Move, SimulationModel


class PlasticityModel(SimulationModel):
    """Jittering tissue with density-dependent bookkeeping.

    Parameters
    ----------
    items:
        Initial id → box state (e.g. a
        :class:`~repro.datasets.neuroscience.NeuronDataset`'s items).
    universe:
        Simulation domain.
    neighbourhood_queries:
        How many elements per step sample their local density through the
        index (the update-query load of the compute phase).
    neighbourhood_radius:
        Radius of the density probe around each sampled element.
    """

    def __init__(
        self,
        items: dict[int, AABB],
        universe: AABB,
        neighbourhood_queries: int = 32,
        neighbourhood_radius: float = 1.0,
        moving_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not items:
            raise ValueError("plasticity model needs at least one element")
        self._items = dict(items)
        self._universe = universe
        self.neighbourhood_queries = neighbourhood_queries
        self.neighbourhood_radius = neighbourhood_radius
        self._motion = PlasticityMotion(
            universe=universe, moving_fraction=moving_fraction, seed=seed
        )
        self._rng = np.random.default_rng(seed + 1)
        self.density_samples: list[int] = []

    def items(self) -> dict[int, AABB]:
        return dict(self._items)

    def universe(self) -> AABB:
        return self._universe

    def advance(self, index: SpatialIndex, step: int) -> list[Move]:
        # Update queries: sample local densities that modulate plasticity.
        eids = list(self._items)
        sample_size = min(self.neighbourhood_queries, len(eids))
        chosen = self._rng.choice(len(eids), size=sample_size, replace=False)
        for slot in chosen:
            center = self._items[eids[slot]].center()
            probe = AABB.from_center(center, self.neighbourhood_radius)
            self.density_samples.append(len(index.range_query(probe)))
        # Motion: everything shifts minimally.
        moves = self._motion.step(self._items)
        for eid, _, new_box in moves:
            self._items[eid] = new_box
        return moves
