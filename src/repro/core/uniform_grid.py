"""A single uniform grid — the paper's primary in-memory candidate.

"One direction to develop novel spatial indexes for main memory may be to use
a single uniform grid and therefore to avoid the tree structure needed for
access."  (§3.3)

Design points realized here:

* **No tree traversal.**  A range query computes the overlapped cell window
  arithmetically and tests only the elements in those cells; the counters
  show zero ``node_tests``.
* **Cheap massive updates.**  "the small movement means that only few
  elements switch grid cell in every step, thereby requiring few updates to
  the data structure" (§4.3): :meth:`UniformGrid.update` relocates an element
  only when its cell set changes; otherwise it rewrites the stored box in
  place.  :attr:`cell_switches` counts how often relocation was actually
  needed, which the massive-update benchmarks report.
* **Replication-aware.**  Volumetric elements are registered in every cell
  they overlap; queries deduplicate.  The resolution model
  (:mod:`repro.core.resolution`) balances replication against probe counts.
* **Incrementally maintained batch snapshot.**  The vectorized batch kernels
  query a dense packed view of the buckets (:class:`_GridSnapshot`).
  Mutations *patch* the snapshot instead of discarding it: removals flip a
  per-row ``alive`` bit, insertions append to a small overlay keyed by cell,
  and in-place box rewrites update the packed coordinates directly.  A dirty
  counter triggers deferred compaction (a full repack) only when the overlay
  grows past a fraction of the base, so the first batch after a mutation no
  longer repays the full packing cost.  Invariants: the dict-of-dicts
  buckets remain the ground truth (scalar queries never consult the
  snapshot), and ``base ∖ dead ∪ overlay`` always equals the live element
  set — a patched snapshot answers every batch query identically to a
  from-scratch rebuild (``tests/test_snapshot_maintenance.py`` pins this).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, as_point_array, boxes_to_array, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16

# Bail out of the vectorized batch kernel when the flattened (query, cell)
# expansion would exceed this many entries; the naive loop handles the rest.
_BATCH_WINDOW_CAP = 1 << 26

# Patches tolerated on a snapshot before deferred compaction repacks it.
# The threshold scales with the base so bigger grids absorb more churn, but
# is capped: overlay cells are matched with a per-cell Python loop in
# `_gather_candidates`, so past a few thousand of them a repack (O(n),
# fully vectorized) is cheaper than dragging the overlay through queries.
_SNAPSHOT_DIRTY_MIN = 64
_SNAPSHOT_DIRTY_MAX = 2048

CellKey = tuple[int, ...]


class _GridSnapshot:
    """Dense, query-ready view of the grid's buckets, patchable in place.

    ``keys`` holds the linearized ids of every occupied cell in sorted order;
    ``starts``/``counts`` delimit each cell's slice of ``entry_rows``
    (replicated elements appear once per covering cell, exactly as in the
    dict-of-dicts).  ``entry_rows`` index into the dense ``eids``/``boxes``
    element tables, so dedup can run on small integers rather than raw ids.
    ``strides`` linearize a cell coordinate tuple, ``tops`` are the per-axis
    maximum cell coordinates.

    The base arrays are frozen at build time; mutations are folded in as an
    overlay (the deferred-compaction dirty list):

    * ``alive`` masks base rows whose element was removed or relocated;
    * appended elements live in ``extra_eids``/``extra_boxes`` and are
      reachable through ``extra_cells`` (linear cell key → overlay rows);
    * in-place box rewrites patch ``boxes`` / ``extra_boxes`` directly.

    Overlay rows are addressed as ``len(eids) + i`` so one flat row space
    covers both tables; :meth:`tables` materializes (and caches) the merged
    id/box/alive views.  ``dirty`` counts patches since the build — the
    owning grid compacts (rebuilds) when it crosses the threshold.
    """

    __slots__ = (
        "keys", "starts", "counts", "entry_rows", "eids", "boxes", "strides",
        "tops", "origin", "cell", "alive", "row_of", "extra_eids",
        "extra_boxes", "extra_alive", "extra_cells", "extra_row_of", "dirty",
        "_tables",
    )

    def __init__(self, keys, starts, counts, entry_rows, eids, boxes, strides, tops, origin, cell) -> None:
        self.keys = keys
        self.starts = starts
        self.counts = counts
        self.entry_rows = entry_rows
        self.eids = eids
        self.boxes = boxes
        self.strides = strides
        self.tops = tops
        self.origin = origin
        self.cell = cell
        self.alive = np.ones(len(eids), dtype=bool)
        self.row_of: dict[int, int] | None = None  # built lazily on first patch
        self.extra_eids: list[int] = []
        self.extra_boxes: list[AABB] = []
        self.extra_alive: list[bool] = []
        self.extra_cells: dict[int, list[int]] = {}
        self.extra_row_of: dict[int, int] = {}
        self.dirty = 0
        self._tables: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- merged element tables ------------------------------------------------

    def tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(eids, boxes, alive)`` across base rows then overlay rows."""
        if self._tables is None:
            if not self.extra_eids:
                self._tables = (self.eids, self.boxes, self.alive)
            else:
                eids = np.concatenate(
                    [self.eids, np.array(self.extra_eids, dtype=np.int64)]
                )
                boxes = np.concatenate(
                    [self.boxes, boxes_to_array(self.extra_boxes, dims=self.boxes.shape[2])]
                )
                alive = np.concatenate([self.alive, np.array(self.extra_alive, dtype=bool)])
                self._tables = (eids, boxes, alive)
        return self._tables

    def _base_row(self, eid: int) -> int:
        if self.row_of is None:
            self.row_of = {int(e): i for i, e in enumerate(self.eids.tolist())}
        return self.row_of[eid]

    def _window(self, box: AABB) -> Iterable[CellKey]:
        corners = np.array([box.lo, box.hi], dtype=np.float64)
        coords = _cell_coords(corners, self.origin, self.cell, self.tops)
        return _iter_window(coords[0].tolist(), coords[1].tolist())

    # -- patches (the dirty list) ---------------------------------------------

    def patch_insert(self, eid: int, box: AABB) -> None:
        idx = len(self.extra_eids)
        self.extra_eids.append(eid)
        self.extra_boxes.append(box)
        self.extra_alive.append(True)
        self.extra_row_of[eid] = idx
        strides = self.strides.tolist()
        cells = 0
        for coords in self._window(box):
            key = sum(c * s for c, s in zip(coords, strides))
            self.extra_cells.setdefault(key, []).append(idx)
            cells += 1
        # Queries pay per overlay *cell*, not per patched element, so a
        # box spanning many cells must push toward compaction accordingly.
        self.dirty += max(cells, 1)
        self._tables = None

    def patch_remove(self, eid: int) -> None:
        idx = self.extra_row_of.pop(eid, None)
        if idx is not None:
            # Dead overlay rows stay listed in extra_cells; gathering filters
            # them through the alive mask (compaction reclaims the slots).
            self.extra_alive[idx] = False
        else:
            self.alive[self._base_row(eid)] = False
        self.dirty += 1
        self._tables = None

    def patch_set_box(self, eid: int, box: AABB) -> None:
        """In-place rewrite for a move that kept the element's cell set."""
        idx = self.extra_row_of.get(eid)
        if idx is not None:
            self.extra_boxes[idx] = box
        else:
            row = self._base_row(eid)
            self.boxes[row, 0, :] = box.lo
            self.boxes[row, 1, :] = box.hi
        self.dirty += 1
        self._tables = None


def _cell_coords(
    values: np.ndarray, origin: np.ndarray, cell: float, tops: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`UniformGrid._coord`: clamped integer cell coordinates.

    Clamps in float space *before* the int64 cast — coordinates far outside
    the universe (e.g. 1e30) would otherwise overflow the cast and wrap to
    the wrong edge, where the scalar path's Python ints are exact.
    """
    return np.floor(np.clip((values - origin) / cell, 0.0, tops)).astype(np.int64)


def _expand_windows(
    lo_cells: np.ndarray, hi_cells: np.ndarray, strides: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-row inclusive cell windows into (owner_row, linear_key).

    ``lo_cells``/``hi_cells`` are ``(m, d)`` integer corner coordinates; the
    result enumerates every cell of every window in mixed-radix order,
    entirely with ``repeat``/``cumsum`` arithmetic (no per-row Python loop).
    """
    m, dims = lo_cells.shape
    window = hi_cells - lo_cells + 1
    cells_per_row = np.prod(window, axis=1)
    total = int(cells_per_row.sum())
    owner = np.repeat(np.arange(m), cells_per_row)
    rank = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(cells_per_row) - cells_per_row, cells_per_row
    )
    suffix = np.ones((m, dims), dtype=np.int64)
    for axis in range(dims - 2, -1, -1):
        suffix[:, axis] = suffix[:, axis + 1] * window[:, axis + 1]
    keys = np.zeros(total, dtype=np.int64)
    for axis in range(dims):
        coord = lo_cells[owner, axis] + (rank // suffix[owner, axis]) % window[owner, axis]
        keys += coord * strides[axis]
    return owner, keys


class UniformGrid(SpatialIndex):
    """Hash-addressed uniform grid over a fixed universe.

    Parameters
    ----------
    universe:
        The indexed region.  Elements outside are clamped into edge cells
        (queries remain correct; see ``_cell_range``).
    cell_size:
        Cell side length, uniform across axes.  Use
        :func:`repro.core.resolution.optimal_cell_size` to pick it.
    """

    def __init__(
        self,
        universe: AABB | None = None,
        cell_size: float | None = None,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._universe = universe
        self._cell_size = cell_size
        self._cells: dict[CellKey, dict[int, AABB]] = {}
        self._boxes: dict[int, AABB] = {}
        self._cells_of: dict[int, tuple[CellKey, ...]] = {}
        self._snapshot: _GridSnapshot | None = None
        self.cell_switches = 0
        self.in_place_updates = 0
        # Lifetime count of full snapshot packs; the snapshot-maintenance
        # regression tests assert mutations patch instead of repack.
        self.snapshot_rebuilds = 0

    # -- configuration -----------------------------------------------------------

    @property
    def universe(self) -> AABB | None:
        return self._universe

    @property
    def cell_size(self) -> float | None:
        return self._cell_size

    def _ensure_configured(self, items: list[Item]) -> None:
        if self._universe is None:
            hull = union_all(box for _, box in items)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        if self._cell_size is None:
            # Default heuristic: aim for ~2 elements per occupied cell.
            from repro.core.resolution import default_cell_size

            self._cell_size = default_cell_size(len(items), self._universe)

    # -- maintenance ---------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._cells = {}
        self._boxes = {}
        self._cells_of = {}
        self._snapshot = None
        self.cell_switches = 0
        self.in_place_updates = 0
        if not materialized:
            return
        self._ensure_configured(materialized)
        for eid, box in materialized:
            self._place(eid, box)

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._ensure_configured([(eid, box)])
        self._place(eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._unplace(eid)
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Relocate only when the covered cell set changes (the §4.3 win)."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        new_cells = tuple(self._covered_cells(new_box))
        old_cells = self._cells_of[eid]
        if new_cells == old_cells:
            self._boxes[eid] = new_box
            for key in old_cells:
                self._cells[key][eid] = new_box
            if self._snapshot is not None:
                self._snapshot.patch_set_box(eid, new_box)
                self._maybe_compact()
            self.in_place_updates += 1
        else:
            self._unplace(eid)
            self._place(eid, new_box)
            self.cell_switches += 1
        self.counters.updates += 1

    # -- queries --------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if not self._boxes:
            return []
        counters = self.counters
        dims = box.dims
        seen: set[int] = set()
        results: list[int] = []
        for key in self._cell_range(box):
            counters.cells_probed += 1
            bucket = self._cells.get(key)
            if not bucket:
                continue
            counters.bytes_touched += len(bucket) * (dims * _BOX_BYTES_PER_DIM + 8)
            for eid, elem_box in bucket.items():
                if eid in seen:
                    continue
                counters.elem_tests += 1
                if elem_box.intersects(box):
                    seen.add(eid)
                    results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Expanding-window kNN: probe growing cell rings until k confirmed."""
        if k <= 0 or not self._boxes or self._universe is None:
            return []
        assert self._cell_size is not None
        counters = self.counters
        point = tuple(point)
        radius = self._cell_size
        limit = self._universe.max_distance_to_point(point) + self._cell_size
        while True:
            probe = AABB.from_center(point, radius)
            candidates = self.range_query(probe)
            scored = []
            for eid in candidates:
                dist = self._boxes[eid].min_distance_to_point(point)
                scored.append((dist, eid))
                counters.heap_ops += 1
            confirmed = [(d, e) for d, e in scored if d <= radius]
            if len(confirmed) >= k:
                return heapq.nsmallest(k, scored)
            if radius > limit:
                scored.sort()
                return scored[:k]
            radius *= 2.0

    # -- batch queries (vectorized) ---------------------------------------------------

    def _build_snapshot(self) -> _GridSnapshot | None:
        """Pack the buckets into the dense form; ``None`` if unlinearizable.

        The cell membership is *recomputed* from the element boxes with the
        same clamped-window arithmetic as :meth:`_covered_cells`, which lets
        the whole build run vectorized instead of walking the bucket dicts —
        both necessarily describe the identical (cell, element) relation.
        """
        assert self._universe is not None and self._cell_size is not None
        dims = self._universe.dims
        res = [
            max(1, int(math.ceil(extent / self._cell_size)))
            for extent in self._universe.extents()
        ]
        total_cells = 1
        for r in res:
            total_cells *= r
        if total_cells >= 1 << 62:  # linearized keys would overflow int64
            return None
        strides = [1] * dims
        for axis in range(dims - 2, -1, -1):
            strides[axis] = strides[axis + 1] * res[axis + 1]
        strides_arr = np.array(strides, dtype=np.int64)
        tops = np.array([r - 1 for r in res], dtype=np.int64)
        origin = np.array(self._universe.lo, dtype=np.float64)

        n = len(self._boxes)
        eids = np.fromiter(self._boxes.keys(), dtype=np.int64, count=n)
        boxes = boxes_to_array(list(self._boxes.values()), dims=dims)
        cell = self._cell_size
        lo_cells = _cell_coords(boxes[:, 0, :], origin, cell, tops)
        hi_cells = _cell_coords(boxes[:, 1, :], origin, cell, tops)
        rows, keys = _expand_windows(lo_cells, hi_cells, strides_arr)
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        uniq_keys, starts, counts = np.unique(
            keys_sorted, return_index=True, return_counts=True
        )
        self.snapshot_rebuilds += 1
        return _GridSnapshot(
            keys=uniq_keys,
            starts=starts,
            counts=counts,
            entry_rows=rows[order],
            eids=eids,
            boxes=boxes,
            strides=strides_arr,
            tops=tops,
            origin=origin,
            cell=cell,
        )

    def _ensure_snapshot(self) -> _GridSnapshot | None:
        if self._snapshot is None:
            self._snapshot = self._build_snapshot()
        return self._snapshot

    def _gather_candidates(
        self, snap: _GridSnapshot, lo_cells: np.ndarray, hi_cells: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(query, element-row)`` candidate pairs for cell windows.

        ``lo_cells``/``hi_cells`` are ``(m, d)`` integer window corners.
        Base rows are gathered with the searchsorted/repeat machinery and
        filtered through the ``alive`` mask; overlay rows (patched-in
        inserts, addressed past the base table) are matched per overlay cell
        — the overlay is bounded by the compaction threshold, so that loop
        stays small.  Pairs may repeat per (query, row); callers dedup.
        """
        counters = self.counters
        # Flatten all query windows into (query, cell-id) pairs.
        qidx, flat_keys = _expand_windows(lo_cells, hi_cells, snap.strides)

        # Resolve each distinct cell id once against the occupied-cell table.
        uniq_keys, inverse = np.unique(flat_keys, return_inverse=True)
        counters.cells_probed += len(uniq_keys)
        pos = np.searchsorted(snap.keys, uniq_keys)
        pos_safe = np.minimum(pos, len(snap.keys) - 1)
        occupied = snap.keys[pos_safe] == uniq_keys
        keep = occupied[inverse]
        q_keep = qidx[keep]
        cell_pos = pos_safe[inverse][keep]

        # Gather every (query, bucket entry) candidate pair.
        bucket_counts = snap.counts[cell_pos]
        n_pairs = int(bucket_counts.sum())
        pair_q = np.repeat(q_keep, bucket_counts)
        offset = np.arange(n_pairs, dtype=np.int64) - np.repeat(
            np.cumsum(bucket_counts) - bucket_counts, bucket_counts
        )
        rows = snap.entry_rows[np.repeat(snap.starts[cell_pos], bucket_counts) + offset]
        live = snap.alive[rows]
        if not live.all():
            pair_q = pair_q[live]
            rows = rows[live]

        if snap.extra_cells:
            n_base = snap.eids.shape[0]
            res = snap.tops + 1
            extra_q: list[np.ndarray] = [pair_q]
            extra_rows: list[np.ndarray] = [rows]
            for key, idxs in snap.extra_cells.items():
                alive_idxs = [i for i in idxs if snap.extra_alive[i]]
                if not alive_idxs:
                    continue
                coords = (key // snap.strides) % res
                covered = np.nonzero(
                    np.all((lo_cells <= coords) & (coords <= hi_cells), axis=1)
                )[0]
                if covered.size == 0:
                    continue
                counters.cells_probed += 1
                extra_q.append(np.repeat(covered, len(alive_idxs)))
                extra_rows.append(
                    np.tile(np.array(alive_idxs, dtype=np.int64) + n_base, covered.size)
                )
            if len(extra_q) > 1:
                pair_q = np.concatenate(extra_q)
                rows = np.concatenate(extra_rows)
        return pair_q, rows

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """All queries in one pass: vectorized cell bucketing + overlap tests.

        Every query's covered cell window is expanded into a flat
        ``(query, cell)`` list; distinct cell ids are resolved against the
        sorted occupied-cell table with one :func:`np.searchsorted`, bucket
        entries are gathered with ``np.repeat`` arithmetic, and a single
        vectorized AABB overlap test plus an :func:`np.unique` dedup (for
        replicated elements) yields per-query id lists.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        if not self._boxes:
            return [[] for _ in range(m)]
        snap = self._ensure_snapshot()
        if snap is None:
            return super().batch_range_query(queries)
        dims = snap.tops.shape[0]
        if queries.shape[2] != dims:
            raise ValueError(f"queries have {queries.shape[2]} dims, index has {dims}")
        counters = self.counters
        assert self._cell_size is not None
        cell = self._cell_size

        lo_cells = _cell_coords(queries[:, 0, :], snap.origin, cell, snap.tops)
        hi_cells = _cell_coords(queries[:, 1, :], snap.origin, cell, snap.tops)
        if int(np.prod(hi_cells - lo_cells + 1, axis=1).sum()) > _BATCH_WINDOW_CAP:
            return super().batch_range_query(queries)

        pair_q, rows = self._gather_candidates(snap, lo_cells, hi_cells)
        n_pairs = pair_q.shape[0]
        if n_pairs == 0:
            return [[] for _ in range(m)]
        eids_all, boxes_all, _ = snap.tables()

        candidates = boxes_all[rows]
        qb = queries[pair_q]
        hit = np.all(
            (qb[:, 0, :] <= candidates[:, 1, :]) & (candidates[:, 0, :] <= qb[:, 1, :]),
            axis=-1,
        )
        counters.elem_tests += n_pairs
        counters.bytes_touched += n_pairs * (dims * _BOX_BYTES_PER_DIM + 8)

        hit_q = pair_q[hit]
        hit_rows = rows[hit]
        if hit_q.size == 0:
            return [[] for _ in range(m)]
        # Dedup replicated elements per query on a single scalar key (query
        # major, element row minor) — sorted output is already grouped by
        # query, so results fall out of one tolist + slicing.
        n_rows = eids_all.shape[0]
        combined = np.unique(hit_q.astype(np.int64) * n_rows + hit_rows)
        all_ids = eids_all[combined % n_rows].tolist()
        bounds = np.searchsorted(combined, np.arange(1, m) * n_rows).tolist()
        bounds = [0, *bounds, len(all_ids)]
        return [all_ids[bounds[i] : bounds[i + 1]] for i in range(m)]

    def batch_knn(
        self, points: np.ndarray | Sequence[Sequence[float]], k: int
    ) -> list[KNNResult]:
        """Vectorized expanding-ring kNN over the dense snapshot.

        All still-unresolved queries share one cell-window sweep per round:
        their probe radius starts at one cell side and doubles until at
        least ``min(k, n)`` candidates are *confirmed* (distance within the
        probe radius, so no unseen element can beat them).  Candidates are
        gathered with the same machinery as :meth:`batch_range_query`;
        per-query results follow the deterministic ``(distance, id)`` order.
        """
        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or not self._boxes or self._universe is None:
            return [[] for _ in range(m)]
        snap = self._ensure_snapshot()
        if snap is None:
            return super().batch_knn(pts, k)
        dims = snap.tops.shape[0]
        if pts.shape[1] != dims:
            raise ValueError(f"points have {pts.shape[1]} dims, index has {dims}")
        counters = self.counters
        assert self._cell_size is not None
        cell = self._cell_size
        eids_all, boxes_all, _ = snap.tables()
        n_rows = eids_all.shape[0]
        kk = min(k, len(self._boxes))

        # Per-query give-up radius, as in the scalar path: beyond the
        # farthest universe corner the probe provably covers every element.
        lo_u = np.asarray(self._universe.lo)
        hi_u = np.asarray(self._universe.hi)
        corner_gaps = np.maximum(np.abs(pts - lo_u), np.abs(pts - hi_u))
        limits = np.sqrt(np.einsum("md,md->m", corner_gaps, corner_gaps)) + cell

        results: list[KNNResult] = [[] for _ in range(m)]
        active = np.arange(m)
        radius = cell
        while active.size:
            apts = pts[active]
            lo_cells = _cell_coords(apts - radius, snap.origin, cell, snap.tops)
            hi_cells = _cell_coords(apts + radius, snap.origin, cell, snap.tops)
            if int(np.prod(hi_cells - lo_cells + 1, axis=1).sum()) > _BATCH_WINDOW_CAP:
                for q in active.tolist():
                    results[q] = self.knn(tuple(pts[q]), k)
                break
            pair_q, rows = self._gather_candidates(snap, lo_cells, hi_cells)
            if pair_q.size:
                combined = np.unique(pair_q.astype(np.int64) * n_rows + rows)
                cand_q = combined // n_rows
                cand_rows = combined % n_rows
                cand_boxes = boxes_all[cand_rows]
                p = apts[cand_q]
                gaps = np.maximum(
                    np.maximum(cand_boxes[:, 0, :] - p, p - cand_boxes[:, 1, :]), 0.0
                )
                dists = np.sqrt(np.einsum("cd,cd->c", gaps, gaps))
                counters.elem_tests += combined.size
                confirmed = np.bincount(
                    cand_q[dists <= radius], minlength=active.size
                )
            else:
                cand_q = np.empty(0, dtype=np.int64)
                cand_rows = np.empty(0, dtype=np.int64)
                dists = np.empty(0)
                confirmed = np.zeros(active.size, dtype=np.int64)
            done = (confirmed >= kk) | (radius > limits[active])
            for local in np.nonzero(done)[0].tolist():
                start, end = np.searchsorted(cand_q, [local, local + 1])
                slice_d = dists[start:end]
                slice_e = eids_all[cand_rows[start:end]]
                order = np.lexsort((slice_e, slice_d))[:kk]
                results[int(active[local])] = list(
                    zip(slice_d[order].tolist(), slice_e[order].tolist())
                )
                counters.heap_ops += int(order.shape[0])
            active = active[~done]
            radius *= 2.0
        return results

    def __len__(self) -> int:
        return len(self._boxes)

    # -- introspection ---------------------------------------------------------------

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        dims = self._universe.dims if self._universe else 0
        eids = np.fromiter(self._boxes.keys(), dtype=np.int64, count=len(self._boxes))
        return eids, boxes_to_array(list(self._boxes.values()), dims=dims)

    def snapshot_export(self) -> tuple[dict[str, np.ndarray], float] | None:
        """The compacted snapshot as plain arrays, for shared-memory export.

        Returns ``(arrays, cell_size)`` where ``arrays`` holds every
        :class:`_GridSnapshot` field plus the ``(2, d)`` universe corners,
        or ``None`` when the grid is empty or unlinearizable.  A dirty
        overlay forces a compacting rebuild first so the exported base
        arrays alone describe the full contents — the serving worker pool
        rehydrates them into a read-only grid without replaying patches
        (:mod:`repro.serving.snapshots`).
        """
        if not self._boxes:
            return None
        snap = self._ensure_snapshot()
        if snap is not None and snap.dirty:
            snap = self._build_snapshot()
            self._snapshot = snap
        if snap is None:
            return None
        assert self._universe is not None
        arrays = {
            "keys": snap.keys,
            "starts": snap.starts,
            "counts": snap.counts,
            "entry_rows": snap.entry_rows,
            "eids": snap.eids,
            "boxes": snap.boxes,
            "strides": snap.strides,
            "tops": snap.tops,
            "origin": snap.origin,
            "universe": np.array([self._universe.lo, self._universe.hi], dtype=np.float64),
        }
        return arrays, float(snap.cell)

    @property
    def occupied_cells(self) -> int:
        return sum(1 for bucket in self._cells.values() if bucket)

    @property
    def replication_factor(self) -> float:
        """Stored entries per distinct element (1.0 = each in one cell)."""
        if not self._boxes:
            return 0.0
        stored = sum(len(cells) for cells in self._cells_of.values())
        return stored / len(self._boxes)

    def memory_bytes(self) -> int:
        if not self._boxes:
            return 0
        dims = self._universe.dims if self._universe else 3
        stored = sum(len(cells) for cells in self._cells_of.values())
        return stored * (dims * _BOX_BYTES_PER_DIM + 8) + len(self._cells) * 16

    # -- internals ---------------------------------------------------------------------

    def _coord(self, value: float, axis: int) -> int:
        assert self._universe is not None and self._cell_size is not None
        raw = int(math.floor((value - self._universe.lo[axis]) / self._cell_size))
        top = int(math.ceil(self._universe.extents()[axis] / self._cell_size)) - 1
        return max(0, min(raw, max(top, 0)))

    def _covered_cells(self, box: AABB) -> Iterable[CellKey]:
        dims = box.dims
        lo = [self._coord(box.lo[axis], axis) for axis in range(dims)]
        hi = [self._coord(box.hi[axis], axis) for axis in range(dims)]
        return _iter_window(lo, hi)

    def _cell_range(self, box: AABB) -> Iterable[CellKey]:
        return self._covered_cells(box)

    def _place(self, eid: int, box: AABB) -> None:
        keys = tuple(self._covered_cells(box))
        for key in keys:
            self._cells.setdefault(key, {})[eid] = box
        self._boxes[eid] = box
        self._cells_of[eid] = keys
        if self._snapshot is not None:
            self._snapshot.patch_insert(eid, box)
            self._maybe_compact()

    def _unplace(self, eid: int) -> None:
        for key in self._cells_of.pop(eid):
            bucket = self._cells.get(key)
            if bucket is not None:
                bucket.pop(eid, None)
                if not bucket:
                    del self._cells[key]
        del self._boxes[eid]
        if self._snapshot is not None:
            self._snapshot.patch_remove(eid)
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Deferred compaction: drop the snapshot once the dirty overlay
        outgrows a fraction of the base (the next batch repacks)."""
        snap = self._snapshot
        if snap is None:
            return
        threshold = max(_SNAPSHOT_DIRTY_MIN, min(len(snap.eids) // 4, _SNAPSHOT_DIRTY_MAX))
        if snap.dirty > threshold:
            self._snapshot = None


def _iter_window(lo: list[int], hi: list[int]) -> Iterable[CellKey]:
    """All integer coordinate tuples in the inclusive window [lo, hi]."""
    if len(lo) == 1:
        for i in range(lo[0], hi[0] + 1):
            yield (i,)
        return
    for i in range(lo[0], hi[0] + 1):
        for tail in _iter_window(lo[1:], hi[1:]):
            yield (i, *tail)
