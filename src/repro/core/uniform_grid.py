"""A single uniform grid — the paper's primary in-memory candidate.

"One direction to develop novel spatial indexes for main memory may be to use
a single uniform grid and therefore to avoid the tree structure needed for
access."  (§3.3)

Design points realized here:

* **No tree traversal.**  A range query computes the overlapped cell window
  arithmetically and tests only the elements in those cells; the counters
  show zero ``node_tests``.
* **Cheap massive updates.**  "the small movement means that only few
  elements switch grid cell in every step, thereby requiring few updates to
  the data structure" (§4.3): :meth:`UniformGrid.update` relocates an element
  only when its cell set changes; otherwise it rewrites the stored box in
  place.  :attr:`cell_switches` counts how often relocation was actually
  needed, which the massive-update benchmarks report.
* **Replication-aware.**  Volumetric elements are registered in every cell
  they overlap; queries deduplicate.  The resolution model
  (:mod:`repro.core.resolution`) balances replication against probe counts.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16

CellKey = tuple[int, ...]


class UniformGrid(SpatialIndex):
    """Hash-addressed uniform grid over a fixed universe.

    Parameters
    ----------
    universe:
        The indexed region.  Elements outside are clamped into edge cells
        (queries remain correct; see ``_cell_range``).
    cell_size:
        Cell side length, uniform across axes.  Use
        :func:`repro.core.resolution.optimal_cell_size` to pick it.
    """

    def __init__(
        self,
        universe: AABB | None = None,
        cell_size: float | None = None,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._universe = universe
        self._cell_size = cell_size
        self._cells: dict[CellKey, dict[int, AABB]] = {}
        self._boxes: dict[int, AABB] = {}
        self._cells_of: dict[int, tuple[CellKey, ...]] = {}
        self.cell_switches = 0
        self.in_place_updates = 0

    # -- configuration -----------------------------------------------------------

    @property
    def universe(self) -> AABB | None:
        return self._universe

    @property
    def cell_size(self) -> float | None:
        return self._cell_size

    def _ensure_configured(self, items: list[Item]) -> None:
        if self._universe is None:
            hull = union_all(box for _, box in items)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        if self._cell_size is None:
            # Default heuristic: aim for ~2 elements per occupied cell.
            from repro.core.resolution import default_cell_size

            self._cell_size = default_cell_size(len(items), self._universe)

    # -- maintenance ---------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._cells = {}
        self._boxes = {}
        self._cells_of = {}
        self.cell_switches = 0
        self.in_place_updates = 0
        if not materialized:
            return
        self._ensure_configured(materialized)
        for eid, box in materialized:
            self._place(eid, box)

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._ensure_configured([(eid, box)])
        self._place(eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._unplace(eid)
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Relocate only when the covered cell set changes (the §4.3 win)."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        new_cells = tuple(self._covered_cells(new_box))
        old_cells = self._cells_of[eid]
        if new_cells == old_cells:
            self._boxes[eid] = new_box
            for key in old_cells:
                self._cells[key][eid] = new_box
            self.in_place_updates += 1
        else:
            self._unplace(eid)
            self._place(eid, new_box)
            self.cell_switches += 1
        self.counters.updates += 1

    # -- queries --------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if not self._boxes:
            return []
        counters = self.counters
        dims = box.dims
        seen: set[int] = set()
        results: list[int] = []
        for key in self._cell_range(box):
            counters.cells_probed += 1
            bucket = self._cells.get(key)
            if not bucket:
                continue
            counters.bytes_touched += len(bucket) * (dims * _BOX_BYTES_PER_DIM + 8)
            for eid, elem_box in bucket.items():
                if eid in seen:
                    continue
                counters.elem_tests += 1
                if elem_box.intersects(box):
                    seen.add(eid)
                    results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Expanding-window kNN: probe growing cell rings until k confirmed."""
        if k <= 0 or not self._boxes or self._universe is None:
            return []
        assert self._cell_size is not None
        counters = self.counters
        point = tuple(point)
        radius = self._cell_size
        limit = self._universe.max_distance_to_point(point) + self._cell_size
        while True:
            probe = AABB.from_center(point, radius)
            candidates = self.range_query(probe)
            scored = []
            for eid in candidates:
                dist = self._boxes[eid].min_distance_to_point(point)
                scored.append((dist, eid))
                counters.heap_ops += 1
            confirmed = [(d, e) for d, e in scored if d <= radius]
            if len(confirmed) >= k:
                return heapq.nsmallest(k, scored)
            if radius > limit:
                scored.sort()
                return scored[:k]
            radius *= 2.0

    def __len__(self) -> int:
        return len(self._boxes)

    # -- introspection ---------------------------------------------------------------

    @property
    def occupied_cells(self) -> int:
        return sum(1 for bucket in self._cells.values() if bucket)

    @property
    def replication_factor(self) -> float:
        """Stored entries per distinct element (1.0 = each in one cell)."""
        if not self._boxes:
            return 0.0
        stored = sum(len(cells) for cells in self._cells_of.values())
        return stored / len(self._boxes)

    def memory_bytes(self) -> int:
        if not self._boxes:
            return 0
        dims = self._universe.dims if self._universe else 3
        stored = sum(len(cells) for cells in self._cells_of.values())
        return stored * (dims * _BOX_BYTES_PER_DIM + 8) + len(self._cells) * 16

    # -- internals ---------------------------------------------------------------------

    def _coord(self, value: float, axis: int) -> int:
        assert self._universe is not None and self._cell_size is not None
        raw = int(math.floor((value - self._universe.lo[axis]) / self._cell_size))
        top = int(math.ceil(self._universe.extents()[axis] / self._cell_size)) - 1
        return max(0, min(raw, max(top, 0)))

    def _covered_cells(self, box: AABB) -> Iterable[CellKey]:
        dims = box.dims
        lo = [self._coord(box.lo[axis], axis) for axis in range(dims)]
        hi = [self._coord(box.hi[axis], axis) for axis in range(dims)]
        return _iter_window(lo, hi)

    def _cell_range(self, box: AABB) -> Iterable[CellKey]:
        return self._covered_cells(box)

    def _place(self, eid: int, box: AABB) -> None:
        keys = tuple(self._covered_cells(box))
        for key in keys:
            self._cells.setdefault(key, {})[eid] = box
        self._boxes[eid] = box
        self._cells_of[eid] = keys

    def _unplace(self, eid: int) -> None:
        for key in self._cells_of.pop(eid):
            bucket = self._cells.get(key)
            if bucket is not None:
                bucket.pop(eid, None)
                if not bucket:
                    del self._cells[key]
        del self._boxes[eid]


def _iter_window(lo: list[int], hi: list[int]) -> Iterable[CellKey]:
    """All integer coordinate tuples in the inclusive window [lo, hi]."""
    if len(lo) == 1:
        for i in range(lo[0], hi[0] + 1):
            yield (i,)
        return
    for i in range(lo[0], hi[0] + 1):
        for tail in _iter_window(lo[1:], hi[1:]):
            yield (i, *tail)
