"""The paper's proposed research direction, realized.

Section 3.3 and Section 5 of the paper sketch what a spatial index for the
simulation sciences should look like: grid-based (no tree traversal),
cache-friendly, cheap to update when almost every element moves a little, and
governed by an analytical resolution model.  This package is that sketch,
built out:

* :class:`~repro.core.uniform_grid.UniformGrid` — a single uniform grid with
  O(1) incremental updates (elements that stay inside their cells cost a
  dictionary write, nothing more);
* :class:`~repro.core.multires_grid.MultiResolutionGrid` — "several uniform
  grids each with a different resolution", elements assigned by size, queries
  fanned across levels;
* :mod:`~repro.core.resolution` — the analytical model the paper calls for,
  predicting query cost as a function of cell size and picking the optimum;
* :class:`~repro.core.spatial_lsh.SpatialLSH` — locality-sensitive hashing
  for kNN in low dimensions, no tree structure;
* :mod:`~repro.core.amortization` — the Section 4.1 economics: when does
  updating beat rebuilding beat not indexing at all;
* :class:`~repro.core.adaptive.AdaptiveSimulationIndex` — the "new point in
  the design space": a facade that applies the amortization model every time
  step to choose update / rebuild / scan automatically.
"""

from repro.core.uniform_grid import UniformGrid
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.resolution import GridCostModel, optimal_cell_size
from repro.core.spatial_lsh import SpatialLSH
from repro.core.amortization import MaintenanceCosts, UpdateEconomics
from repro.core.adaptive import AdaptiveSimulationIndex

__all__ = [
    "UniformGrid",
    "MultiResolutionGrid",
    "GridCostModel",
    "optimal_cell_size",
    "SpatialLSH",
    "MaintenanceCosts",
    "UpdateEconomics",
    "AdaptiveSimulationIndex",
]
