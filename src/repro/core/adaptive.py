"""The adaptive simulation index — the paper's "new point in the design
space" (Section 5).

"What is needed are spatial indexes for memory that support large-scale
updates. ... a spatial index that executes spatial queries and the spatial
join faster than without index, but at the same time is faster to update or
rebuild.  The new indexes will ultimately trade off query execution time for
substantially faster index build time."

:class:`AdaptiveSimulationIndex` wraps a :class:`~repro.core.uniform_grid.UniformGrid`
(chosen per the paper's conclusion that grid-based designs fit both
challenges) and drives it with the Section 4.1 economics: at every simulation
step the caller hands over the step's motion, and the facade either applies
incremental updates, rebuilds the grid, or drops to scan mode, whichever the
calibrated :class:`~repro.core.amortization.MaintenanceCosts` predicts to be
cheapest for the announced query load.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.amortization import MaintenanceCosts, Strategy, UpdateEconomics
from repro.core.uniform_grid import UniformGrid
from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex
from repro.indexes.linear_scan import LinearScan
from repro.instrumentation.counters import Counters


class AdaptiveSimulationIndex(SpatialIndex):
    """Grid-backed index that re-decides its maintenance strategy per step.

    Parameters
    ----------
    universe:
        Simulation universe (required: simulations know their domain).
    cell_size:
        Grid resolution; defaults to the analytical model's optimum when a
        hint about query extent is supplied at bulk load, else the density
        heuristic.
    costs:
        Calibrated per-step economics.  Without it the facade stays in
        incremental-update mode (the grid's strong suit) and records what it
        would have decided once costs become available.
    """

    def __init__(
        self,
        universe: AABB,
        cell_size: float | None = None,
        costs: MaintenanceCosts | None = None,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        self._grid = UniformGrid(universe=universe, cell_size=cell_size, counters=self.counters)
        self._scan = LinearScan(counters=self.counters)
        self._economics = UpdateEconomics(costs) if costs is not None else None
        self._active: SpatialIndex = self._grid
        self._items: dict[int, AABB] = {}
        self._grid_stale = False
        self.strategy_history: list[Strategy] = []

    @property
    def active_strategy(self) -> Strategy:
        if self._active is self._scan:
            return Strategy.SCAN
        return Strategy.UPDATE

    def set_costs(self, costs: MaintenanceCosts) -> None:
        self._economics = UpdateEconomics(costs)

    # -- SpatialIndex surface ----------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = list(items)
        self._items = dict(materialized)
        self._grid.bulk_load(materialized)
        self._scan.bulk_load(materialized)
        self._active = self._grid

    def insert(self, eid: int, box: AABB) -> None:
        self._items[eid] = box
        self._grid.insert(eid, box)
        self._scan.insert(eid, box)

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._items:
            raise KeyError(f"element {eid} not in index")
        del self._items[eid]
        self._grid.delete(eid, box)
        self._scan.delete(eid, box)

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        self._items[eid] = new_box
        self._grid.update(eid, old_box, new_box)
        self._scan.update(eid, old_box, new_box)

    def range_query(self, box: AABB) -> list[int]:
        return self._active.range_query(box)

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        return self._active.knn(point, k)

    def batch_range_query(self, boxes) -> list[list[int]]:
        """Delegate to the active structure's vectorized batch kernel."""
        return self._active.batch_range_query(boxes)

    def batch_knn(self, points, k: int) -> list[KNNResult]:
        """Delegate to the active structure's vectorized batch kernel."""
        return self._active.batch_knn(points, k)

    def __len__(self) -> int:
        return len(self._items)

    # -- the per-step decision -----------------------------------------------------

    def step(
        self,
        moves: Sequence[tuple[int, AABB, AABB]],
        expected_queries: int,
    ) -> Strategy:
        """Apply one simulation step's motion under the cheapest strategy.

        ``moves`` are ``(eid, old_box, new_box)``; ``expected_queries`` is
        the announced analysis/monitoring query count for this step.
        Returns the chosen strategy (also appended to
        :attr:`strategy_history`).
        """
        changed_fraction = len(moves) / max(len(self._items), 1)
        if self._economics is None:
            strategy = Strategy.UPDATE
        else:
            strategy = self._economics.choose(changed_fraction, expected_queries)

        if strategy is Strategy.SCAN:
            # Keep only the scan structure current; the grid will be rebuilt
            # on the next non-scan step.
            for eid, old_box, new_box in moves:
                self._items[eid] = new_box
                self._scan.update(eid, old_box, new_box)
            self._active = self._scan
            self._grid_stale = True
        elif strategy is Strategy.REBUILD:
            for eid, old_box, new_box in moves:
                self._items[eid] = new_box
                self._scan.update(eid, old_box, new_box)
            self._grid.bulk_load(list(self._items.items()))
            self._active = self._grid
            self._grid_stale = False
        else:
            if getattr(self, "_grid_stale", False):
                # Coming back from scan mode: refresh the grid wholesale.
                for eid, old_box, new_box in moves:
                    self._items[eid] = new_box
                    self._scan.update(eid, old_box, new_box)
                self._grid.bulk_load(list(self._items.items()))
                self._grid_stale = False
            else:
                for eid, old_box, new_box in moves:
                    self._items[eid] = new_box
                    self._grid.update(eid, old_box, new_box)
                    self._scan.update(eid, old_box, new_box)
            self._active = self._grid

        self.strategy_history.append(strategy)
        return strategy
