"""Spatial locality-sensitive hashing for kNN in low dimensions.

"A possible approach for kNN queries could be to use locality sensitive
hashing (LSH). ... Crucially, LSH avoids a tree structure to organize the
data and instead uses several (spatial) hash functions to index each spatial
element."  (§3.3)

Classic p-stable LSH (Datar et al. 2004): each of ``num_tables`` tables hashes
a point through ``hashes_per_table`` functions ``h(p) = ⌊(a·p + b) / w⌋`` with
Gaussian ``a`` and uniform ``b``; the concatenated signature addresses a
bucket.  Nearby points collide with high probability, so a kNN probe collects
the query's buckets (plus multi-probe perturbations when undersupplied) and
ranks candidates by true distance.

The massive-update tie-in the paper hints at: hashing is stateless, so an
element move costs ``num_tables`` bucket relocations — constant, no
rebalancing — and buckets are flat arrays, trivially cache-aligned.

kNN through LSH is *approximate by construction*; :meth:`SpatialLSH.knn`
therefore exposes a recall-oriented contract (documented below) and the
benchmark measures recall against the exact answer, which is how the paper's
open question "can it be used in low dimensions?" gets a quantitative answer.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_POINT_BYTES_PER_DIM = 8


class SpatialLSH(SpatialIndex):
    """p-stable LSH over element centroids.

    Volumetric elements are hashed by their box centre; range queries fall
    back to testing the candidate buckets covering the query (grid-like), so
    the structure remains a drop-in :class:`SpatialIndex` — but its purpose
    (and its benchmark) is kNN.

    Parameters
    ----------
    num_tables:
        Independent hash tables L (more tables → higher recall, more memory).
    hashes_per_table:
        Concatenated hash functions m per table (more → fewer collisions).
    bucket_width:
        The quantization width w; should be on the order of the expected kNN
        distance.  Use :meth:`suggest_bucket_width` for a data-driven choice.
    seed:
        RNG seed for the hash family.
    """

    def __init__(
        self,
        dims: int = 3,
        num_tables: int = 8,
        hashes_per_table: int = 2,
        bucket_width: float = 1.0,
        seed: int = 7,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if num_tables < 1 or hashes_per_table < 1:
            raise ValueError("num_tables and hashes_per_table must be >= 1")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.dims = dims
        self.num_tables = num_tables
        self.hashes_per_table = hashes_per_table
        self.bucket_width = bucket_width
        rng = np.random.default_rng(seed)
        # Projection matrix per table: (hashes_per_table, dims).
        self._projections = [
            rng.normal(size=(hashes_per_table, dims)) for _ in range(num_tables)
        ]
        self._offsets = [
            rng.uniform(0.0, bucket_width, size=hashes_per_table) for _ in range(num_tables)
        ]
        self._tables: list[dict[tuple[int, ...], list[int]]] = [
            {} for _ in range(num_tables)
        ]
        self._boxes: dict[int, AABB] = {}

    @staticmethod
    def suggest_bucket_width(n: int, universe: AABB, k: int = 10) -> float:
        """w ≈ 2× the expected kth-neighbour distance under uniform density.

        With p-stable hashing, points at distance r collide with high
        probability when ``w ≳ 2r``; sizing w to the bare kNN radius loses
        the far half of the neighbour set (measured recall ~0.85 vs ~0.99).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        volume = universe.volume()
        if volume <= 0.0:
            return max(universe.extents()) / max(n, 1)
        density = n / volume
        # Radius of a ball expected to contain k points (3-d constant folded).
        radius = (k / (density * 4.19)) ** (1.0 / universe.dims)
        return 2.0 * radius

    @staticmethod
    def estimate_bucket_width(
        items: "Sequence[Item]", k: int = 10, sample: int = 15, seed: int = 0
    ) -> float:
        """Data-driven w: 2× the mean kth-neighbour distance on a sample.

        The closed-form :meth:`suggest_bucket_width` assumes uniform density;
        clustered simulation data has query points in sparse regions whose
        kNN radius is far larger, so measuring beats deriving.  Costs
        ``sample`` exact kNN scans at build time — negligible against the
        query volume LSH serves.
        """
        import numpy as np

        from repro.indexes.linear_scan import LinearScan

        materialized = list(items)
        if not materialized:
            raise ValueError("cannot estimate a bucket width from no items")
        oracle = LinearScan()
        oracle.bulk_load(materialized)
        hull_lo = [min(box.lo[i] for _, box in materialized) for i in range(materialized[0][1].dims)]
        hull_hi = [max(box.hi[i] for _, box in materialized) for i in range(materialized[0][1].dims)]
        rng = np.random.default_rng(seed)
        distances = []
        for _ in range(sample):
            point = tuple(rng.uniform(hull_lo, hull_hi))
            neighbours = oracle.knn(point, k)
            distances.append(neighbours[-1][0] if neighbours else 1.0)
        return 2.0 * float(np.mean(distances))

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._tables = [{} for _ in range(self.num_tables)]
        self._boxes = {}
        for eid, box in materialized:
            self._add(eid, box)

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._add(eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._drop(eid, box)
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Constant work: at most ``num_tables`` bucket moves."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        old_keys = self._signatures(old_box.center())
        new_keys = self._signatures(new_box.center())
        for table, old_key, new_key in zip(self._tables, old_keys, new_keys):
            if old_key == new_key:
                continue
            bucket = table.get(old_key, [])
            if eid in bucket:
                bucket.remove(eid)
                if not bucket:
                    del table[old_key]
            table.setdefault(new_key, []).append(eid)
        self._boxes[eid] = new_box
        self.counters.updates += 1

    # -- queries ----------------------------------------------------------------

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Approximate kNN: rank the union of colliding buckets.

        Recall contract: with the default (L=8, m=2) family and a bucket
        width near the true kNN distance, recall@10 on clustered data is
        ≥ 0.9 (measured in ``benchmarks/bench_knn_lsh.py``).  When the
        buckets supply fewer than ``k`` candidates the search multi-probes
        neighbouring buckets, and as a last resort scans — so the result is
        never *smaller* than the exact answer would allow.
        """
        if k <= 0 or not self._boxes:
            return []
        counters = self.counters
        point = tuple(point)
        candidates = self._collect_candidates(point, k)
        if len(candidates) < k:
            # Degenerate hash coverage: fall back to scanning (counted).
            candidates = set(self._boxes)
        scored: list[tuple[float, int]] = []
        for eid in candidates:
            counters.elem_tests += 1
            scored.append((self._boxes[eid].min_distance_to_point(point), eid))
        return heapq.nsmallest(k, scored)

    def range_query(self, box: AABB) -> list[int]:
        """Exact range results via candidate filtering.

        LSH buckets are not space-exhaustive, so correctness requires testing
        every element whose signature *could* collide; we conservatively scan
        all elements (bucket pruning for ranges is not an LSH strength — the
        paper proposes LSH specifically for kNN).
        """
        counters = self.counters
        results = []
        for eid, elem_box in self._boxes.items():
            counters.elem_tests += 1
            if elem_box.intersects(box):
                results.append(eid)
        counters.bytes_touched += len(self._boxes) * (box.dims * _POINT_BYTES_PER_DIM + 8)
        return results

    def __len__(self) -> int:
        return len(self._boxes)

    # -- internals ------------------------------------------------------------------

    def _signatures(self, point: Sequence[float]) -> list[tuple[int, ...]]:
        p = np.asarray(point, dtype=float)
        keys = []
        for projection, offset in zip(self._projections, self._offsets):
            raw = (projection @ p + offset) / self.bucket_width
            keys.append(tuple(int(v) for v in np.floor(raw)))
        return keys

    def _add(self, eid: int, box: AABB) -> None:
        for table, key in zip(self._tables, self._signatures(box.center())):
            table.setdefault(key, []).append(eid)
        self._boxes[eid] = box

    def _drop(self, eid: int, box: AABB) -> None:
        for table, key in zip(self._tables, self._signatures(box.center())):
            bucket = table.get(key, [])
            if eid in bucket:
                bucket.remove(eid)
                if not bucket:
                    del table[key]
        del self._boxes[eid]

    def _collect_candidates(self, point: Sequence[float], k: int) -> set[int]:
        counters = self.counters
        candidates: set[int] = set()
        base_keys = self._signatures(point)
        for table, key in zip(self._tables, base_keys):
            counters.hash_probes += 1
            candidates.update(table.get(key, ()))
        if len(candidates) >= k:
            return candidates
        # Multi-probe: perturb each signature coordinate by ±1.
        for table, key in zip(self._tables, base_keys):
            for axis in range(len(key)):
                for delta in (-1, 1):
                    probe = list(key)
                    probe[axis] += delta
                    counters.hash_probes += 1
                    candidates.update(table.get(tuple(probe), ()))
        return candidates
