"""Multi-resolution grid: "several uniform grids each with a different
resolution" (§3.3).

The paper's answer to the resolution dilemma: one grid cannot suit both tiny
and huge elements (or queries), so keep a small stack of uniform grids whose
cell sizes shrink geometrically.  Every element lives in exactly **one**
grid — the finest whose cells are still at least as large as the element,
which caps replication at 2^d cells per element — and each query is executed
on every populated level ("queries may be split and each part ... is executed
on the grid with the best suited resolution").

Updates inherit the uniform grid's economics: an element that moves without
leaving its cells costs an in-place write; level migration only happens when
an element's *size* changes materially.

Batch snapshots are maintained **per level**: each level's
:class:`~repro.core.uniform_grid.UniformGrid` owns its own incrementally
patched ``_GridSnapshot``, so a level migration patches exactly two of them
— a removal on the source level, an insertion on the destination level —
and every other level's packed snapshot survives untouched.
:attr:`snapshot_rebuilds` aggregates the per-level pack counters so tests
can pin that no migration triggers a wholesale repack.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, as_point_array, union_all
from repro.core.uniform_grid import UniformGrid
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters


class MultiResolutionGrid(SpatialIndex):
    """A stack of uniform grids with geometrically shrinking cells.

    Parameters
    ----------
    universe:
        Indexed region (derived from the first bulk load when omitted).
    levels:
        Number of grids.
    coarsest_cell:
        Cell side of level 0; level L uses ``coarsest_cell / ratio**L``.
        Defaults to ``universe_extent / 4``.
    ratio:
        Geometric shrink factor between levels (default 4).
    """

    def __init__(
        self,
        universe: AABB | None = None,
        levels: int = 4,
        coarsest_cell: float | None = None,
        ratio: float = 4.0,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {ratio}")
        self.levels = levels
        self.ratio = ratio
        self._universe = universe
        self._coarsest_cell = coarsest_cell
        self._grids: list[UniformGrid] | None = None
        self._level_of: dict[int, int] = {}
        self._boxes: dict[int, AABB] = {}
        # Updates whose size change moved the element to a different level;
        # each patches exactly the source and destination level snapshots.
        self.level_migrations = 0

    # -- configuration ------------------------------------------------------------

    def _ensure_grids(self, items: list[Item]) -> None:
        if self._grids is not None:
            return
        if self._universe is None:
            hull = union_all(box for _, box in items)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        if self._coarsest_cell is None:
            self._coarsest_cell = max(self._universe.extents()) / 4.0
        self._grids = []
        for level in range(self.levels):
            cell = self._coarsest_cell / (self.ratio**level)
            self._grids.append(
                UniformGrid(universe=self._universe, cell_size=cell, counters=self.counters)
            )

    def _level_for(self, box: AABB) -> int:
        """Finest level whose cells still cover the element's extent."""
        assert self._grids is not None and self._coarsest_cell is not None
        extent = max(box.extents())
        if extent <= 0.0:
            return self.levels - 1
        # cells at level L have side coarsest/ratio^L; need side >= extent.
        # Denormal extents can push the quotient (and hence the log) to
        # +inf, which int() cannot take — clamp before flooring.
        raw = math.log(self._coarsest_cell / extent, self.ratio)
        if raw >= self.levels - 1:
            return self.levels - 1
        return max(0, int(math.floor(raw)))

    # -- maintenance -----------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._grids = None
        self._level_of = {}
        self._boxes = {}
        self.level_migrations = 0
        if not materialized:
            return
        self._ensure_grids(materialized)
        assert self._grids is not None
        per_level: list[list[Item]] = [[] for _ in range(self.levels)]
        for eid, box in materialized:
            level = self._level_for(box)
            per_level[level].append((eid, box))
            self._level_of[eid] = level
            self._boxes[eid] = box
        for level, level_items in enumerate(per_level):
            if level_items:
                self._grids[level].bulk_load(level_items)

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._ensure_grids([(eid, box)])
        assert self._grids is not None
        level = self._level_for(box)
        self._grids[level].insert(eid, box)
        self._level_of[eid] = level
        self._boxes[eid] = box
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        assert self._grids is not None
        self._grids[self._level_of[eid]].delete(eid, box)
        del self._level_of[eid]
        del self._boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        assert self._grids is not None
        new_level = self._level_for(new_box)
        old_level = self._level_of[eid]
        if new_level == old_level:
            self._grids[old_level].update(eid, old_box, new_box)
        else:
            # Migration touches exactly two levels; each level grid patches
            # its own snapshot incrementally (remove on source, insert on
            # destination) — the other levels' snapshots stay warm.
            self._grids[old_level].delete(eid, old_box)
            self._grids[new_level].insert(eid, new_box)
            self._level_of[eid] = new_level
            self.level_migrations += 1
        self._boxes[eid] = new_box
        self.counters.updates += 1

    # -- queries -------------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._grids is None:
            return []
        results: list[int] = []
        for grid in self._grids:
            if len(grid):
                results.extend(grid.range_query(box))
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or not self._boxes or self._grids is None:
            return []
        merged: list[tuple[float, int]] = []
        for grid in self._grids:
            if len(grid):
                merged.extend(grid.knn(point, k))
        return heapq.nsmallest(k, merged)

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """One vectorized sweep per populated level, merged per query.

        Elements live in exactly one level, so concatenating the per-level
        answers needs no dedup.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        results: list[list[int]] = [[] for _ in range(m)]
        if self._grids is None:
            return results
        for grid in self._grids:
            if len(grid):
                for merged, part in zip(results, grid.batch_range_query(queries)):
                    merged.extend(part)
        return results

    def batch_knn(
        self, points: np.ndarray | Sequence[Sequence[float]], k: int
    ) -> list[KNNResult]:
        """One vectorized expanding-ring sweep per populated level.

        Each level's :meth:`UniformGrid.batch_knn` answer is exact for the
        elements that level owns, so an ``nsmallest`` merge of the per-level
        ``(distance, id)`` lists is the exact global answer — and because
        every level obeys the deterministic ``(distance, id)`` order, so
        does the lexicographic merge.
        """
        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or not self._boxes or self._grids is None:
            return [[] for _ in range(m)]
        merged: list[list[tuple[float, int]]] = [[] for _ in range(m)]
        for grid in self._grids:
            if len(grid):
                for acc, part in zip(merged, grid.batch_knn(pts, k)):
                    acc.extend(part)
        return [heapq.nsmallest(k, acc) for acc in merged]

    def __len__(self) -> int:
        return len(self._boxes)

    # -- introspection --------------------------------------------------------------------

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        from repro.geometry.aabb import boxes_to_array

        dims = next(iter(self._boxes.values())).dims if self._boxes else 0
        eids = np.fromiter(self._boxes.keys(), dtype=np.int64, count=len(self._boxes))
        return eids, boxes_to_array(list(self._boxes.values()), dims=dims)

    def level_populations(self) -> list[int]:
        if self._grids is None:
            return []
        return [len(grid) for grid in self._grids]

    @property
    def cell_switches(self) -> int:
        if self._grids is None:
            return 0
        return sum(grid.cell_switches for grid in self._grids)

    @property
    def snapshot_rebuilds(self) -> int:
        """Total full snapshot packs across all level grids.

        The per-level batch snapshots are maintained incrementally; this
        only advances when a level packs from scratch (its first batch, or
        deferred compaction after heavy churn) — never because an element
        migrated between levels.
        """
        if self._grids is None:
            return 0
        return sum(grid.snapshot_rebuilds for grid in self._grids)

    def level_snapshot_rebuilds(self) -> list[int]:
        """Per-level pack counters, index-aligned with the level stack."""
        if self._grids is None:
            return []
        return [grid.snapshot_rebuilds for grid in self._grids]

    def memory_bytes(self) -> int:
        if self._grids is None:
            return 0
        return sum(grid.memory_bytes() for grid in self._grids)
