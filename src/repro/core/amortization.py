"""Update-vs-rebuild-vs-scan economics (Section 4.1).

The paper's measurement: updating all elements of a neural-plasticity step in
an R-tree costs 130 s while rebuilding from scratch costs 48 s, so "updating
only is faster than a rebuild if less than 38 % of the dataset change in a
time step" (48 / 130 ≈ 0.37).  It further observes that when few queries run
per step, even the rebuilt index may not amortize and a linear scan wins.

This module makes those decisions first-class:

* :class:`MaintenanceCosts` holds measured (or modeled) per-step costs;
* :class:`UpdateEconomics` computes the crossover fraction and picks the
  cheapest strategy for a step given the changed fraction and query count;
* :func:`calibrate` measures the costs empirically for any index/workload
  pair, which is exactly the experiment behind the paper's numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, SpatialIndex


class Strategy(Enum):
    """Per-step maintenance choices the paper discusses."""

    UPDATE = "update"
    REBUILD = "rebuild"
    SCAN = "scan"


@dataclass
class MaintenanceCosts:
    """Per-step cost inputs, in seconds (measured or modeled).

    ``update_per_element`` is the cost of one delete+insert in the index;
    ``rebuild_fixed`` the cost of a full bulk load; ``query_indexed`` /
    ``query_scan`` the cost of one range query with and without the index.
    """

    update_per_element: float
    rebuild_fixed: float
    query_indexed: float
    query_scan: float
    n_elements: int

    def crossover_fraction(self) -> float:
        """Changed fraction above which rebuilding beats updating.

        The paper's instance: rebuild 48 s, full update 130 s → 0.369.
        """
        full_update = self.update_per_element * self.n_elements
        if full_update <= 0.0:
            return 1.0
        return min(1.0, self.rebuild_fixed / full_update)

    def step_cost(self, strategy: Strategy, changed_fraction: float, queries: int) -> float:
        """Total cost of one simulation step under ``strategy``."""
        if not 0.0 <= changed_fraction <= 1.0:
            raise ValueError(f"changed_fraction must be in [0,1], got {changed_fraction}")
        if strategy is Strategy.UPDATE:
            maintenance = self.update_per_element * self.n_elements * changed_fraction
            return maintenance + queries * self.query_indexed
        if strategy is Strategy.REBUILD:
            return self.rebuild_fixed + queries * self.query_indexed
        return queries * self.query_scan


class UpdateEconomics:
    """Strategy chooser built on :class:`MaintenanceCosts`."""

    def __init__(self, costs: MaintenanceCosts) -> None:
        self.costs = costs

    def choose(self, changed_fraction: float, queries: int) -> Strategy:
        """Cheapest strategy for a step (ties prefer the simpler choice:
        scan over rebuild over update)."""
        options = [
            (self.costs.step_cost(Strategy.SCAN, changed_fraction, queries), 0, Strategy.SCAN),
            (
                self.costs.step_cost(Strategy.REBUILD, changed_fraction, queries),
                1,
                Strategy.REBUILD,
            ),
            (
                self.costs.step_cost(Strategy.UPDATE, changed_fraction, queries),
                2,
                Strategy.UPDATE,
            ),
        ]
        options.sort()
        return options[0][2]

    def amortization_queries(self) -> float:
        """Queries per step needed before *any* index beats the plain scan.

        Below this count the paper's warning applies: "rebuilding an index
        may no longer pay off as the cost cannot be amortized over enough
        queries".
        """
        saving_per_query = self.costs.query_scan - self.costs.query_indexed
        if saving_per_query <= 0.0:
            return float("inf")
        return self.costs.rebuild_fixed / saving_per_query


def calibrate(
    index_factory: Callable[[], SpatialIndex],
    items: Sequence[Item],
    moved_items: Sequence[tuple[int, AABB, AABB]],
    query_boxes: Sequence[AABB],
    scan_factory: Callable[[], SpatialIndex],
) -> MaintenanceCosts:
    """Measure real per-step costs for an index on a workload.

    ``moved_items`` is a list of ``(eid, old_box, new_box)`` describing one
    simulation step's motion; a subset is applied as updates to price
    ``update_per_element``.  This is the reproduction of the paper's §4.1
    experiment harness.
    """
    if not items or not moved_items or not query_boxes:
        raise ValueError("calibration needs items, moves and queries")

    index = index_factory()
    start = time.perf_counter()
    index.bulk_load(items)
    rebuild_fixed = time.perf_counter() - start

    sample = moved_items[: max(1, len(moved_items) // 10)]
    start = time.perf_counter()
    for eid, old_box, new_box in sample:
        index.update(eid, old_box, new_box)
    update_per_element = (time.perf_counter() - start) / len(sample)
    # Restore original boxes so query timing sees a consistent dataset.
    for eid, old_box, new_box in sample:
        index.update(eid, new_box, old_box)

    start = time.perf_counter()
    for box in query_boxes:
        index.range_query(box)
    query_indexed = (time.perf_counter() - start) / len(query_boxes)

    scan = scan_factory()
    scan.bulk_load(items)
    start = time.perf_counter()
    for box in query_boxes:
        scan.range_query(box)
    query_scan = (time.perf_counter() - start) / len(query_boxes)

    return MaintenanceCosts(
        update_per_element=update_per_element,
        rebuild_fixed=rebuild_fixed,
        query_indexed=query_indexed,
        query_scan=query_scan,
        n_elements=len(items),
    )
