"""The analytical grid-resolution model the paper calls for.

"Choosing the proper resolution, however, is difficult: a too coarse grained
grid means that too many elements need to be tested for intersection. ...
Clearly, the optimal resolution depends on the distribution of location and
size of the spatial elements and an analytical model needs to be developed to
determine it for a given dataset."  (§3.3)

The model prices a range query of side ``q`` on a grid of cell side ``c``
over ``n`` elements of average extent ``e`` uniformly spread through a
universe of side ``u`` (per axis):

* probed cells       P(c) = Π_axis (q/c + 2)            — the cell window;
* candidate tests    T(c) = n · Π_axis min(1, (q + e + 2c) / u)
                                                        — elements whose cells
                                                          fall in the window;
* replication        R(c) = Π_axis (e/c + 1)            — entries per element,
                                                          charged to updates
                                                          and memory.

``cost(c) = P·cell_cost + T·test_cost + R·n·replica_weight`` is unimodal in
``c`` for these terms, so a golden-section search over ``log c`` finds the
optimum reliably.  The defaults take per-operation costs from the calibrated
memory cost model so the optimum is consistent with the rest of the harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.aabb import AABB


def default_cell_size(n: int, universe: AABB, target_per_cell: float = 2.0) -> float:
    """Heuristic cell size giving ~``target_per_cell`` elements per cell."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    volume = universe.volume()
    if volume <= 0.0:
        # Degenerate universe (e.g. co-planar data): fall back to the largest
        # extent over a cube-root cell count.
        side = max(universe.extents())
        return max(side / max(round(n ** (1.0 / universe.dims)), 1), 1e-9)
    cells = max(n / target_per_cell, 1.0)
    return (volume / cells) ** (1.0 / universe.dims)


@dataclass
class GridCostModel:
    """Analytical per-query cost of a uniform grid, in abstract op units.

    Parameters
    ----------
    n:
        Number of elements.
    universe_extent:
        Universe side length per axis (cube assumed; pass the max extent for
        irregular universes).
    avg_element_extent:
        Mean element bounding-box side.
    avg_query_extent:
        Mean range-query side (the paper notes the optimum depends on the
        query size "which cannot be known a priori" — the multi-resolution
        grid handles mixtures; this model prices one size).
    dims:
        Dimensionality.
    cell_probe_cost / elem_test_cost / replica_weight:
        Relative op costs; defaults follow the calibrated memory model
        (a probe ≈ a hash lookup, a test ≈ an MBR comparison, a replica
        charges amortized update/memory overhead).
    """

    n: int
    universe_extent: float
    avg_element_extent: float
    avg_query_extent: float
    dims: int = 3
    cell_probe_cost: float = 4.0
    elem_test_cost: float = 12.0
    replica_weight: float = 2.0

    def probed_cells(self, cell_size: float) -> float:
        return (self.avg_query_extent / cell_size + 2.0) ** self.dims

    def candidate_tests(self, cell_size: float) -> float:
        reach = self.avg_query_extent + self.avg_element_extent + 2.0 * cell_size
        per_axis = min(1.0, reach / self.universe_extent)
        return self.n * per_axis**self.dims

    def replication(self, cell_size: float) -> float:
        return (self.avg_element_extent / cell_size + 1.0) ** self.dims

    def query_cost(self, cell_size: float) -> float:
        """Abstract cost of one range query at the given resolution."""
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        probes = self.probed_cells(cell_size) * self.cell_probe_cost
        tests = self.candidate_tests(cell_size) * self.elem_test_cost
        replicas = self.replication(cell_size) * self.replica_weight
        return probes + tests + replicas

    def optimal_cell_size(self) -> float:
        """Golden-section search for the cost-minimizing cell side."""
        lo = max(self.avg_element_extent / 64.0, self.universe_extent * 1e-6, 1e-12)
        hi = self.universe_extent
        return _golden_section(lambda c: self.query_cost(c), lo, hi)


def optimal_cell_size(
    n: int,
    universe: AABB,
    avg_element_extent: float,
    avg_query_extent: float,
) -> float:
    """Convenience wrapper building the model from a universe box."""
    model = GridCostModel(
        n=n,
        universe_extent=max(universe.extents()),
        avg_element_extent=avg_element_extent,
        avg_query_extent=avg_query_extent,
        dims=universe.dims,
    )
    return model.optimal_cell_size()


def _golden_section(fn, lo: float, hi: float, iterations: int = 80) -> float:
    """Minimize a unimodal ``fn`` over ``[lo, hi]`` in log space."""
    log_lo = math.log(lo)
    log_hi = math.log(hi)
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = log_lo, log_hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc = fn(math.exp(c))
    fd = fn(math.exp(d))
    for _ in range(iterations):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = fn(math.exp(c))
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = fn(math.exp(d))
        if b - a < 1e-9:
            break
    return math.exp((a + b) / 2.0)
