"""An LRU buffer pool in front of the simulated page store.

Mirrors a DBMS buffer manager: reads hit the pool first; misses fetch from
the :class:`~repro.storage.pagestore.PageStore` (charging a page read) and may
evict the least-recently-used frame, writing it back when dirty.  The paper's
experiments run "with an initially cold cache and the cache is cleaned between
any two queries" — :meth:`clear` implements exactly that protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.storage.pagestore import PageStore


class BufferPool:
    """Fixed-capacity LRU cache of disk pages.

    Parameters
    ----------
    store:
        Backing page store.
    capacity:
        Number of page frames held in memory.  Zero is allowed and makes
        every access go to the store (useful to model a fully cold run).
    """

    def __init__(self, store: PageStore, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.store = store
        self.capacity = capacity
        self._frames: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Frames currently resident — never exceeds ``capacity``."""
        return len(self._frames)

    def read(self, page_id: int) -> Any:
        """Fetch a page through the pool, counting hit or miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        payload = self.store.read(page_id)
        self._admit(page_id, payload)
        return payload

    def read_view(self, page_id: int) -> Any:
        """Fetch a page as a zero-copy view through the pool.

        Requires a store with a view read path
        (:class:`~repro.storage.pagestore.MappedPageStore`).  The frames
        then cache *views*, not copies: residency accounting (hits, misses,
        the ``capacity`` bound on resident frames) is identical to
        :meth:`read`, but a miss costs one mapped view instead of a byte
        copy.  Callers must not mix :meth:`write` (write-back of a read-only
        view is meaningless) — mapped stores are written write-through.
        """
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        payload = self.store.read_view(page_id)
        self._admit(page_id, payload)
        return payload

    def write(self, page_id: int, payload: Any) -> None:
        """Update a page in the pool, deferring the disk write (write-back)."""
        if page_id not in self._frames:
            self._admit(page_id, payload)
        else:
            self._frames[page_id] = payload
            self._frames.move_to_end(page_id)
        self._dirty.add(page_id)

    def flush(self) -> None:
        """Write every dirty frame back to the store."""
        for page_id in sorted(self._dirty):
            self.store.write(page_id, self._frames[page_id])
        self._dirty.clear()

    def clear(self) -> None:
        """Flush and drop every frame — the paper's 'clean cache' protocol."""
        self.flush()
        self._frames.clear()

    def drop(self, page_id: int) -> None:
        """Invalidate one frame *without* writeback — for pages the caller
        freed in the store (a stale frame must not answer a reused slot)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def drop_all(self) -> None:
        """Invalidate every frame without writeback (store teardown)."""
        self._frames.clear()
        self._dirty.clear()

    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        if accesses == 0:
            return 0.0
        return self.hits / accesses

    def _admit(self, page_id: int, payload: Any) -> None:
        if self.capacity == 0:
            return
        while len(self._frames) >= self.capacity:
            victim, victim_payload = self._frames.popitem(last=False)
            if victim in self._dirty:
                self.store.write(victim, victim_payload)
                self._dirty.discard(victim)
        self._frames[page_id] = payload
