"""Simulated storage substrate: disk pages, buffer pool, CPU cache.

The paper's disk experiment (Figure 2) needs a disk; we do not have the
authors' SAS array, so this package simulates one at the level that matters
for the argument: *page transfer accounting*.  A
:class:`~repro.storage.pagestore.PageStore` holds node payloads keyed by page
id and charges every read/write to the shared counters; an LRU
:class:`~repro.storage.buffer_pool.BufferPool` sits in front of it exactly
like a DBMS buffer manager, so cold-cache and warm-cache experiments are both
expressible.  :class:`~repro.storage.pagestore.MappedPageStore` adds the
zero-copy read path: the same file served as read-only NumPy views over an
``mmap``, which the spill layer and the mapped ``DiskRTree`` ride.  For the
in-memory side, a set-associative
:class:`~repro.storage.cache.CacheSimulator` plus an address-assigning
:class:`~repro.storage.cache.Arena` let benchmarks measure cache-line misses
of different node layouts (the CR-tree argument).
"""

from repro.storage.pagestore import FilePageStore, MappedPageStore, PageStore
from repro.storage.buffer_pool import BufferPool
from repro.storage.cache import Arena, CacheSimulator
from repro.storage.layout import assign_addresses, replay_queries

__all__ = [
    "PageStore",
    "FilePageStore",
    "MappedPageStore",
    "BufferPool",
    "Arena",
    "CacheSimulator",
    "assign_addresses",
    "replay_queries",
]
