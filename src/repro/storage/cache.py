"""A set-associative CPU cache simulator and a synthetic address arena.

The in-memory half of the paper's argument depends on cache behaviour: node
sizes should be "a multiple of the cache block size", and data-oriented trees
chase pointers across unrelated cache lines.  Python objects have no useful
addresses, so the :class:`Arena` hands out synthetic byte addresses to index
structures at build time; the :class:`CacheSimulator` then replays accesses
and reports hit/miss counts, letting benchmarks compare node layouts
(CR-tree-style packed nodes vs pointer-heavy nodes) quantitatively.
"""

from __future__ import annotations


class Arena:
    """Sequential synthetic address allocator.

    Allocations are laid out back to back, mimicking a bump allocator.  An
    optional alignment models cache-line-aligned node placement.
    """

    def __init__(self, alignment: int = 1) -> None:
        if alignment < 1:
            raise ValueError(f"alignment must be >= 1, got {alignment}")
        self.alignment = alignment
        self._cursor = 0

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes, returning the start address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        remainder = self._cursor % self.alignment
        if remainder:
            self._cursor += self.alignment - remainder
        address = self._cursor
        self._cursor += size
        return address

    @property
    def used_bytes(self) -> int:
        return self._cursor


class CacheSimulator:
    """An LRU set-associative cache over synthetic addresses.

    Parameters
    ----------
    capacity_bytes:
        Total cache size.
    line_bytes:
        Cache line size (64 on the paper's hardware).
    associativity:
        Ways per set; ``capacity_bytes`` must divide evenly into sets.
    """

    def __init__(
        self,
        capacity_bytes: int = 2 * 1024 * 1024,
        line_bytes: int = 64,
        associativity: int = 8,
    ) -> None:
        if line_bytes <= 0 or capacity_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry parameters must be positive")
        lines = capacity_bytes // line_bytes
        if lines % associativity != 0:
            raise ValueError("capacity/line/associativity do not form whole sets")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = lines // associativity
        # Each set is an LRU-ordered list of resident line tags (most recent last).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int, size: int = 1) -> int:
        """Touch ``size`` bytes starting at ``address``; returns misses incurred."""
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        first_line = address // self.line_bytes
        last_line = (address + size - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            if not self._touch_line(line):
                misses += 1
        return misses

    def _touch_line(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            self.hits += 1
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(0)
        ways.append(line)
        return False

    def clear(self) -> None:
        """Invalidate the whole cache (cold-cache protocol)."""
        for ways in self._sets:
            ways.clear()

    def miss_rate(self) -> float:
        accesses = self.hits + self.misses
        if accesses == 0:
            return 0.0
        return self.misses / accesses
