"""Node memory layouts replayed through the cache simulator.

Section 3.3's first direction — "Indexes used in memory must be optimized for
memory hierarchies by making the size of their nodes a multiple of the cache
block size" — is a statement about *layout*, which Python objects hide.  This
module makes it measurable: assign every tree node a synthetic address under
a chosen layout policy, then replay real query traversals through the
set-associative :class:`~repro.storage.cache.CacheSimulator` and count
misses.

Layout policies:

* ``"scattered"`` — nodes at pseudo-random arena offsets with allocator slop,
  modelling a pointer-chasing dynamically-built tree;
* ``"bfs"`` — breadth-first contiguous placement, cache-line aligned: parents
  and sibling runs share lines, the cache-conscious layout CSB⁺/CR-style
  trees approximate.

Entry width is a parameter so the same replay quantifies compression: full
float boxes (56 B/entry in 3-d) vs CR-tree quantized entries (20 B/entry).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.geometry.aabb import AABB
from repro.indexes.rtree import Node, RTree
from repro.storage.cache import Arena, CacheSimulator

_NODE_HEADER_BYTES = 16


def node_size_bytes(node: Node, dims: int, entry_bytes: int) -> int:
    return _NODE_HEADER_BYTES + len(node.entries) * entry_bytes


def assign_addresses(
    tree: RTree,
    layout: str = "bfs",
    entry_bytes: int = 56,
    alignment: int = 64,
    seed: int = 0,
) -> dict[int, tuple[int, int]]:
    """Address map ``id(node) -> (address, size)`` under a layout policy."""
    if layout not in ("bfs", "scattered"):
        raise ValueError(f"unknown layout: {layout!r}")
    dims = 3 if tree.root_mbr() is None else tree.root_mbr().dims
    nodes: list[Node] = []
    queue = [tree._root]
    while queue:
        node = queue.pop(0)
        nodes.append(node)
        if not node.is_leaf:
            queue.extend(child for _, child in node.entries)  # type: ignore[misc]

    order = list(nodes)
    if layout == "scattered":
        rng = random.Random(seed)
        rng.shuffle(order)

    arena = Arena(alignment=alignment if layout == "bfs" else 1)
    addresses: dict[int, tuple[int, int]] = {}
    for node in order:
        size = node_size_bytes(node, dims, entry_bytes)
        if layout == "scattered":
            # Allocator slop: dynamic builds interleave unrelated objects.
            arena.allocate(max(1, size // 2))
        addresses[id(node)] = (arena.allocate(size), size)
    return addresses


def replay_queries(
    tree: RTree,
    queries: Sequence[AABB],
    addresses: dict[int, tuple[int, int]],
    cache: CacheSimulator,
) -> int:
    """Run the queries, touching each visited node's bytes in the cache.

    Returns total cache misses.  The traversal is the index's real one, so
    the measured locality is that of the actual query workload.
    """
    misses = 0
    for query in queries:
        stack = [tree._root]
        while stack:
            node = stack.pop()
            address, size = addresses[id(node)]
            misses += cache.access(address, size)
            if node.is_leaf:
                continue
            for entry_box, child in node.entries:
                if entry_box.intersects(query):
                    stack.append(child)  # type: ignore[arg-type]
    return misses
