"""A simulated disk of fixed-size pages with transfer accounting.

Payloads are kept as live Python objects (serialization would only slow the
simulation down without changing the accounting); what makes this a "disk" is
that every read and write is charged to a :class:`Counters` object, which the
:class:`~repro.instrumentation.costmodel.DiskCostModel` then prices.

:class:`FilePageStore` is the other half: the same page protocol and the same
accounting, but payloads are byte blobs persisted in one real file, so evicted
data genuinely leaves main memory.  It is the substrate the out-of-core
subsystem (:mod:`repro.exec.spill`) writes tile and partition arrays through.
"""

from __future__ import annotations

import os
from typing import Any

from repro.instrumentation.counters import Counters


class PageStore:
    """Fixed-page-size object store with read/write accounting.

    Parameters
    ----------
    page_size:
        Bytes per page; used by cost models and to validate payload size
        estimates supplied by callers.
    counters:
        Shared counter object; every :meth:`read` bumps ``pages_read`` and
        every :meth:`write` bumps ``pages_written``.
    """

    def __init__(self, page_size: int = 4096, counters: Counters | None = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.counters = counters if counters is not None else Counters()
        self._pages: dict[int, Any] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self, payload: Any = None) -> int:
        """Reserve a new page id, optionally writing an initial payload."""
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = payload
        if payload is not None:
            self.counters.pages_written += 1
        return page_id

    def read(self, page_id: int) -> Any:
        """Fetch a page's payload, charging one page read."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_read += 1
        return self._pages[page_id]

    def write(self, page_id: int, payload: Any) -> None:
        """Replace a page's payload, charging one page write."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_written += 1
        self._pages[page_id] = payload

    def free(self, page_id: int) -> None:
        """Release a page (no transfer charge; deallocation is metadata)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        del self._pages[page_id]

    def peek(self, page_id: int) -> Any:
        """Read a payload *without* charging a transfer (test/debug helper)."""
        return self._pages[page_id]

    def page_ids(self) -> list[int]:
        return list(self._pages)


class FilePageStore(PageStore):
    """Fixed-size pages persisted in one real file on disk.

    The page protocol (allocate / read / write / free) and the transfer
    accounting are identical to :class:`PageStore`; the difference is that
    payloads are ``bytes`` blobs of at most ``page_size`` written at
    ``page_id * page_size`` in a backing file, so a freed in-memory reference
    really releases the memory.  Freed slots are reused before the file
    grows.  The :class:`~repro.storage.buffer_pool.BufferPool` composes with
    it unchanged — that pairing is what :class:`repro.exec.spill.SpillManager`
    builds on.
    """

    def __init__(
        self, path: str, page_size: int = 1 << 20, counters: Counters | None = None
    ) -> None:
        super().__init__(page_size=page_size, counters=counters)
        self.path = path
        self._file = open(path, "w+b")
        self._lengths: dict[int, int] = {}
        self._free_slots: list[int] = []
        self._slots = 0
        self.closed = False

    def __len__(self) -> int:
        return len(self._lengths)

    def allocate(self, payload: bytes | None = None) -> int:
        """Reserve a page slot, optionally writing an initial payload."""
        page_id = self._free_slots.pop() if self._free_slots else self._slots
        if page_id == self._slots:
            self._slots += 1
        self._lengths[page_id] = 0
        if payload is not None:
            self._write_at(page_id, payload)
            self.counters.pages_written += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_read += 1
        return self._read_at(page_id)

    def write(self, page_id: int, payload: bytes) -> None:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        self._write_at(page_id, payload)
        self.counters.pages_written += 1

    def free(self, page_id: int) -> None:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        del self._lengths[page_id]
        self._free_slots.append(page_id)

    def peek(self, page_id: int) -> bytes:
        return self._read_at(page_id)

    def page_ids(self) -> list[int]:
        return list(self._lengths)

    @property
    def file_bytes(self) -> int:
        """Current size of the backing file (high-water, not live bytes)."""
        return self._slots * self.page_size

    def close(self, *, unlink: bool = True) -> None:
        """Close (and by default remove) the backing file.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._file.close()
        if unlink and os.path.exists(self.path):
            os.remove(self.path)

    # -- internals ------------------------------------------------------------

    def _write_at(self, page_id: int, payload: bytes) -> None:
        if len(payload) > self.page_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page size {self.page_size}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(payload)
        self._lengths[page_id] = len(payload)

    def _read_at(self, page_id: int) -> bytes:
        length = self._lengths[page_id]
        if length == 0:
            return b""
        self._file.seek(page_id * self.page_size)
        return self._file.read(length)
