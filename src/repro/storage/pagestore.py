"""A simulated disk of fixed-size pages with transfer accounting.

Payloads are kept as live Python objects (serialization would only slow the
simulation down without changing the accounting); what makes this a "disk" is
that every read and write is charged to a :class:`Counters` object, which the
:class:`~repro.instrumentation.costmodel.DiskCostModel` then prices.

:class:`FilePageStore` is the other half: the same page protocol and the same
accounting, but payloads are byte blobs persisted in one real file, so evicted
data genuinely leaves main memory.  It is the substrate the out-of-core
subsystem (:mod:`repro.exec.spill`) writes tile and partition arrays through.

:class:`MappedPageStore` completes the read side: the same file, but reads
can come back as **zero-copy NumPy views** over an ``mmap`` of the backing
file.  Writers still go through the slot protocol (plain file writes — the
kernel's unified page cache keeps the mapping coherent), so one store serves
any number of readers, in this process or another, without a copy per read.
"""

from __future__ import annotations

import heapq
import mmap
import os
from typing import Any

import numpy as np

from repro.instrumentation.counters import Counters
from repro.obs import global_registry
from repro.obs import span as _span


class PageStore:
    """Fixed-page-size object store with read/write accounting.

    Parameters
    ----------
    page_size:
        Bytes per page; used by cost models and to validate payload size
        estimates supplied by callers.
    counters:
        Shared counter object; every :meth:`read` bumps ``pages_read`` and
        every :meth:`write` bumps ``pages_written``.
    """

    def __init__(self, page_size: int = 4096, counters: Counters | None = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.counters = counters if counters is not None else Counters()
        self._pages: dict[int, Any] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self, payload: Any = None) -> int:
        """Reserve a new page id, optionally writing an initial payload."""
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = payload
        if payload is not None:
            self.counters.pages_written += 1
        return page_id

    def read(self, page_id: int) -> Any:
        """Fetch a page's payload, charging one page read."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_read += 1
        return self._pages[page_id]

    def write(self, page_id: int, payload: Any) -> None:
        """Replace a page's payload, charging one page write."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_written += 1
        self._pages[page_id] = payload

    def free(self, page_id: int) -> None:
        """Release a page (no transfer charge; deallocation is metadata)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        del self._pages[page_id]

    def peek(self, page_id: int) -> Any:
        """Read a payload *without* charging a transfer (test/debug helper)."""
        return self._pages[page_id]

    def page_ids(self) -> list[int]:
        return list(self._pages)


class FilePageStore(PageStore):
    """Fixed-size pages persisted in one real file on disk.

    The page protocol (allocate / read / write / free) and the transfer
    accounting are identical to :class:`PageStore`; the difference is that
    payloads are ``bytes`` blobs of at most ``page_size`` written at
    ``page_id * page_size`` in a backing file, so a freed in-memory reference
    really releases the memory.  Freed slots are reused before the file
    grows.  The :class:`~repro.storage.buffer_pool.BufferPool` composes with
    it unchanged — that pairing is what :class:`repro.exec.spill.SpillManager`
    builds on.
    """

    def __init__(
        self, path: str, page_size: int = 1 << 20, counters: Counters | None = None
    ) -> None:
        super().__init__(page_size=page_size, counters=counters)
        self.path = path
        self._file = open(path, "w+b")
        self._lengths: dict[int, int] = {}
        self._free_slots: list[int] = []
        self._slots = 0
        self.closed = False

    def __len__(self) -> int:
        return len(self._lengths)

    def allocate(self, payload: bytes | None = None) -> int:
        """Reserve a page slot, optionally writing an initial payload.

        Freed slots are reused **lowest slot first** (a heap, not a LIFO
        stack): multi-page allocations that follow multi-page frees land on
        consecutive slots again, which keeps spilled arrays contiguous in
        the file — the property the zero-copy mapped read path needs.
        """
        page_id = heapq.heappop(self._free_slots) if self._free_slots else self._slots
        if page_id == self._slots:
            self._slots += 1
        self._lengths[page_id] = 0
        if payload is not None:
            self._write_at(page_id, payload)
            self.counters.pages_written += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_read += 1
        return self._read_at(page_id)

    def write(self, page_id: int, payload: bytes) -> None:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        self._write_at(page_id, payload)
        self.counters.pages_written += 1

    def free(self, page_id: int) -> None:
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        del self._lengths[page_id]
        heapq.heappush(self._free_slots, page_id)

    def peek(self, page_id: int) -> bytes:
        return self._read_at(page_id)

    def page_ids(self) -> list[int]:
        return list(self._lengths)

    @property
    def file_bytes(self) -> int:
        """Current size of the backing file (high-water, not live bytes)."""
        return self._slots * self.page_size

    def fragmentation(self) -> float:
        """Share of the file's slot high-water currently on the free list.

        0.0 is a fully packed file; values near 1.0 mean the file is mostly
        holes — allocations keep landing in freed interior slots and spilled
        multi-page arrays are likely to be split across non-consecutive
        slots (forcing the copying read path in
        :class:`~repro.exec.spill.SpillManager`).
        """
        if self._slots == 0:
            return 0.0
        return len(self._free_slots) / self._slots

    def close(self, *, unlink: bool = True) -> None:
        """Close (and by default remove) the backing file.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._file.close()
        if unlink and os.path.exists(self.path):
            os.remove(self.path)

    # -- internals ------------------------------------------------------------

    def _write_at(self, page_id: int, payload: bytes) -> None:
        if len(payload) > self.page_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page size {self.page_size}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(payload)
        self._lengths[page_id] = len(payload)

    def _read_at(self, page_id: int) -> bytes:
        length = self._lengths[page_id]
        if length == 0:
            return b""
        self._file.seek(page_id * self.page_size)
        return self._file.read(length)


class MappedPageStore(FilePageStore):
    """A :class:`FilePageStore` whose reads can be zero-copy mmap views.

    The write side is unchanged — the slot protocol appends/overwrites byte
    blobs through the file descriptor — but the read side adds
    :meth:`read_view` / :meth:`run_view`, which return NumPy arrays backed
    directly by an ``mmap`` of the file: no page buffer, no ``bytes`` copy,
    no per-read allocation.  File writes and the read-only mapping stay
    coherent through the kernel's unified page cache, so a view taken before
    a later write to a *different* page never moves or staled (views of
    pages the caller then overwrites are the caller's hazard, exactly like
    any shared-memory protocol).

    Growth is handled by remapping: when the file has grown past the mapped
    length, a larger mapping is created and the old one is *retired, not
    closed* — NumPy views exported from it keep their buffer alive, and the
    underlying file regions never move.  ``close()`` releases whatever can
    be released and leaves the rest to garbage collection.

    Views served before any page exists, or of freed pages, raise exactly
    like :meth:`read`.  Every view charges ``pages_read`` (transfer
    accounting is uniform with the copying stores) plus the zero-copy
    telemetry: ``zero_copy_reads`` and ``mapped_bytes``.
    """

    def __init__(
        self, path: str, page_size: int = 1 << 20, counters: Counters | None = None
    ) -> None:
        super().__init__(path, page_size=page_size, counters=counters)
        self._map: mmap.mmap | None = None
        self._mapped_slots = 0
        self._retired_maps: list[mmap.mmap] = []
        self._unflushed = False

    # -- zero-copy reads ------------------------------------------------------

    def read_view(self, page_id: int) -> np.ndarray:
        """One page's payload as a read-only zero-copy ``uint8`` view."""
        if page_id not in self._lengths:
            raise KeyError(f"page {page_id} was never allocated")
        length = self._lengths[page_id]
        self.counters.pages_read += 1
        self.counters.zero_copy_reads += 1
        self.counters.mapped_bytes += length
        if length == 0:
            return np.empty(0, dtype=np.uint8)
        mapping = self._ensure_mapped(page_id + 1)
        return np.frombuffer(
            mapping, dtype=np.uint8, count=length, offset=page_id * self.page_size
        )

    def run_view(self, first_page: int, nbytes: int, *, offset: int = 0) -> np.ndarray:
        """A zero-copy view of ``nbytes`` starting ``offset`` bytes into the
        page run that begins at ``first_page``.

        The caller guarantees the run occupies *consecutive* slots (the
        invariant :class:`~repro.exec.spill.SpillManager` tracks per
        handle); page-transfer accounting charges every covering page.
        """
        if nbytes == 0:
            return np.empty(0, dtype=np.uint8)
        start = first_page * self.page_size + offset
        stop = start + nbytes
        slots_needed = -(-stop // self.page_size)
        if slots_needed > self._slots:
            raise ValueError(
                f"run view [{start}, {stop}) reaches past the allocated "
                f"{self._slots} slots"
            )
        self.counters.pages_read += (stop - 1) // self.page_size - start // self.page_size + 1
        self.counters.zero_copy_reads += 1
        self.counters.mapped_bytes += nbytes
        mapping = self._ensure_mapped(slots_needed)
        return np.frombuffer(mapping, dtype=np.uint8, count=nbytes, offset=start)

    def sync(self) -> None:
        """Make every buffered write visible to mappings (this process's and
        any other process that maps the file)."""
        if self._unflushed and not self.closed:
            self._file.flush()
            self._unflushed = False

    # -- lifecycle ------------------------------------------------------------

    def close(self, *, unlink: bool = True) -> None:
        if self.closed:
            return
        for mapping in (*self._retired_maps, *([self._map] if self._map else [])):
            try:
                mapping.close()
            except BufferError:  # a live view still exports this buffer
                pass  # the GC closes it once the last view dies
        self._retired_maps.clear()
        self._map = None
        self._mapped_slots = 0
        super().close(unlink=unlink)

    # -- internals ------------------------------------------------------------

    def _write_at(self, page_id: int, payload: bytes) -> None:
        super()._write_at(page_id, payload)
        self._unflushed = True

    def _ensure_mapped(self, slots_needed: int) -> mmap.mmap:
        self.sync()
        if self._map is not None and self._mapped_slots >= slots_needed:
            return self._map
        with _span("storage.remap", slots=self._slots):
            size = self._slots * self.page_size  # map the whole high-water once
            # A partial final page leaves the file short of the slot boundary;
            # mmap cannot extend past EOF, so round the file up first.
            if os.fstat(self._file.fileno()).st_size < size:
                os.ftruncate(self._file.fileno(), size)
            mapping = mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ)
            if self._map is not None:
                self._retired_maps.append(self._map)  # live views may pin it
            self._map = mapping
            self._mapped_slots = self._slots
        registry = global_registry()
        registry.counter("storage.remaps").inc()
        registry.gauge("storage.mapped_bytes").track_max(size)
        return mapping
