"""A simulated disk of fixed-size pages with transfer accounting.

Payloads are kept as live Python objects (serialization would only slow the
simulation down without changing the accounting); what makes this a "disk" is
that every read and write is charged to a :class:`Counters` object, which the
:class:`~repro.instrumentation.costmodel.DiskCostModel` then prices.
"""

from __future__ import annotations

from typing import Any

from repro.instrumentation.counters import Counters


class PageStore:
    """Fixed-page-size object store with read/write accounting.

    Parameters
    ----------
    page_size:
        Bytes per page; used by cost models and to validate payload size
        estimates supplied by callers.
    counters:
        Shared counter object; every :meth:`read` bumps ``pages_read`` and
        every :meth:`write` bumps ``pages_written``.
    """

    def __init__(self, page_size: int = 4096, counters: Counters | None = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.counters = counters if counters is not None else Counters()
        self._pages: dict[int, Any] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self, payload: Any = None) -> int:
        """Reserve a new page id, optionally writing an initial payload."""
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = payload
        if payload is not None:
            self.counters.pages_written += 1
        return page_id

    def read(self, page_id: int) -> Any:
        """Fetch a page's payload, charging one page read."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_read += 1
        return self._pages[page_id]

    def write(self, page_id: int, payload: Any) -> None:
        """Replace a page's payload, charging one page write."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self.counters.pages_written += 1
        self._pages[page_id] = payload

    def free(self, page_id: int) -> None:
        """Release a page (no transfer charge; deallocation is metadata)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        del self._pages[page_id]

    def peek(self, page_id: int) -> Any:
        """Read a payload *without* charging a transfer (test/debug helper)."""
        return self._pages[page_id]

    def page_ids(self) -> list[int]:
        return list(self._pages)
