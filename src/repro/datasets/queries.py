"""Range-query workload generators with paper-style selectivities.

The Figure 2/3 experiment executes "200 queries with a selectivity of
5×10⁻⁴ % at random locations".  Selectivity here is the fraction of the
universe volume a (cubic) query covers; the generator converts a requested
selectivity into a query side length for a given universe.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB


def random_range_queries(
    count: int,
    universe: AABB,
    extent: float,
    seed: int | np.random.Generator = 0,
) -> list[AABB]:
    """``count`` cubic queries of side ``extent`` at uniform random centres."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if extent < 0:
        raise ValueError(f"extent must be >= 0, got {extent}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    centers = rng.uniform(lo, hi, size=(count, universe.dims))
    half = extent / 2.0
    queries = []
    for center in centers:
        q_lo = np.maximum(center - half, lo)
        q_hi = np.minimum(center + half, hi)
        queries.append(AABB(q_lo, q_hi))
    return queries


def selectivity_to_extent(selectivity: float, universe: AABB) -> float:
    """Query side length so that volume(query)/volume(universe) = selectivity.

    ``selectivity`` is a fraction (the paper's "5×10⁻⁴ %" is 5e-6).
    """
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    volume = universe.volume()
    if volume <= 0.0:
        raise ValueError("universe has zero volume")
    return (selectivity * volume) ** (1.0 / universe.dims)


def range_queries_for_selectivity(
    count: int,
    universe: AABB,
    selectivity: float,
    seed: int | np.random.Generator = 0,
) -> list[AABB]:
    """Cubic queries sized for a volume ``selectivity`` (paper: 5e-6)."""
    extent = selectivity_to_extent(selectivity, universe)
    return random_range_queries(count, universe, extent, seed=seed)
