"""Generic point and box workload generators.

Everything is driven by an explicit seed (``numpy.random.default_rng``), so
benchmark runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.indexes.base import Item


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_points(n: int, universe: AABB, seed: int | np.random.Generator = 0) -> list[Item]:
    """``n`` degenerate (point) boxes uniformly distributed in ``universe``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = _rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    coords = rng.uniform(lo, hi, size=(n, universe.dims))
    return [(i, AABB(row, row)) for i, row in enumerate(coords)]


def uniform_boxes(
    n: int,
    universe: AABB,
    min_extent: float = 0.05,
    max_extent: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> list[Item]:
    """``n`` boxes with uniform centres and uniform per-axis extents.

    Extents are clamped so boxes stay inside ``universe``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0 <= min_extent <= max_extent:
        raise ValueError(f"need 0 <= min_extent <= max_extent, got {min_extent}, {max_extent}")
    rng = _rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    centers = rng.uniform(lo, hi, size=(n, universe.dims))
    extents = rng.uniform(min_extent, max_extent, size=(n, universe.dims))
    box_lo = np.clip(centers - extents / 2.0, lo, hi)
    box_hi = np.clip(centers + extents / 2.0, lo, hi)
    return [(i, AABB(box_lo[i], box_hi[i])) for i in range(n)]


def gaussian_cluster_points(
    n: int,
    universe: AABB,
    clusters: int = 8,
    spread_fraction: float = 0.05,
    seed: int | np.random.Generator = 0,
) -> list[Item]:
    """Clustered points: ``clusters`` Gaussian blobs inside ``universe``.

    Simulation datasets (neural tissue, galaxy formation) are strongly
    clustered; this is the standard non-uniform workload.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    rng = _rng(seed)
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    extent = hi - lo
    centers = rng.uniform(lo + 0.1 * extent, hi - 0.1 * extent, size=(clusters, universe.dims))
    assignment = rng.integers(0, clusters, size=n)
    sigma = extent * spread_fraction
    coords = centers[assignment] + rng.normal(0.0, 1.0, size=(n, universe.dims)) * sigma
    coords = np.clip(coords, lo, hi)
    return [(i, AABB(row, row)) for i, row in enumerate(coords)]


def clustered_boxes(
    n: int,
    universe: AABB,
    clusters: int = 8,
    min_extent: float = 0.05,
    max_extent: float = 1.0,
    spread_fraction: float = 0.05,
    elongation: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> list[Item]:
    """Clustered volumetric boxes, optionally elongated along a random axis.

    ``elongation > 1`` stretches each box along one axis — producing the
    narrow elements behind the paper's Figure 4 pathology (data-oriented
    partitions that "extend massively in one or several dimensions").
    """
    if elongation < 1.0:
        raise ValueError(f"elongation must be >= 1, got {elongation}")
    rng = _rng(seed)
    points = gaussian_cluster_points(
        n, universe, clusters=clusters, spread_fraction=spread_fraction, seed=rng
    )
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    items: list[Item] = []
    for eid, point_box in points:
        center = np.asarray(point_box.lo)
        extents = rng.uniform(min_extent, max_extent, size=universe.dims)
        if elongation > 1.0:
            axis = int(rng.integers(0, universe.dims))
            extents[axis] *= elongation
        box_lo = np.clip(center - extents / 2.0, lo, hi)
        box_hi = np.clip(center + extents / 2.0, lo, hi)
        items.append((eid, AABB(box_lo, box_hi)))
    return items
