"""Synthetic neuron morphologies — the paper's dataset, at laptop scale.

The EDBT'14 experiments index "a neuroscience dataset representing 500'000
neurons in space (each modeled with thousands of cylinders)" in a dense
cortical volume.  The Blue Brain data is proprietary, so this generator
produces morphologies with the same statistical shape:

* somata (cell bodies) clustered into cortical-column-like blobs;
* from each soma, a few dendritic/axonal trees grown by a branching random
  walk of short capsule segments whose radius tapers with depth;
* segments are elongated elements (length ≫ radius) — exactly the element
  shape that makes data-oriented partitions "narrow" in the paper's Figure 4.

The element count is the product ``neurons × segments_per_neuron``; the
paper's 200 M is reached with 500 k × ~400.  Benchmarks use 10⁴–10⁶ elements
and state their scale; the *distribution* is what matters for index shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.primitives import Capsule
from repro.indexes.base import Item


@dataclass
class NeuronDataset:
    """A generated tissue model.

    ``capsules`` maps element id → :class:`~repro.geometry.Capsule`;
    ``items`` is the ``(eid, AABB)`` list indexes consume; ``neuron_of``
    maps element id → neuron id (used by the synapse join to exclude
    same-neuron pairs).
    """

    universe: AABB
    capsules: dict[int, Capsule] = field(default_factory=dict)
    neuron_of: dict[int, int] = field(default_factory=dict)

    @property
    def items(self) -> list[Item]:
        return [(eid, capsule.bounds()) for eid, capsule in self.capsules.items()]

    def __len__(self) -> int:
        return len(self.capsules)

    def element_extent_stats(self) -> tuple[float, float]:
        """(mean, max) bounding-box extent across elements — feeds the
        analytical resolution model."""
        extents = [max(c.bounds().extents()) for c in self.capsules.values()]
        if not extents:
            return (0.0, 0.0)
        return (float(np.mean(extents)), float(np.max(extents)))


def generate_neurons(
    neurons: int,
    segments_per_neuron: int = 100,
    universe: AABB | None = None,
    clusters: int = 6,
    branch_probability: float = 0.08,
    segment_length: float = 0.8,
    soma_radius: float = 0.4,
    seed: int = 0,
) -> NeuronDataset:
    """Grow ``neurons`` branched morphologies of capsule segments.

    Parameters mirror biology loosely: a random walk leaves the soma, turns
    gradually (persistent direction), occasionally branches, and its radius
    tapers from ~0.1 µm to ~0.02 µm.  Units are µm in a default universe of
    side ``(neurons * segments_per_neuron)^(1/3)`` scaled to keep density
    near the paper's (200 M elements in a 285 µm-side volume ≈ 8.6 k
    elements per µm³ — we keep a comparable crowding factor).
    """
    if neurons < 1 or segments_per_neuron < 1:
        raise ValueError("neurons and segments_per_neuron must be >= 1")
    rng = np.random.default_rng(seed)
    total = neurons * segments_per_neuron
    if universe is None:
        # Keep density comparable across scales: side ∝ cube root of count.
        side = max((total / 8.0) ** (1.0 / 3.0), 4.0 * segment_length)
        universe = AABB((0.0, 0.0, 0.0), (side, side, side))
    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    extent = hi - lo

    cluster_centers = rng.uniform(lo + 0.15 * extent, hi - 0.15 * extent, size=(clusters, 3))
    dataset = NeuronDataset(universe=universe)
    eid = 0
    for neuron_id in range(neurons):
        center = cluster_centers[neuron_id % clusters]
        soma = center + rng.normal(0.0, 1.0, size=3) * extent * 0.08
        soma = np.clip(soma, lo, hi)
        # Active growth cones: (position, direction, depth).
        direction = _random_unit(rng)
        cones = [(soma.copy(), direction, 0)]
        grown = 0
        while grown < segments_per_neuron and cones:
            index = int(rng.integers(0, len(cones)))
            position, direction, depth = cones.pop(index)
            # Persistent random walk: small angular perturbation per step.
            direction = _perturb(direction, rng, sigma=0.35)
            step = direction * segment_length * float(rng.uniform(0.6, 1.4))
            end = np.clip(position + step, lo, hi)
            if np.linalg.norm(end - position) < 0.25 * segment_length:
                # Pinned against a wall: grow back inward instead.
                direction = -direction
                end = np.clip(position + direction * segment_length, lo, hi)
            radius = max(0.02, 0.1 * (0.97**depth))
            dataset.capsules[eid] = Capsule(position, end, radius)
            dataset.neuron_of[eid] = neuron_id
            eid += 1
            grown += 1
            cones.append((end, direction, depth + 1))
            if rng.random() < branch_probability:
                cones.append((end, _perturb(direction, rng, sigma=1.2), depth + 1))
    return dataset


def _random_unit(rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=3)
    return v / np.linalg.norm(v)


def _perturb(direction: np.ndarray, rng: np.random.Generator, sigma: float) -> np.ndarray:
    v = direction + rng.normal(0.0, sigma, size=3)
    norm = np.linalg.norm(v)
    if norm < 1e-12:
        return _random_unit(rng)
    return v / norm
