"""Synthetic dataset and workload generators.

The paper's experiments use a Blue Brain neuroscience dataset (500 k neurons
modeled as thousands of cylinders each, 200 M elements) and a neural
plasticity trace (everything moves 0.04 µm per step).  Neither is public, so
this package generates statistically matching substitutes at configurable
scale — see DESIGN.md §2 for the substitution argument.

* :mod:`~repro.datasets.points` — uniform / Gaussian-clustered points and
  boxes, the generic index workloads;
* :mod:`~repro.datasets.neuroscience` — branched neuron morphologies built
  from capsule segments, matching the paper's dataset shape;
* :mod:`~repro.datasets.trajectories` — per-step motion models (Brownian
  plasticity jitter, predictable linear motion, mixtures) driving the
  massive-update experiments;
* :mod:`~repro.datasets.meshgen` — structured tetrahedral meshes (convex and
  concave) for the DLS / OCTOPUS experiments;
* :mod:`~repro.datasets.queries` — range-query workload generators with
  paper-style selectivities.
"""

from repro.datasets.points import (
    clustered_boxes,
    gaussian_cluster_points,
    uniform_boxes,
    uniform_points,
)
from repro.datasets.neuroscience import NeuronDataset, generate_neurons
from repro.datasets.vascular import generate_arterial_tree
from repro.datasets.trajectories import (
    BrownianMotion,
    LinearMotion,
    PlasticityMotion,
    apply_moves,
)
from repro.datasets.queries import range_queries_for_selectivity, random_range_queries

__all__ = [
    "uniform_points",
    "uniform_boxes",
    "gaussian_cluster_points",
    "clustered_boxes",
    "NeuronDataset",
    "generate_neurons",
    "generate_arterial_tree",
    "BrownianMotion",
    "LinearMotion",
    "PlasticityMotion",
    "apply_moves",
    "range_queries_for_selectivity",
    "random_range_queries",
]
