"""Synthetic arterial trees — the paper's CFD motivating domain.

Section 1 cites "the human arterial tree [9] in computational fluid dynamics
research" among the fine-grained models being simulated.  This generator
grows a bifurcating vessel tree of capsule segments:

* each vessel runs several segments with gentle curvature, then bifurcates;
* daughter radii follow **Murray's law** (r₀³ = r₁³ + r₂³ with an asymmetry
  ratio), the standard physiological branching rule;
* recursion stops at a minimum radius, yielding the heavy-tailed element-size
  distribution (aorta ≫ arterioles) that stresses multi-resolution indexing —
  a natural workload for :class:`~repro.core.multires_grid.MultiResolutionGrid`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.neuroscience import NeuronDataset
from repro.geometry.aabb import AABB
from repro.geometry.primitives import Capsule


def generate_arterial_tree(
    root_radius: float = 2.0,
    min_radius: float = 0.1,
    segment_length_factor: float = 8.0,
    asymmetry: float = 0.8,
    universe: AABB | None = None,
    seed: int = 0,
) -> NeuronDataset:
    """Grow a bifurcating arterial tree of capsule segments.

    Returns a :class:`~repro.datasets.neuroscience.NeuronDataset` (the
    container is shape-agnostic): ``capsules`` hold the vessel segments and
    ``neuron_of`` maps each segment to its *branch generation*, so analyses
    can group by vessel calibre.

    Parameters
    ----------
    root_radius / min_radius:
        Radius of the trunk and the termination threshold; the ratio fixes
        tree depth (Murray's law shrinks radii by ~0.79 per symmetric split).
    segment_length_factor:
        Vessel segment length as a multiple of its radius (vessels are long
        relative to their calibre — the elongated-element regime).
    asymmetry:
        Daughter flow split q/(1−q)… expressed as the radius ratio of the
        minor daughter to the major one (1.0 = symmetric tree).
    """
    if not 0 < min_radius < root_radius:
        raise ValueError("need 0 < min_radius < root_radius")
    if not 0.0 < asymmetry <= 1.0:
        raise ValueError(f"asymmetry must be in (0, 1], got {asymmetry}")
    rng = np.random.default_rng(seed)
    if universe is None:
        # Total tree span scales with the trunk's geometric series of lengths.
        span = root_radius * segment_length_factor * 6.0
        universe = AABB((0.0, 0.0, 0.0), (span, span, span))

    lo = np.asarray(universe.lo)
    hi = np.asarray(universe.hi)
    dataset = NeuronDataset(universe=universe)
    eid = 0

    start = np.asarray(universe.center(), dtype=float)
    start[2] = lo[2] + root_radius  # trunk enters from the floor, like an aorta
    # Work queue: (position, direction, radius, generation).
    queue = [(start, np.array([0.0, 0.0, 1.0]), root_radius, 0)]
    while queue:
        position, direction, radius, generation = queue.pop()
        if radius < min_radius:
            continue
        # Run 2-4 gently curving segments before bifurcating.
        runs = int(rng.integers(2, 5))
        for _ in range(runs):
            direction = _bend(direction, rng, sigma=0.15)
            length = radius * segment_length_factor * float(rng.uniform(0.8, 1.2))
            end = np.clip(position + direction * length, lo + radius, hi - radius)
            if np.linalg.norm(end - position) < 0.5 * length:
                # Pinned against the universe wall: turn back inward.
                direction = _normalize(np.asarray(universe.center()) - position)
                end = np.clip(position + direction * length, lo + radius, hi - radius)
            dataset.capsules[eid] = Capsule(position, end, radius)
            dataset.neuron_of[eid] = generation
            eid += 1
            position = end
        # Murray's law bifurcation: r0^3 = r1^3 + r2^3, minor/major = asymmetry.
        major = radius / (1.0 + asymmetry**3) ** (1.0 / 3.0)
        minor = major * asymmetry
        split_axis = _perpendicular(direction, rng)
        angle = float(rng.uniform(0.4, 0.9))
        for daughter_radius, sign in ((major, 1.0), (minor, -1.0)):
            new_direction = _normalize(direction + sign * angle * split_axis)
            queue.append((position.copy(), new_direction, daughter_radius, generation + 1))
    return dataset


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v)
    if norm < 1e-12:
        return np.array([0.0, 0.0, 1.0])
    return v / norm


def _bend(direction: np.ndarray, rng: np.random.Generator, sigma: float) -> np.ndarray:
    return _normalize(direction + rng.normal(0.0, sigma, size=3))


def _perpendicular(direction: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    candidate = rng.normal(size=3)
    candidate -= candidate.dot(direction) * direction
    return _normalize(candidate)
