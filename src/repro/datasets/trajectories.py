"""Per-step motion models for the massive-update experiments.

Section 4.1's measured trace: "In each of the one thousand simulation steps
..., all elements move, but only by 0.04 µm (in a universe with volume of
285 µm³) on average with less than 0.5 % of elements moving more than
0.1 µm."  :class:`PlasticityMotion` matches those statistics exactly (3-d
Gaussian jitter whose displacement magnitude is Maxwell-distributed: with
σ = mean·√(π/8), the mean is 0.04 and P(>0.1) ≈ 0.04 %).

:class:`LinearMotion` provides the *predictable* trajectories that TPR-style
indexes assume — included so the moving-object benchmark can show exactly why
"these approaches do not work well for simulations" when the motion is
instead Brownian.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.geometry.aabb import AABB

# One step's motion: (eid, old_box, new_box).
Move = tuple[int, AABB, AABB]


class MotionModel(Protocol):
    """Produces one step of motion for a set of items."""

    def step(self, items: dict[int, AABB]) -> list[Move]: ...


class BrownianMotion:
    """Gaussian jitter: every element moves a small random amount per step.

    ``sigma`` is the per-axis standard deviation; displacement magnitudes
    follow a Maxwell distribution with mean ``2σ√(2/π) ≈ 1.596σ``.
    ``moving_fraction < 1`` moves only a random subset — the §4.1 crossover
    sweep's control knob.
    """

    def __init__(
        self,
        sigma: float,
        universe: AABB,
        moving_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if not 0.0 <= moving_fraction <= 1.0:
            raise ValueError(f"moving_fraction must be in [0,1], got {moving_fraction}")
        self.sigma = sigma
        self.universe = universe
        self.moving_fraction = moving_fraction
        self._rng = np.random.default_rng(seed)

    def step(self, items: dict[int, AABB]) -> list[Move]:
        if not items:
            return []
        eids = list(items)
        if self.moving_fraction < 1.0:
            count = int(round(len(eids) * self.moving_fraction))
            chosen = self._rng.choice(len(eids), size=count, replace=False)
            eids = [eids[i] for i in chosen]
        lo = np.asarray(self.universe.lo)
        hi = np.asarray(self.universe.hi)
        moves: list[Move] = []
        deltas = self._rng.normal(0.0, self.sigma, size=(len(eids), self.universe.dims))
        for eid, delta in zip(eids, deltas):
            old = items[eid]
            new_lo = np.clip(np.asarray(old.lo) + delta, lo, hi)
            new_hi = np.clip(np.asarray(old.hi) + delta, lo, hi)
            # Preserve extents when clipping pinched one side.
            extent = np.asarray(old.hi) - np.asarray(old.lo)
            new_hi = np.minimum(new_lo + extent, hi)
            new_lo = np.maximum(new_hi - extent, lo)
            moves.append((eid, old, AABB(new_lo, new_hi)))
        return moves


class PlasticityMotion(BrownianMotion):
    """The paper's neural-plasticity trace statistics, exactly.

    Mean displacement 0.04 µm with <0.5 % of elements beyond 0.1 µm: a 3-d
    Gaussian with σ = 0.04·√(π/8) ≈ 0.02507 gives Maxwell-mean 0.04 and
    P(|d| > 0.1) ≈ 0.0004.
    """

    MEAN_DISPLACEMENT_UM = 0.04
    TAIL_THRESHOLD_UM = 0.1

    def __init__(self, universe: AABB, moving_fraction: float = 1.0, seed: int = 0) -> None:
        sigma = self.MEAN_DISPLACEMENT_UM * math.sqrt(math.pi / 8.0)
        super().__init__(
            sigma=sigma, universe=universe, moving_fraction=moving_fraction, seed=seed
        )


class LinearMotion:
    """Constant-velocity motion — the predictable case TPR-trees index.

    Velocities are drawn once; each step translates every element by its
    velocity (bouncing off the universe walls), so trajectory-based indexes
    need no updates until a bounce.
    """

    def __init__(self, speed: float, universe: AABB, seed: int = 0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        self.speed = speed
        self.universe = universe
        self._rng = np.random.default_rng(seed)
        self._velocities: dict[int, np.ndarray] = {}

    def velocity_of(self, eid: int) -> np.ndarray:
        if eid not in self._velocities:
            v = self._rng.normal(size=self.universe.dims)
            norm = np.linalg.norm(v)
            if norm < 1e-12:
                norm = 1.0
            self._velocities[eid] = v / norm * self.speed
        return self._velocities[eid]

    def step(self, items: dict[int, AABB]) -> list[Move]:
        lo = np.asarray(self.universe.lo)
        hi = np.asarray(self.universe.hi)
        moves: list[Move] = []
        for eid, old in items.items():
            velocity = self.velocity_of(eid)
            new_lo = np.asarray(old.lo) + velocity
            new_hi = np.asarray(old.hi) + velocity
            # Bounce on the universe walls, reflecting the velocity.
            for axis in range(self.universe.dims):
                if new_lo[axis] < lo[axis] or new_hi[axis] > hi[axis]:
                    velocity[axis] = -velocity[axis]
                    new_lo[axis] = min(max(new_lo[axis], lo[axis]), hi[axis])
                    new_hi[axis] = min(max(new_hi[axis], lo[axis]), hi[axis])
            extent = np.asarray(old.hi) - np.asarray(old.lo)
            new_hi = np.minimum(new_lo + extent, hi)
            new_lo = np.maximum(new_hi - extent, lo)
            moves.append((eid, old, AABB(new_lo, new_hi)))
        return moves


def apply_moves(items: dict[int, AABB], moves: Sequence[Move]) -> None:
    """Apply one step's motion to the id → box dictionary in place."""
    for eid, _, new_box in moves:
        items[eid] = new_box


def displacement_stats(moves: Sequence[Move]) -> tuple[float, float]:
    """(mean displacement, fraction beyond PlasticityMotion's 0.1 threshold).

    Used by tests to verify the generated trace matches the paper's numbers.
    """
    if not moves:
        return (0.0, 0.0)
    displacements = []
    for _, old, new in moves:
        old_center = old.center()
        new_center = new.center()
        displacements.append(
            math.sqrt(sum((a - b) ** 2 for a, b in zip(old_center, new_center)))
        )
    mean = sum(displacements) / len(displacements)
    tail = sum(1 for d in displacements if d > PlasticityMotion.TAIL_THRESHOLD_UM)
    return (mean, tail / len(displacements))
