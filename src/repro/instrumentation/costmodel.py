"""Analytical cost models converting operation counters into modeled time.

The paper's experiments ran on a 2007-era Opteron box with striped SAS disks.
We do not have that hardware (nor the 200 M-element Blue Brain dataset), so
the reproduction substitutes *calibrated accounting*: indexes count primitive
operations, and these models price them.  Default constants are chosen to
match the published hardware class:

* disk: ~4 ms average positioning time per random 4 KB page, 120 MB/s
  sequential transfer — a striped SAS array circa 2013;
* memory: ~1 ns per cache line of payload touched (hit/miss mix on a
  ~2.7 GHz machine), ~12 ns per MBR intersection test, small constants for
  pointer chasing and heap/hash bookkeeping.

Absolute seconds are not the point — the paper itself reports one setup — but
the *breakdown shape* (reading vs computing; tree tests vs element tests) is
reproduced faithfully because it follows from the counters, not the constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.instrumentation.counters import Counters

READING = "reading_data"
TREE_TESTS = "intersection_tests_tree"
ELEM_TESTS = "intersection_tests_elements"
REMAINING = "remaining_computation"

CATEGORY_ORDER = (READING, TREE_TESTS, ELEM_TESTS, REMAINING)


@dataclass
class TimeBreakdown:
    """Modeled seconds attributed to the paper's four cost categories."""

    seconds: dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, category: str) -> float:
        """Share of total time in ``category`` (0 when the total is zero)."""
        total = self.total()
        if total == 0.0:
            return 0.0
        return self.seconds.get(category, 0.0) / total

    def percent(self, category: str) -> float:
        return 100.0 * self.fraction(category)

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        keys = set(self.seconds) | set(other.seconds)
        return TimeBreakdown(
            {k: self.seconds.get(k, 0.0) + other.seconds.get(k, 0.0) for k in keys}
        )

    def coarse(self) -> "TimeBreakdown":
        """Collapse to the two Figure-2 categories: reading vs computations."""
        reading = self.seconds.get(READING, 0.0)
        computing = self.total() - reading
        return TimeBreakdown({READING: reading, "computations": computing})

    def render(self, title: str = "", width: int = 50) -> str:
        """ASCII bar chart in the style of the paper's Figures 2 and 3."""
        lines = []
        if title:
            lines.append(title)
        total = self.total()
        order = [c for c in CATEGORY_ORDER if c in self.seconds]
        order += [c for c in self.seconds if c not in CATEGORY_ORDER]
        for category in order:
            secs = self.seconds[category]
            pct = 100.0 * secs / total if total else 0.0
            bar = "#" * int(round(width * secs / total)) if total else ""
            lines.append(f"  {category:<28s} {pct:5.1f}%  {secs:10.3f}s  {bar}")
        lines.append(f"  {'total':<28s} 100.0%  {total:10.3f}s")
        return "\n".join(lines)


@dataclass
class MemoryCostModel:
    """Prices counter tallies for an index operating in main memory.

    All constants are nanoseconds per operation except ``cache_line_bytes``.
    ``cache_line_ns`` prices each cache line of node/element payload touched;
    it models the DRAM/L-cache traffic the paper calls "reading data".
    """

    cache_line_bytes: int = 64
    cache_line_ns: float = 1.0
    intersect_test_ns: float = 12.0
    refine_test_ns: float = 60.0
    pointer_follow_ns: float = 3.0
    heap_op_ns: float = 30.0
    hash_probe_ns: float = 20.0
    cell_probe_ns: float = 4.0
    maintenance_op_ns: float = 40.0

    def breakdown(self, counters: Counters) -> TimeBreakdown:
        """Attribute the counters to the four Figure-3 categories."""
        lines = math.ceil(counters.bytes_touched / self.cache_line_bytes)
        reading = lines * self.cache_line_ns
        tree = counters.node_tests * self.intersect_test_ns
        elems = (
            counters.elem_tests * self.intersect_test_ns
            + counters.refine_tests * self.refine_test_ns
        )
        remaining = (
            counters.pointer_follows * self.pointer_follow_ns
            + counters.heap_ops * self.heap_op_ns
            + counters.hash_probes * self.hash_probe_ns
            + counters.cells_probed * self.cell_probe_ns
            + counters.comparisons * self.intersect_test_ns
            + (counters.inserts + counters.deletes + counters.updates) * self.maintenance_op_ns
        )
        to_seconds = 1e-9
        return TimeBreakdown(
            {
                READING: reading * to_seconds,
                TREE_TESTS: tree * to_seconds,
                ELEM_TESTS: elems * to_seconds,
                REMAINING: remaining * to_seconds,
            }
        )

    def seconds(self, counters: Counters) -> float:
        return self.breakdown(counters).total()


@dataclass
class DiskCostModel:
    """Prices counter tallies for a disk-resident index.

    Page reads dominate: each random page costs an average positioning time
    plus its transfer; CPU work is priced with the embedded memory model
    (computation does not disappear on disk — it is merely dwarfed).
    """

    page_size: int = 4096
    positioning_ms: float = 4.0
    transfer_mb_per_s: float = 120.0
    cpu: MemoryCostModel = field(default_factory=MemoryCostModel)

    def page_read_seconds(self, pages: int, sequential: bool = False) -> float:
        transfer = pages * self.page_size / (self.transfer_mb_per_s * 1e6)
        if sequential:
            # One positioning for the whole run, then streaming transfer.
            return min(pages, 1) * self.positioning_ms * 1e-3 + transfer
        return pages * self.positioning_ms * 1e-3 + transfer

    def breakdown(self, counters: Counters, sequential: bool = False) -> TimeBreakdown:
        """Attribute counters to categories; "reading data" prices the pages."""
        cpu = self.cpu.breakdown(counters)
        io_pages = counters.pages_read + counters.pages_written
        reading = self.page_read_seconds(io_pages, sequential=sequential)
        seconds = dict(cpu.seconds)
        # On disk the payload traffic is already accounted by the page reads.
        seconds[READING] = reading
        return TimeBreakdown(seconds)

    def seconds(self, counters: Counters, sequential: bool = False) -> float:
        return self.breakdown(counters, sequential=sequential).total()
