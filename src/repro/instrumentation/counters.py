"""Operation counters shared by every index, join and storage component.

Counters are plain integers bumped in hot loops; they are the ground truth
that the cost models interpret.  A counter object can be snapshotted and
diffed, so benchmarks measure exactly one phase (e.g. "the 200 queries" but
not the build).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Mutable tally of the primitive operations an index performs.

    Attributes map one-to-one to the paper's cost categories:

    * ``node_tests`` — MBR intersection tests against *inner tree nodes*
      ("Intersection Tests Tree" in Figure 3);
    * ``elem_tests`` — MBR intersection tests against *element bounding
      boxes* ("Intersection Tests Elements");
    * ``refine_tests`` — exact-geometry refinement tests (counted with
      element tests);
    * ``pointer_follows`` — child/bucket pointer dereferences ("Remaining
      Computation", together with heap and hash operations);
    * ``pages_read`` / ``pages_written`` — disk page transfers ("Reading
      Data" on disk);
    * ``bytes_touched`` — memory traffic over node/element payloads
      ("Reading Data" in memory, converted to cache lines);
    * ``cells_probed`` — grid cells visited;
    * ``hash_probes`` — LSH bucket probes;
    * ``heap_ops`` — kNN priority-queue pushes/pops;
    * ``comparisons`` — pairwise candidate comparisons in joins;
    * ``inserts`` / ``deletes`` / ``updates`` — index maintenance operations;
    * ``tiles_spilled`` / ``spill_bytes_written`` / ``spill_bytes_read`` —
      out-of-core execution: tile/partition arrays evicted to the spill
      store and the logical bytes shipped out and back
      (:mod:`repro.exec.spill`; page-granular transfers land in
      ``pages_read`` / ``pages_written`` as usual);
    * ``safe_region_hits`` / ``safe_region_invalidations`` — continuous-query
      maintenance (:mod:`repro.continuous`): standing results whose cached
      answer provably survived a tick versus those whose safe region was
      violated and had to be re-evaluated;
    * ``approx_descents`` / ``leaves_scanned`` — approximate kNN
      (:mod:`repro.approx`): queries answered by defeatist (no-backtrack)
      spill-tree descent, and the leaf buckets brute-forced to answer them;
    * ``zero_copy_reads`` / ``mapped_bytes`` — reads served as zero-copy
      NumPy views over an mmap-backed page store
      (:class:`~repro.storage.pagestore.MappedPageStore`) and the logical
      bytes those views exposed without a copy;
    * ``tile_runs_dispatched`` — mapped work units (spilled join tile runs,
      external-build slabs) handed to pool workers, which attach the spill
      file read-only instead of receiving the arrays by pickle.
    """

    node_tests: int = 0
    elem_tests: int = 0
    refine_tests: int = 0
    pointer_follows: int = 0
    pages_read: int = 0
    pages_written: int = 0
    bytes_touched: int = 0
    cells_probed: int = 0
    hash_probes: int = 0
    heap_ops: int = 0
    comparisons: int = 0
    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    tiles_spilled: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    safe_region_hits: int = 0
    safe_region_invalidations: int = 0
    approx_descents: int = 0
    leaves_scanned: int = 0
    zero_copy_reads: int = 0
    mapped_bytes: int = 0
    tile_runs_dispatched: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def snapshot(self) -> "Counters":
        """An independent copy of the current tallies."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "Counters") -> "Counters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return Counters(
            **{f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)}
        )

    def merge(self, other: "Counters") -> None:
        """Add ``other``'s tallies into this object (for aggregating runs)."""
        for field in fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))

    def total_intersection_tests(self) -> int:
        return self.node_tests + self.elem_tests + self.refine_tests

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = [f"{name}={value}" for name, value in self.as_dict().items() if value]
        return "Counters(" + ", ".join(parts) + ")"
