"""Operation accounting and cost modeling.

The EDBT'14 paper's experimental argument is about *where time goes*: on disk
an R-tree spends 96.7 % of query time reading pages; in memory 95.3 % goes to
computation, of which ~80 % is intersection tests (55 % against tree nodes,
25 % against elements).

Every index in :mod:`repro` therefore increments a shared
:class:`~repro.instrumentation.counters.Counters` object during operation.
Cost models (:class:`~repro.instrumentation.costmodel.DiskCostModel`,
:class:`~repro.instrumentation.costmodel.MemoryCostModel`) convert counters
into modeled seconds attributed to the paper's breakdown categories, which is
how the benchmark harness regenerates Figures 2 and 3 deterministically on any
machine.  Wall-clock timers are provided alongside for sanity checks.
"""

from repro.instrumentation.counters import Counters
from repro.instrumentation.costmodel import (
    DiskCostModel,
    MemoryCostModel,
    TimeBreakdown,
)
from repro.instrumentation.profiler import PhaseTimer

__all__ = [
    "Counters",
    "DiskCostModel",
    "MemoryCostModel",
    "TimeBreakdown",
    "PhaseTimer",
]
