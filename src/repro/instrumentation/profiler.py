"""Wall-clock phase timing, complementing the analytical cost models.

The cost models give deterministic, machine-independent breakdowns; the
:class:`PhaseTimer` gives honest wall-clock numbers for the same phases so
benchmarks can show both and confirm the shapes agree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("build"):
            index.bulk_load(items)
        with timer.phase("query"):
            index.range_query(box)
        timer.seconds("build")
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self) -> float:
        return sum(self._seconds.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self._seconds)

    def reset(self) -> None:
        self._seconds.clear()
        self._counts.clear()

    def render(self, title: str = "") -> str:
        lines = [title] if title else []
        total = self.total()
        for name, secs in sorted(self._seconds.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * secs / total if total else 0.0
            lines.append(f"  {name:<28s} {pct:5.1f}%  {secs:10.4f}s  (x{self._counts[name]})")
        lines.append(f"  {'total':<28s} 100.0%  {total:10.4f}s")
        return "\n".join(lines)
