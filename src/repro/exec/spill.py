"""SpillManager: typed NumPy spill files over the storage layer.

When a strategy's working set exceeds its :class:`~repro.exec.budget
.MemoryBudget`, it ships arrays here.  A spill write streams the array's
bytes as fixed-size pages through a real on-disk
:class:`~repro.storage.pagestore.MappedPageStore` (so the memory is genuinely
released), and reads come back one of two ways:

* **zero-copy** — a handle whose pages landed on consecutive slots (the
  common case: allocation is sequential, and freed slots are reused lowest
  first) is one contiguous byte range of the file, so any row range
  ``[lo, hi)`` is served as a NumPy *view* over the store's mmap — no page
  gather, no copy, charged to ``zero_copy_reads`` / ``mapped_bytes``;
* **pooled gather** — a fragmented handle falls back to page-wise reads
  through a bounded :class:`~repro.storage.buffer_pool.BufferPool`, exactly
  the pre-mmap path, keeping residency bounded no matter how much spilled.

A spilled array is *typed*: its :class:`SpillHandle` carries dtype and shape.
Because the backing store is a plain file, a handle can also be exported as a
picklable :class:`MappedRun` descriptor (:meth:`SpillManager.describe`):
any process maps the file read-only and reconstructs the array — or a row
range of it — with :func:`mapped_run_rows`, again zero-copy when contiguous.
That is how pool workers attach spill segments by path+descriptor, the same
shape as their shared-memory snapshot attach.

Lifecycle is explicit: the manager owns one tmpdir (created on demand,
removed on :meth:`close`), every handle can be freed individually, and
``close()`` is idempotent — sessions call it from their own ``close()``,
strategies from ``finally`` blocks, so an error path never leaves orphan
spill files behind.  Descriptors are only valid while the manager (and the
handles they describe) are alive — the parent frees handles *after* worker
results return.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.instrumentation.counters import Counters
from repro.obs import global_registry
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagestore import MappedPageStore


class SpillHandle:
    """One spilled array: page run + the dtype/shape to reassemble it."""

    __slots__ = ("pages", "dtype", "shape", "nbytes", "tag", "live", "contiguous")

    def __init__(
        self,
        pages: tuple[int, ...],
        dtype: np.dtype,
        shape: tuple[int, ...],
        nbytes: int,
        tag: object = None,
    ) -> None:
        self.pages = pages
        self.dtype = dtype
        self.shape = shape
        self.nbytes = nbytes
        self.tag = tag
        self.live = True
        #: Pages on consecutive slots — the whole array is one byte range of
        #: the spill file, eligible for zero-copy mapped reads.
        self.contiguous = all(
            later == earlier + 1 for earlier, later in zip(pages, pages[1:])
        )

    @property
    def rows(self) -> int:
        return self.shape[0] if self.shape else 1

    @property
    def row_bytes(self) -> int:
        tail = 1
        for extent in self.shape[1:]:
            tail *= extent
        return int(self.dtype.itemsize * tail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.live else "freed"
        return f"<SpillHandle {state} {self.dtype}{self.shape} tag={self.tag!r}>"


@dataclass(frozen=True)
class MappedRun:
    """Picklable description of one spilled array in one mapped file.

    Everything another process needs to reconstruct the array without the
    parent shipping a byte: the file path, the page geometry, and the type.
    ``pages`` is kept (not just the first slot) so fragmented runs can still
    be gathered; :attr:`contiguous` callers take the zero-copy view path.
    """

    path: str
    page_size: int
    pages: tuple[int, ...]
    dtype: str
    shape: tuple[int, ...]
    nbytes: int

    @property
    def rows(self) -> int:
        return self.shape[0] if self.shape else 1

    @property
    def row_bytes(self) -> int:
        tail = 1
        for extent in self.shape[1:]:
            tail *= extent
        return int(np.dtype(self.dtype).itemsize * tail)

    @property
    def contiguous(self) -> bool:
        return all(b == a + 1 for a, b in zip(self.pages, self.pages[1:]))


def mapped_run_rows(
    mapping, run: MappedRun, lo: int, hi: int, counters: Counters | None = None
) -> np.ndarray:
    """Rows ``[lo, hi)`` of a :class:`MappedRun` out of ``mapping`` (any
    buffer over the spill file — typically a read-only ``mmap``).

    Contiguous runs come back as a zero-copy view (charged to
    ``zero_copy_reads`` / ``mapped_bytes``); fragmented runs gather their
    covering pages with copies.  This is the worker-side attach primitive:
    it needs no :class:`SpillManager`, only the mapped file.
    """
    if not 0 <= lo <= hi <= run.rows:
        raise ValueError(f"row range [{lo}, {hi}) out of [0, {run.rows})")
    dtype = np.dtype(run.dtype)
    shape = (hi - lo, *run.shape[1:])
    row_bytes = run.row_bytes
    if hi == lo or row_bytes == 0:
        return np.empty(shape, dtype=dtype)
    start, stop = lo * row_bytes, hi * row_bytes
    if run.contiguous:
        offset = run.pages[0] * run.page_size + start
        view = np.frombuffer(mapping, dtype=np.uint8, count=stop - start, offset=offset)
        if counters is not None:
            counters.zero_copy_reads += 1
            counters.mapped_bytes += stop - start
        return view.view(dtype).reshape(shape)
    page_size = run.page_size
    first, last = start // page_size, (stop - 1) // page_size
    buffer = np.empty((last - first + 1) * page_size, dtype=np.uint8)
    for position, page_index in enumerate(range(first, last + 1)):
        offset = run.pages[page_index] * page_size
        length = min(page_size, run.nbytes - page_index * page_size)
        buffer[position * page_size : position * page_size + length] = np.frombuffer(
            mapping, dtype=np.uint8, count=length, offset=offset
        )
    window = buffer[start - first * page_size : stop - first * page_size].copy()
    return window.view(dtype).reshape(shape)


class SpillManager:
    """Writes and reads NumPy arrays as page runs in one spill file.

    Parameters
    ----------
    dir:
        Directory for the spill file.  ``None`` (default) creates a private
        tmpdir that :meth:`close` removes entirely; a caller-supplied
        directory is left in place with only the manager's file removed.
    page_size:
        Bytes per page (default 1 MiB — large pages keep the page count and
        Python-level overhead low for array streaming).
    pool_pages:
        Read-path buffer pool capacity in pages, used only by the
        *fragmented* fallback path.  Spill *writes* go write-through
        (straight to the store) so no dirty frame pins memory; contiguous
        reads are zero-copy mapped views (no residency at all), and the
        fragmented gather path caches at most this many pages.
    counters:
        Shared counters: page transfers land in ``pages_read`` /
        ``pages_written``, logical traffic in ``spill_bytes_written`` /
        ``spill_bytes_read``, and each :meth:`spill` call bumps
        ``tiles_spilled``.
    """

    def __init__(
        self,
        dir: str | None = None,
        page_size: int = 1 << 20,
        pool_pages: int = 8,
        counters: Counters | None = None,
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self._owns_dir = dir is None
        if dir is None:
            dir = tempfile.mkdtemp(prefix="repro-spill-")
        else:
            os.makedirs(dir, exist_ok=True)
        self.dir = dir
        # A unique file per manager: FilePageStore opens with "w+b", so a
        # shared fixed name would let two managers pointed at the same
        # directory truncate each other's live spill file.
        fd, self.path = tempfile.mkstemp(prefix="spill-", suffix=".pages", dir=dir)
        os.close(fd)
        self.store = MappedPageStore(self.path, page_size=page_size, counters=self.counters)
        self.pool = BufferPool(self.store, capacity=pool_pages)
        self.closed = False
        self._live = 0
        # Registry mirrors of the spill I/O counters, cached once so the
        # per-call cost is an attribute bump.
        registry = global_registry()
        self._m_bytes_written = registry.counter("spill.bytes_written")
        self._m_bytes_read = registry.counter("spill.bytes_read")
        self._m_tiles = registry.counter("spill.tiles")

    # -- spill / read ---------------------------------------------------------

    @property
    def live_handles(self) -> int:
        """Spilled arrays not yet freed."""
        return self._live

    def spill(self, array: np.ndarray, tag: object = None) -> SpillHandle:
        """Write ``array`` out as pages; the caller may now drop the array."""
        self._check_open()
        data = np.ascontiguousarray(array)
        raw = data.view(np.uint8).reshape(-1)
        page_size = self.store.page_size
        pages = tuple(
            self.store.allocate(raw[start : start + page_size].tobytes())
            for start in range(0, raw.shape[0], page_size)
        )
        handle = SpillHandle(pages, data.dtype, data.shape, int(data.nbytes), tag)
        self.counters.tiles_spilled += 1
        self.counters.spill_bytes_written += handle.nbytes
        self._m_tiles.inc()
        self._m_bytes_written.inc(handle.nbytes)
        self._live += 1
        return handle

    def read(self, handle: SpillHandle) -> np.ndarray:
        """Reassemble a whole spilled array (through the buffer pool)."""
        return self.read_rows(handle, 0, handle.rows)

    def read_rows(self, handle: SpillHandle, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi)`` of a spilled array.

        Contiguous handles come back as a **read-only zero-copy view** over
        the store's mmap (do not mutate in place — rebind through fancy
        indexing instead); fragmented handles fall back to gathering their
        covering pages through the bounded buffer pool.
        """
        self._check_open()
        if not handle.live:
            raise ValueError(f"spill handle already freed: {handle!r}")
        if not 0 <= lo <= hi <= handle.rows:
            raise ValueError(f"row range [{lo}, {hi}) out of [0, {handle.rows})")
        row_bytes = handle.row_bytes
        shape = (hi - lo, *handle.shape[1:])
        if hi == lo or row_bytes == 0:
            return np.empty(shape, dtype=handle.dtype)
        start, stop = lo * row_bytes, hi * row_bytes
        if handle.contiguous:
            view = self.store.run_view(handle.pages[0], stop - start, offset=start)
            self.counters.spill_bytes_read += stop - start
            self._m_bytes_read.inc(stop - start)
            return view.view(handle.dtype).reshape(shape)
        page_size = self.store.page_size
        first, last = start // page_size, (stop - 1) // page_size
        buffer = np.empty((last - first + 1) * page_size, dtype=np.uint8)
        position = 0
        for page_index in range(first, last + 1):
            chunk = self.pool.read(handle.pages[page_index])
            buffer[position : position + len(chunk)] = np.frombuffer(chunk, np.uint8)
            position += page_size
        self.counters.spill_bytes_read += stop - start
        self._m_bytes_read.inc(stop - start)
        window = buffer[start - first * page_size : stop - first * page_size].copy()
        return window.view(handle.dtype).reshape(shape)

    def describe(self, handle: SpillHandle) -> MappedRun:
        """A picklable :class:`MappedRun` descriptor for ``handle``.

        Flushes buffered writes first, so any process that maps
        :attr:`path` sees the run's bytes.  The descriptor stays valid until
        the handle is freed (or the manager closed) — callers dispatching it
        to workers free the handle only after the results return.
        """
        self._check_open()
        if not handle.live:
            raise ValueError(f"spill handle already freed: {handle!r}")
        self.store.sync()
        return MappedRun(
            path=self.path,
            page_size=self.store.page_size,
            pages=handle.pages,
            dtype=handle.dtype.str,
            shape=handle.shape,
            nbytes=handle.nbytes,
        )

    def free(self, handle: SpillHandle) -> None:
        """Release a spilled array's pages for reuse.  Idempotent."""
        if not handle.live:
            return
        handle.live = False
        self._live -= 1
        if self.closed:
            return
        for page_id in handle.pages:
            self.store.free(page_id)
            self.pool.drop(page_id)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop every frame, close and remove the spill file (and the tmpdir
        when the manager created it).  Idempotent; safe on error paths."""
        if self.closed:
            return
        self.closed = True
        self.pool.drop_all()
        self.store.close(unlink=True)
        if self._owns_dir:
            shutil.rmtree(self.dir, ignore_errors=True)

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("SpillManager is closed")
