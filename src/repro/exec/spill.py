"""SpillManager: typed NumPy spill files over the storage layer.

When a strategy's working set exceeds its :class:`~repro.exec.budget
.MemoryBudget`, it ships arrays here.  A spill write streams the array's
bytes as fixed-size pages through a real on-disk
:class:`~repro.storage.pagestore.FilePageStore` (so the memory is genuinely
released), and reads come back through a bounded
:class:`~repro.storage.buffer_pool.BufferPool` — the same two components the
:class:`~repro.indexes.disk_rtree.DiskRTree` runs on, so page-transfer
accounting is uniform across the library.

A spilled array is *typed*: its :class:`SpillHandle` carries dtype and shape,
and :meth:`SpillManager.read_rows` reconstructs any contiguous row range by
fetching only the pages that cover it (the primitive the external bulk load's
merge phase is built on).

Lifecycle is explicit: the manager owns one tmpdir (created on demand,
removed on :meth:`close`), every handle can be freed individually, and
``close()`` is idempotent — sessions call it from their own ``close()``,
strategies from ``finally`` blocks, so an error path never leaves orphan
spill files behind.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

from repro.instrumentation.counters import Counters
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagestore import FilePageStore


class SpillHandle:
    """One spilled array: page run + the dtype/shape to reassemble it."""

    __slots__ = ("pages", "dtype", "shape", "nbytes", "tag", "live")

    def __init__(
        self,
        pages: tuple[int, ...],
        dtype: np.dtype,
        shape: tuple[int, ...],
        nbytes: int,
        tag: object = None,
    ) -> None:
        self.pages = pages
        self.dtype = dtype
        self.shape = shape
        self.nbytes = nbytes
        self.tag = tag
        self.live = True

    @property
    def rows(self) -> int:
        return self.shape[0] if self.shape else 1

    @property
    def row_bytes(self) -> int:
        tail = 1
        for extent in self.shape[1:]:
            tail *= extent
        return int(self.dtype.itemsize * tail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.live else "freed"
        return f"<SpillHandle {state} {self.dtype}{self.shape} tag={self.tag!r}>"


class SpillManager:
    """Writes and reads NumPy arrays as page runs in one spill file.

    Parameters
    ----------
    dir:
        Directory for the spill file.  ``None`` (default) creates a private
        tmpdir that :meth:`close` removes entirely; a caller-supplied
        directory is left in place with only the manager's file removed.
    page_size:
        Bytes per page (default 1 MiB — large pages keep the page count and
        Python-level overhead low for array streaming).
    pool_pages:
        Read-path buffer pool capacity in pages.  Spill *writes* go
        write-through (straight to the store) so no dirty frame pins
        memory; only reads are cached, and eviction keeps residency at or
        under this page budget no matter how much is spilled.
    counters:
        Shared counters: page transfers land in ``pages_read`` /
        ``pages_written``, logical traffic in ``spill_bytes_written`` /
        ``spill_bytes_read``, and each :meth:`spill` call bumps
        ``tiles_spilled``.
    """

    def __init__(
        self,
        dir: str | None = None,
        page_size: int = 1 << 20,
        pool_pages: int = 8,
        counters: Counters | None = None,
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self._owns_dir = dir is None
        if dir is None:
            dir = tempfile.mkdtemp(prefix="repro-spill-")
        else:
            os.makedirs(dir, exist_ok=True)
        self.dir = dir
        # A unique file per manager: FilePageStore opens with "w+b", so a
        # shared fixed name would let two managers pointed at the same
        # directory truncate each other's live spill file.
        fd, self.path = tempfile.mkstemp(prefix="spill-", suffix=".pages", dir=dir)
        os.close(fd)
        self.store = FilePageStore(self.path, page_size=page_size, counters=self.counters)
        self.pool = BufferPool(self.store, capacity=pool_pages)
        self.closed = False
        self._live = 0

    # -- spill / read ---------------------------------------------------------

    @property
    def live_handles(self) -> int:
        """Spilled arrays not yet freed."""
        return self._live

    def spill(self, array: np.ndarray, tag: object = None) -> SpillHandle:
        """Write ``array`` out as pages; the caller may now drop the array."""
        self._check_open()
        data = np.ascontiguousarray(array)
        raw = data.view(np.uint8).reshape(-1)
        page_size = self.store.page_size
        pages = tuple(
            self.store.allocate(raw[start : start + page_size].tobytes())
            for start in range(0, raw.shape[0], page_size)
        )
        handle = SpillHandle(pages, data.dtype, data.shape, int(data.nbytes), tag)
        self.counters.tiles_spilled += 1
        self.counters.spill_bytes_written += handle.nbytes
        self._live += 1
        return handle

    def read(self, handle: SpillHandle) -> np.ndarray:
        """Reassemble a whole spilled array (through the buffer pool)."""
        return self.read_rows(handle, 0, handle.rows)

    def read_rows(self, handle: SpillHandle, lo: int, hi: int) -> np.ndarray:
        """Reassemble rows ``[lo, hi)``, fetching only the covering pages."""
        self._check_open()
        if not handle.live:
            raise ValueError(f"spill handle already freed: {handle!r}")
        if not 0 <= lo <= hi <= handle.rows:
            raise ValueError(f"row range [{lo}, {hi}) out of [0, {handle.rows})")
        row_bytes = handle.row_bytes
        shape = (hi - lo, *handle.shape[1:])
        if hi == lo or row_bytes == 0:
            return np.empty(shape, dtype=handle.dtype)
        start, stop = lo * row_bytes, hi * row_bytes
        page_size = self.store.page_size
        first, last = start // page_size, (stop - 1) // page_size
        buffer = np.empty((last - first + 1) * page_size, dtype=np.uint8)
        position = 0
        for page_index in range(first, last + 1):
            chunk = self.pool.read(handle.pages[page_index])
            buffer[position : position + len(chunk)] = np.frombuffer(chunk, np.uint8)
            position += page_size
        self.counters.spill_bytes_read += stop - start
        window = buffer[start - first * page_size : stop - first * page_size].copy()
        return window.view(handle.dtype).reshape(shape)

    def free(self, handle: SpillHandle) -> None:
        """Release a spilled array's pages for reuse.  Idempotent."""
        if not handle.live:
            return
        handle.live = False
        self._live -= 1
        if self.closed:
            return
        for page_id in handle.pages:
            self.store.free(page_id)
            self.pool.drop(page_id)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop every frame, close and remove the spill file (and the tmpdir
        when the manager created it).  Idempotent; safe on error paths."""
        if self.closed:
            return
        self.closed = True
        self.pool.drop_all()
        self.store.close(unlink=True)
        if self._owns_dir:
            shutil.rmtree(self.dir, ignore_errors=True)

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("SpillManager is closed")
