"""Chunked external STR bulk load: sort-spill entry runs, merge into leaves.

In-memory STR packing (:func:`repro.indexes.bulkload.str_pack`) sorts the
whole entry set at once — a working set several times the data.  This module
is the out-of-core counterpart for builds larger than the
:class:`~repro.exec.budget.MemoryBudget`:

1. **Run phase** — items are consumed in budget-sized chunks; each chunk is
   packed, sorted by its first-axis center (STR's outer sort key) and
   spilled as a typed ``(keys, eids, boxes)`` run through the
   :class:`~repro.exec.spill.SpillManager`;
2. **Merge phase** — the runs' key arrays (8 bytes/entry — the one thing
   that must be globally visible) are merged into the STR slab order; each
   first-axis slab then gathers its contiguous row range *from every run*
   via page-granular partial reads (:meth:`SpillManager.read_rows`), and the
   in-memory recursive tiler finishes the remaining axes inside the slab —
   which is exactly what STR does after its outer sort.

:func:`external_leaf_groups` streams the resulting leaf entry groups in
packing order, so consumers decide where leaves live:
:meth:`repro.indexes.rtree.RTree.bulk_load_external` materializes
:class:`~repro.indexes.rtree.Node` objects, while
:meth:`repro.indexes.disk_rtree.DiskRTree.bulk_load_external` allocates each
leaf straight into its page store without ever holding the leaf level in
memory.  Upper levels are built from one ``(mbr, child)`` entry per leaf —
``max_entries``-fold smaller than the data, always in-budget.

With ``workers`` >= 2 the merge phase parallelizes over the serving pool:
each slab's run ranges are exported as picklable
:class:`~repro.exec.spill.MappedRun` descriptors and a pool worker maps the
spill file read-only, gathers its rows zero-copy and tiles the slab
(:func:`repro.serving.worker.str_slab_task`).  Slabs are dispatched in
waves of ``workers`` so the parent never holds more than one wave of leaf
groups; group order — and therefore the packed tree — is identical to the
single-process merge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exec.budget import MemoryBudget
from repro.exec.spill import SpillHandle, SpillManager
from repro.geometry.aabb import AABB, boxes_to_array, union_all
from repro.indexes.base import Item
from repro.indexes.bulkload import NodeFactory, _tile, _tile_recursive
from repro.instrumentation.counters import Counters

#: Chunking below this is all overhead (mirrors the external join's floor).
MIN_CHUNK_BYTES = 1 << 16


def _entry_bytes(dims: int) -> int:
    """Spilled bytes per entry: box + eid + sort key."""
    return 2 * dims * 8 + 16


@dataclass
class _Run:
    """One sorted, (usually) spilled entry run."""

    keys: SpillHandle | np.ndarray
    eids: SpillHandle | np.ndarray
    boxes: SpillHandle | np.ndarray
    size: int
    positions: np.ndarray | None = None  # merged-order position of each row


def external_leaf_groups(
    items: Iterable[Item],
    max_entries: int,
    budget: MemoryBudget | int | None = None,
    spill: SpillManager | None = None,
    spill_dir: str | None = None,
    counters: Counters | None = None,
    workers: int | None = None,
) -> Iterator[list[tuple[AABB, int]]]:
    """Yield STR leaf entry groups ``[(box, eid), ...]`` in packing order.

    The build working set (sort arrays, runs, slab gathers) stays within
    the budget; the items iterable itself is consumed streaming and never
    materialized as a whole.  ``workers`` >= 2 tiles spilled slabs on the
    serving pool (mapped read-only by each worker) in dispatch waves; group
    order is identical either way, and any pool failure falls back to the
    in-process merge per wave.
    """
    budget = MemoryBudget.coerce(budget)
    counters = counters if counters is not None else Counters()
    limit = budget.limit
    chunk_budget = max(limit // 4, MIN_CHUNK_BYTES) if limit is not None else None

    owns_spill = spill is None
    if spill is None:
        spill = SpillManager(dir=spill_dir, counters=counters)
    runs: list[_Run] = []
    try:
        dims = _build_runs(items, max_entries, budget, chunk_budget, spill, runs)
        if not runs:
            return
        total = sum(run.size for run in runs)
        _assign_positions(runs, spill, budget)
        slab_size = _slab_rows(total, dims, max_entries, chunk_budget)
        slabs = [
            (p0, min(p0 + slab_size, total)) for p0 in range(0, total, slab_size)
        ]
        spilled = all(isinstance(run.keys, SpillHandle) for run in runs)
        pool = None
        if workers is not None and workers >= 2 and spilled and len(slabs) >= 2:
            from repro.serving.pool import default_pool

            pool = default_pool()

        # Waves of ``workers`` slabs bound the parent's in-flight results;
        # within a wave, futures come back in dispatch order, so the group
        # stream is identical to the sequential merge.
        wave = max(workers or 1, 1)
        for wave_start in range(0, len(slabs), wave):
            wave_slabs = slabs[wave_start : wave_start + wave]
            parts = None
            if pool is not None:
                try:
                    tasks = [
                        (dims, max_entries, _slab_segments(runs, spill, p0, p1))
                        for p0, p1 in wave_slabs
                    ]
                    parts = pool.run_slab_tasks(tasks)
                    counters.tile_runs_dispatched += len(tasks)
                except Exception:
                    # Pool-infrastructure failure: merge this wave (and, if
                    # the pool stays down, the next ones) in-process.
                    parts = None
            if parts is not None:
                for packed, worker_counters in parts:
                    counters.merge(worker_counters)
                    for group_boxes, group_eids in packed:
                        yield [
                            (AABB(box[0], box[1]), int(eid))
                            for box, eid in zip(group_boxes, group_eids)
                        ]
            else:
                for p0, p1 in wave_slabs:
                    yield from _merge_slab(
                        runs, spill, p0, p1, dims, max_entries, budget
                    )
    finally:
        for run in runs:
            for field in (run.keys, run.eids, run.boxes):
                if isinstance(field, SpillHandle):
                    spill.free(field)
        if owns_spill:
            spill.close()


def _build_runs(
    items: Iterable[Item],
    max_entries: int,
    budget: MemoryBudget,
    chunk_budget: int | None,
    spill: SpillManager,
    runs: list[_Run],
) -> int:
    """Consume items into sorted runs; returns the dimensionality."""
    dims = 0
    chunk_rows = 1 << 30
    buffer: list[Item] = []
    iterator = iter(items)
    seen: set[int] = set()
    spill_runs: bool | None = None if chunk_budget is not None else False

    def flush() -> None:
        nonlocal spill_runs
        if not buffer:
            return
        n = len(buffer)
        eids = np.fromiter((eid for eid, _ in buffer), dtype=np.int64, count=n)
        boxes = boxes_to_array([box for _, box in buffer])
        buffer.clear()
        with budget.reserving(boxes.nbytes + 2 * eids.nbytes, force=True):
            keys = (boxes[:, 0, 0] + boxes[:, 1, 0]) * 0.5
            order = np.argsort(keys, kind="stable")
            keys, eids, boxes = keys[order], eids[order], boxes[order]
            if spill_runs:
                runs.append(
                    _Run(
                        spill.spill(keys, tag="str-keys"),
                        spill.spill(eids, tag="str-eids"),
                        spill.spill(boxes, tag="str-boxes"),
                        n,
                    )
                )
            else:
                runs.append(_Run(keys, eids, boxes, n))

    for item in iterator:
        eid, box = item
        # The streaming counterpart of ``validate_items`` (materializing the
        # iterable for a pre-pass would defeat the bounded build).
        if dims == 0:
            dims = box.dims
            if chunk_budget is not None:
                chunk_rows = max(chunk_budget // _entry_bytes(dims), max_entries)
        elif box.dims != dims:
            raise ValueError(f"element {eid} has {box.dims} dims, expected {dims}")
        if eid in seen:
            raise ValueError(f"duplicate element id {eid}")
        seen.add(eid)
        buffer.append(item)
        if len(buffer) >= chunk_rows:
            if spill_runs is None:
                # More than one chunk's worth of data: this build pays the
                # spill path; a single-chunk build stays resident.
                spill_runs = True
            flush()
    if spill_runs is None:
        spill_runs = False
    flush()
    return dims


def _assign_positions(runs: list[_Run], spill: SpillManager, budget: MemoryBudget) -> None:
    """Compute each run row's position in the merged global key order.

    Only the key arrays (8 bytes/entry) are loaded; a stable argsort makes
    every run's positions ascending, so slab membership per run is a
    contiguous row range found by binary search.
    """
    total = sum(run.size for run in runs)
    with budget.reserving(3 * total * 8, force=True):
        all_keys = np.concatenate(
            [_fetch_rows(spill, run.keys, 0, run.size) for run in runs]
        )
        order = np.argsort(all_keys, kind="stable")
        inverse = np.empty(total, dtype=np.int64)
        inverse[order] = np.arange(total, dtype=np.int64)
        offset = 0
        for run in runs:
            run.positions = inverse[offset : offset + run.size]
            offset += run.size


def _slab_segments(
    runs: list[_Run], spill: SpillManager, p0: int, p1: int
) -> list[tuple]:
    """One slab's dispatchable gather list: ``(eids_run, boxes_run, lo,
    hi)`` MappedRun descriptor tuples, in run order (the inline order)."""
    segments = []
    for run in runs:
        assert run.positions is not None
        lo = int(np.searchsorted(run.positions, p0, side="left"))
        hi = int(np.searchsorted(run.positions, p1, side="left"))
        if lo == hi:
            continue
        segments.append(
            (spill.describe(run.eids), spill.describe(run.boxes), lo, hi)
        )
    return segments


def _merge_slab(
    runs: list[_Run],
    spill: SpillManager,
    p0: int,
    p1: int,
    dims: int,
    max_entries: int,
    budget: MemoryBudget,
) -> list[list[tuple[AABB, int]]]:
    """Gather one slab's rows from every run and tile it in-process."""
    entries: list[tuple[AABB, int]] = []
    with budget.reserving((p1 - p0) * _entry_bytes(dims), force=True):
        for run in runs:
            assert run.positions is not None
            lo = int(np.searchsorted(run.positions, p0, side="left"))
            hi = int(np.searchsorted(run.positions, p1, side="left"))
            if lo == hi:
                continue
            boxes = _fetch_rows(spill, run.boxes, lo, hi)
            eids = _fetch_rows(spill, run.eids, lo, hi)
            entries.extend(
                (AABB(box[0], box[1]), int(eid))
                for box, eid in zip(boxes, eids)
            )
        groups: list[list[tuple[AABB, int]]] = []
        # The slab is an axis-0 slice of the global sort — exactly STR's
        # state after its outer sort — so the in-memory tiler finishes
        # from axis 1 (axis 0 again for 1-d data).
        _tile_recursive(entries, min(1, dims - 1), dims, max_entries, groups)
    return groups


def _slab_rows(total: int, dims: int, max_entries: int, chunk_budget: int | None) -> int:
    """STR's first-axis slab size, shrunk (never below a leaf) to the budget."""
    pages = math.ceil(total / max_entries)
    slabs = max(1, math.ceil(pages ** (1.0 / dims)))
    slab_size = math.ceil(total / slabs)
    if chunk_budget is not None:
        per_entry = _entry_bytes(dims)
        while slab_size * per_entry > chunk_budget and slab_size > max_entries:
            slabs *= 2
            slab_size = math.ceil(total / slabs)
    return max(slab_size, max_entries)


def _fetch_rows(
    spill: SpillManager, field: SpillHandle | np.ndarray, lo: int, hi: int
) -> np.ndarray:
    if isinstance(field, SpillHandle):
        return spill.read_rows(field, lo, hi)
    return field[lo:hi]


# -- packing to nodes ------------------------------------------------------------


@dataclass
class ExternalBuild:
    """Result of an external pack: the built tree plus its dimensions."""

    root: object | None
    height: int
    node_count: int
    size: int
    dims: int | None


def external_str_pack(
    items: Iterable[Item],
    max_entries: int,
    node_factory: NodeFactory,
    budget: MemoryBudget | int | None = None,
    spill: SpillManager | None = None,
    spill_dir: str | None = None,
    counters: Counters | None = None,
    workers: int | None = None,
) -> ExternalBuild:
    """The external counterpart of :func:`repro.indexes.bulkload.str_pack`.

    Leaves are materialized streaming from :func:`external_leaf_groups`;
    upper levels tile one ``(mbr, node)`` entry per child — a working set
    ``max_entries``-fold smaller per level, always within budget.  An empty
    iterable returns an empty :class:`ExternalBuild` (``root=None``) rather
    than raising, so index wrappers can reset themselves uniformly.
    """
    nodes: list[object] = []
    boxes: list[AABB] = []
    size = 0
    dims: int | None = None
    for group in external_leaf_groups(
        items, max_entries, budget, spill=spill, spill_dir=spill_dir,
        counters=counters, workers=workers,
    ):
        if dims is None:
            dims = group[0][0].dims
        nodes.append(node_factory(True, group))
        boxes.append(union_all(box for box, _ in group))
        size += len(group)
    if not nodes:
        return ExternalBuild(None, 0, 0, 0, None)
    assert dims is not None
    height = 1
    node_count = len(nodes)
    while len(nodes) > 1:
        level_entries = list(zip(boxes, nodes))
        groups = _tile(level_entries, dims, max_entries)
        nodes = [node_factory(False, group) for group in groups]
        boxes = [union_all(box for box, _ in group) for group in groups]
        height += 1
        node_count += len(nodes)
    return ExternalBuild(nodes[0], height, node_count, size, dims)


def external_bulk_load(
    index: object,
    items: Iterable[Item],
    budget: MemoryBudget | int | None = None,
    spill_dir: str | None = None,
    workers: int | None = None,
) -> None:
    """Bulk-load any index exposing ``bulk_load_external`` under a budget.

    :class:`~repro.indexes.rtree.RTree` (and its R* subclass) and
    :class:`~repro.indexes.disk_rtree.DiskRTree` implement the hook; other
    indexes raise ``TypeError``.
    """
    hook = getattr(index, "bulk_load_external", None)
    if hook is None:
        raise TypeError(
            f"{type(index).__name__} has no external bulk load; "
            "RTree, RStarTree and DiskRTree support it"
        )
    hook(items, budget=budget, spill_dir=spill_dir, workers=workers)
