"""Out-of-core execution: memory governor, spill files, external pipelines.

The paper's datasets "exceed the memory of a single machine by definition",
yet until this subsystem every join strategy and bulk load materialized its
full working set in RAM.  ``repro.exec`` closes that gap with four pieces:

* :class:`~repro.exec.budget.MemoryBudget` — a per-session byte budget with
  reserve/release accounting and high-water telemetry; the query and join
  planners consult it when routing;
* :class:`~repro.exec.spill.SpillManager` — typed NumPy spill files written
  as pages through the real on-disk
  :class:`~repro.storage.pagestore.MappedPageStore`, with explicit
  lifecycle (tmpdir per manager, cleanup on session close and on error
  paths); contiguous reads come back as zero-copy mmap views, fragmented
  ones through a bounded :class:`~repro.storage.buffer_pool.BufferPool`,
  and any handle exports as a picklable :class:`~repro.exec.spill.MappedRun`
  descriptor other processes attach by path;
* the **external PBSM** join (:mod:`repro.exec.external_join`, registry name
  ``pbsm_spill``) — partitions both inputs into tile runs, spills runs
  exceeding the budget, and streams them back through the vectorized merge
  kernel, returning the exact nested-loop pair set;
* the **chunked external STR bulk load**
  (:mod:`repro.exec.external_build`) — sort-spills entry runs and merges
  them into leaves so ``RTree``/``DiskRTree`` builds never hold more than
  the budget.

``repro.exec.external_join`` is imported by :mod:`repro.joins.session` (not
here) to keep the package import-cycle-free; constructing a ``JoinSession``
— or importing ``repro`` — registers ``pbsm_spill``.
"""

from repro.exec.budget import (
    BudgetExceeded,
    MemoryBudget,
    pbsm_working_set_bytes,
    str_build_working_set_bytes,
)
from repro.exec.external_build import (
    ExternalBuild,
    external_bulk_load,
    external_leaf_groups,
    external_str_pack,
)
from repro.exec.spill import MappedRun, SpillHandle, SpillManager, mapped_run_rows

__all__ = [
    "BudgetExceeded",
    "MemoryBudget",
    "SpillHandle",
    "SpillManager",
    "MappedRun",
    "mapped_run_rows",
    "ExternalBuild",
    "external_bulk_load",
    "external_leaf_groups",
    "external_str_pack",
    "pbsm_working_set_bytes",
    "str_build_working_set_bytes",
]
