"""External PBSM: the spatial join whose working set obeys a memory budget.

``pbsm_spill`` is the out-of-core member of
:data:`~repro.joins.strategies.JOIN_REGISTRY`.  It is the same Partition
Based Spatial-Merge as the in-memory ``pbsm`` strategy — identical tiling,
identical reference-point dedup, the same merge kernel family — but its
execution is staged so no phase materializes more than (a quarter of) the
session's :class:`~repro.exec.budget.MemoryBudget`:

1. **Histogram pass** — inputs are packed in bounded row chunks and each
   chunk's tile replicas are only *counted*, producing the per-tile replica
   histogram;
2. **Partition pass** — contiguous tile ranges are grouped into *runs* whose
   replica bytes fit the chunk budget, and a second bounded pass gathers each
   chunk's replicas and spills them per run through the
   :class:`~repro.exec.spill.SpillManager` (typed ``(eids, boxes, keys)``
   segments over the real on-disk page store);
3. **Merge pass** — runs stream back one at a time; each is key-sorted and
   pushed through :func:`repro.joins.kernels.replica_tile_pairs`, whose
   global reference-point dedup guarantees that a pair replicated across
   tiles *and* runs is still reported exactly once.

Because the tiling and dedup rule are global, the result is the exact
nested-loop pair set — the oracle suite pins it with every other registry
entry.  When the whole working set fits the budget (or no budget is given)
the strategy degrades gracefully to a single in-memory run with zero spill
traffic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exec.budget import MemoryBudget
from repro.exec.spill import SpillHandle, SpillManager
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins import kernels
from repro.joins.strategies import JoinStrategy, _default_tiles, register

#: Below this, chunking is all overhead: the partition passes never shrink
#: their row chunks past it even under tiny budgets.
MIN_CHUNK_BYTES = 1 << 16


def _replica_bytes(dims: int) -> int:
    """Spilled bytes per replica: box + eid + tile key."""
    return 2 * dims * 8 + 16


def spill_page_size(chunk_budget: int | None) -> int:
    """Spill page size matched to the partition scale.

    Segments are roughly ``chunk_budget``-sized; pages much larger than a
    segment waste whole slots per spilled array (every segment spills three
    typed arrays), pages much smaller multiply Python-level page loops.
    ~1/16 of the chunk budget, clamped to [16 KiB, 1 MiB], keeps per-segment
    slot waste under ~20% without ballooning the page count.
    """
    if chunk_budget is None:
        return 1 << 20
    return max(1 << 14, min(1 << 20, chunk_budget // 16))


@register
class SpillPBSMJoin(JoinStrategy):
    """PBSM with budget-bounded phases and spill-to-disk partitions.

    Parameters
    ----------
    budget:
        A :class:`~repro.exec.budget.MemoryBudget`, raw byte limit, or
        ``None`` (unlimited — runs as one in-memory partition, no spill).
        Each phase holds at most ~``limit / 4`` bytes of arrays: one run
        being gathered or merged, plus the kernels' own slab temporaries.
    tiles_per_axis:
        Tiling override (default: the same heuristic as ``pbsm``).
    spill:
        A shared :class:`~repro.exec.spill.SpillManager` (the session
        passes its own, so spill files live until ``session.close()``).
        When omitted, a private manager is created per join call and torn
        down in a ``finally`` — an error mid-join leaves no files behind.
    spill_dir:
        Directory for the private manager's spill file (ignored when
        ``spill`` is supplied).
    """

    name = "pbsm_spill"
    # Forked shard workers would write through the parent's spill file
    # descriptors concurrently; the sharded executor runs this inline.
    forkable = False

    def __init__(
        self,
        budget: MemoryBudget | int | None = None,
        tiles_per_axis: int | None = None,
        spill: SpillManager | None = None,
        spill_dir: str | None = None,
    ) -> None:
        self.budget = MemoryBudget.coerce(budget)
        self.tiles_per_axis = tiles_per_axis
        self.spill = spill
        self.spill_dir = spill_dir

    # -- the join -------------------------------------------------------------

    def join(
        self, items_a: Sequence[Item], items_b: Sequence[Item], counters: Counters
    ) -> list[tuple[int, int]]:
        if not items_a or not items_b:
            return []
        dims = items_a[0][1].dims
        chunk_budget = self._chunk_budget()
        owns_spill = self.spill is None
        spill = (
            self.spill
            if self.spill is not None
            else SpillManager(
                dir=self.spill_dir,
                page_size=spill_page_size(chunk_budget),
                counters=counters,
            )
        )
        try:
            return self._join_staged(items_a, items_b, dims, chunk_budget, spill, counters)
        finally:
            if owns_spill:
                spill.close()

    def _join_staged(
        self,
        items_a: Sequence[Item],
        items_b: Sequence[Item],
        dims: int,
        chunk_budget: int | None,
        spill: SpillManager,
        counters: Counters,
    ) -> list[tuple[int, int]]:
        chunk_rows = self._chunk_rows(chunk_budget, dims)
        hull_lo, hull_hi = _chunked_hull(items_a, chunk_rows)
        lo_b, hi_b = _chunked_hull(items_b, chunk_rows)
        hull_lo, hull_hi = np.minimum(hull_lo, lo_b), np.maximum(hull_hi, hi_b)
        tiles = (
            self.tiles_per_axis
            if self.tiles_per_axis is not None
            else _default_tiles(len(items_a) + len(items_b), dims)
        )
        sides, strides = kernels.tile_layout(hull_lo, hull_hi, tiles)
        tile_count = tiles**dims
        rep_bytes = _replica_bytes(dims)

        # Pass 1: per-tile replica histogram, in bounded chunks.
        histogram = np.zeros(tile_count, dtype=np.int64)
        replicas = 0
        for items in (items_a, items_b):
            for chunk in _chunks(items, chunk_rows):
                _, boxes = kernels.pack_items(chunk)
                with self.budget.reserving(boxes.nbytes, force=True):
                    _, keys = kernels._tile_replicas(boxes, hull_lo, sides, strides, tiles)
                    np.add.at(histogram, keys, 1)
                    replicas += keys.shape[0]
        counters.cells_probed += replicas

        total_bytes = replicas * rep_bytes
        if chunk_budget is None or total_bytes <= chunk_budget:
            # Everything fits in one partition: merge in memory, no spill.
            run_of_tile = np.zeros(tile_count, dtype=np.int64)
            runs = 1
        else:
            # Contiguous tile ranges whose replica bytes fit the chunk
            # budget; a single over-budget tile becomes its own run.
            prefix = np.cumsum(histogram * rep_bytes) - histogram * rep_bytes
            run_of_tile = prefix // chunk_budget
            runs = int(run_of_tile[-1]) + 1 if tile_count else 1

        # Pass 2: gather replicas per run; spill when there is > 1 run.
        segments_a: list[list[tuple[SpillHandle, SpillHandle, SpillHandle]]]
        segments_a = [[] for _ in range(runs)]
        segments_b = [[] for _ in range(runs)]
        resident_a: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]]
        resident_a = [[] for _ in range(runs)]
        resident_b = [[] for _ in range(runs)]
        spilling = runs > 1
        # Every handle this join creates, so the finally can release them
        # even when the merge dies mid-run on a *session-shared* manager
        # (a private manager is torn down wholesale by the caller).
        all_handles: list[SpillHandle] = []
        try:
            for items, segments, resident in (
                (items_a, segments_a, resident_a),
                (items_b, segments_b, resident_b),
            ):
                for chunk in _chunks(items, chunk_rows):
                    eids, boxes = kernels.pack_items(chunk)
                    with self.budget.reserving(2 * boxes.nbytes, force=True):
                        rows, keys = kernels._tile_replicas(boxes, hull_lo, sides, strides, tiles)
                        run_ids = run_of_tile[keys]
                        order = np.argsort(run_ids, kind="stable")
                        rows, keys, run_ids = rows[order], keys[order], run_ids[order]
                        uniq_runs, starts = np.unique(run_ids, return_index=True)
                        edges = np.append(starts, run_ids.shape[0])
                        for run, seg_lo, seg_hi in zip(uniq_runs.tolist(), edges[:-1], edges[1:]):
                            sl = slice(seg_lo, seg_hi)
                            seg = (eids[rows[sl]], boxes[rows[sl]], keys[sl])
                            if spilling:
                                handles = tuple(
                                    spill.spill(arr, tag=self.name) for arr in seg
                                )
                                all_handles.extend(handles)
                                segments[run].append(handles)
                            else:
                                resident[run].append(seg)

            # Pass 3: merge runs one at a time.
            out_a: list[np.ndarray] = []
            out_b: list[np.ndarray] = []
            for run in range(runs):
                side_arrays = []
                run_bytes = 0
                for segments, resident in ((segments_a, resident_a), (segments_b, resident_b)):
                    if spilling:
                        parts = [
                            tuple(spill.read(handle) for handle in seg) for seg in segments[run]
                        ]
                        # Prompt frees let later runs reuse the page slots.
                        for seg in segments[run]:
                            for handle in seg:
                                spill.free(handle)
                    else:
                        parts = resident[run]
                    side_arrays.append(_concat_segments(parts, dims))
                    run_bytes += sum(arr.nbytes for arr in side_arrays[-1])
                (eids_ra, boxes_ra, keys_ra), (eids_rb, boxes_rb, keys_rb) = side_arrays
                if eids_ra.shape[0] == 0 or eids_rb.shape[0] == 0:
                    continue
                with self.budget.reserving(run_bytes, force=True):
                    slab = self._slab_pairs(chunk_budget, dims)
                    for eids_r, boxes_r, keys_r in side_arrays:
                        order = np.argsort(keys_r, kind="stable")
                        eids_r[:], boxes_r[:], keys_r[:] = (
                            eids_r[order],
                            boxes_r[order],
                            keys_r[order],
                        )
                    ids_a, ids_b = kernels.replica_tile_pairs(
                        eids_ra, boxes_ra, keys_ra,
                        eids_rb, boxes_rb, keys_rb,
                        hull_lo, sides, strides, tiles, counters, slab_pairs=slab,
                    )
                    out_a.append(ids_a)
                    out_b.append(ids_b)
        finally:
            for handle in all_handles:  # free() is idempotent
                spill.free(handle)

        if not out_a:
            return []
        all_a = np.concatenate(out_a)
        all_b = np.concatenate(out_b)
        return list(zip(all_a.tolist(), all_b.tolist()))

    # -- sizing ---------------------------------------------------------------

    def _chunk_budget(self) -> int | None:
        """Per-phase byte allowance: a quarter of the budget (one run being
        gathered/merged + input chunk + kernel temporaries + slack)."""
        if self.budget.limit is None:
            return None
        return max(self.budget.limit // 4, MIN_CHUNK_BYTES)

    def _chunk_rows(self, chunk_budget: int | None, dims: int) -> int:
        if chunk_budget is None:
            return 1 << 30
        return max(chunk_budget // _replica_bytes(dims), 256)

    def _slab_pairs(self, chunk_budget: int | None, dims: int) -> int:
        if chunk_budget is None:
            return kernels._SLAB_PAIRS
        # A materialized candidate pair costs two gathered boxes plus the
        # overlap corners and index arrays.
        pair_bytes = 6 * dims * 8 + 4 * 8
        return min(kernels._SLAB_PAIRS, max(chunk_budget // pair_bytes, 1 << 12))


def _chunks(items: Sequence[Item], chunk_rows: int):
    for start in range(0, len(items), chunk_rows):
        yield items[start : start + chunk_rows]


def _chunked_hull(items: Sequence[Item], chunk_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Dataset hull corners computed in bounded packing chunks."""
    lo: np.ndarray | None = None
    hi: np.ndarray | None = None
    for chunk in _chunks(items, chunk_rows):
        _, boxes = kernels.pack_items(chunk)
        chunk_lo = boxes[:, 0, :].min(axis=0)
        chunk_hi = boxes[:, 1, :].max(axis=0)
        lo = chunk_lo if lo is None else np.minimum(lo, chunk_lo)
        hi = chunk_hi if hi is None else np.maximum(hi, chunk_hi)
    assert lo is not None and hi is not None
    return lo, hi


def _concat_segments(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]], dims: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, 2, dims), dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    if len(parts) == 1:
        return parts[0]
    return tuple(np.concatenate(field) for field in zip(*parts))  # type: ignore[return-value]
