"""External PBSM: the spatial join whose working set obeys a memory budget.

``pbsm_spill`` is the out-of-core member of
:data:`~repro.joins.strategies.JOIN_REGISTRY`.  It is the same Partition
Based Spatial-Merge as the in-memory ``pbsm`` strategy — identical tiling,
identical reference-point dedup, the same merge kernel family — but its
execution is staged so no phase materializes more than (a quarter of) the
session's :class:`~repro.exec.budget.MemoryBudget`:

1. **Histogram pass** — inputs are packed in bounded row chunks and each
   chunk's tile replicas are only *counted*, producing the per-tile replica
   histogram;
2. **Partition pass** — contiguous tile ranges are grouped into *runs* whose
   replica bytes fit the chunk budget, and a second bounded pass gathers each
   chunk's replicas and spills them per run through the
   :class:`~repro.exec.spill.SpillManager` (typed ``(eids, boxes, keys)``
   segments over the real on-disk page store);
3. **Merge pass** — runs stream back one at a time as zero-copy mapped
   views; each is key-sorted and pushed through
   :func:`repro.joins.kernels.replica_tile_pairs`, whose global
   reference-point dedup guarantees that a pair replicated across tiles
   *and* runs is still reported exactly once.

Because a tile lives in exactly one run and the dedup rule is global, the
runs are **independent**: merging them in any process, in any order, yields
disjoint pair sets whose union is the exact nested-loop result.  That is
what :meth:`SpillPBSMJoin.plan_tile_runs` exposes — the
:class:`~repro.joins.session.ShardedJoinExecutor` dispatches each run as a
bundle of picklable :class:`~repro.exec.spill.MappedRun` descriptors to pool
workers, which map the spill file read-only and run the same
:func:`merge_run_arrays` the inline path uses (``shard_protocol =
"tile_runs"``).  The strategy is ``forkable`` because shard workers never
touch the parent's file descriptors — they open their own read-only mapping.

When the whole working set fits the budget (or no budget is given) the
strategy degrades gracefully to a single in-memory run with zero spill
traffic, and the sharded executor runs it inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exec.budget import MemoryBudget
from repro.exec.spill import MappedRun, SpillHandle, SpillManager
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins import kernels
from repro.joins.strategies import JoinStrategy, _default_tiles, register
from repro.obs import span as _span

#: Below this, chunking is all overhead: the partition passes never shrink
#: their row chunks past it even under tiny budgets.
MIN_CHUNK_BYTES = 1 << 16


def _replica_bytes(dims: int) -> int:
    """Spilled bytes per replica: box + eid + tile key."""
    return 2 * dims * 8 + 16


def spill_page_size(chunk_budget: int | None) -> int:
    """Spill page size matched to the partition scale.

    Segments are roughly ``chunk_budget``-sized; pages much larger than a
    segment waste whole slots per spilled array (every segment spills three
    typed arrays), pages much smaller multiply Python-level page loops.
    ~1/16 of the chunk budget, clamped to [16 KiB, 1 MiB] and rounded down
    to a 4 KiB multiple (so zero-copy float64 views over page-aligned
    offsets stay 8-byte aligned), keeps per-segment slot waste under ~20%
    without ballooning the page count.
    """
    if chunk_budget is None:
        return 1 << 20
    return max(1 << 14, min(1 << 20, chunk_budget // 16)) & ~0xFFF


# -- the shared merge ----------------------------------------------------------

#: One gathered segment: ``(eids, boxes, keys)`` replica arrays.
Segment = tuple[np.ndarray, np.ndarray, np.ndarray]
#: One spilled segment: the same triple as :class:`SpillHandle`\ s.
SegmentHandles = tuple[SpillHandle, SpillHandle, SpillHandle]
#: One exported segment: the same triple as :class:`MappedRun` descriptors.
SegmentRuns = tuple[MappedRun, MappedRun, MappedRun]
#: One dispatchable tile-run task: the layout plus both sides' descriptors.
TileRunTask = tuple["TileRunLayout", list[SegmentRuns], list[SegmentRuns]]


@dataclass(frozen=True)
class TileRunLayout:
    """The global tiling a run merge needs besides the replica arrays.

    Picklable and small (three tiny arrays plus scalars): the parent
    computes it once in the histogram pass and every merge — inline or in a
    pool worker — shares it, which is what keeps the reference-point dedup
    global across runs.
    """

    hull_lo: np.ndarray
    sides: np.ndarray
    strides: np.ndarray
    tiles: int
    dims: int
    slab_pairs: int


def concat_segments(parts: list[Segment], dims: int) -> Segment:
    """Concatenate gathered segments fieldwise (empty-safe)."""
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, 2, dims), dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    if len(parts) == 1:
        return parts[0]
    return tuple(np.concatenate(field) for field in zip(*parts))  # type: ignore[return-value]


def merge_run_arrays(
    layout: TileRunLayout, side_a: Segment, side_b: Segment, counters: Counters
) -> tuple[np.ndarray, np.ndarray]:
    """Merge one run's replica arrays into result id pairs.

    This is the single merge implementation shared by the inline pass-3 loop
    and the pool workers' ``merge_run_task`` — same stable key sort, same
    kernel, so sharded output is bit-identical to inline.  Sorting rebinds
    through fancy indexing (a copy) rather than assigning in place, so the
    inputs may be read-only zero-copy views over the spill file.
    """
    eids_ra, boxes_ra, keys_ra = side_a
    eids_rb, boxes_rb, keys_rb = side_b
    if eids_ra.shape[0] == 0 or eids_rb.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order_a = np.argsort(keys_ra, kind="stable")
    eids_ra, boxes_ra, keys_ra = eids_ra[order_a], boxes_ra[order_a], keys_ra[order_a]
    order_b = np.argsort(keys_rb, kind="stable")
    eids_rb, boxes_rb, keys_rb = eids_rb[order_b], boxes_rb[order_b], keys_rb[order_b]
    return kernels.replica_tile_pairs(
        eids_ra, boxes_ra, keys_ra,
        eids_rb, boxes_rb, keys_rb,
        layout.hull_lo, layout.sides, layout.strides, layout.tiles,
        counters, slab_pairs=layout.slab_pairs,
    )


# -- the sharding plan ---------------------------------------------------------


class SpillPlan:
    """Parent-side result of the partition passes: spilled per-run segments.

    The plan owns the spill handles (and the spill manager itself when the
    strategy created a private one): callers dispatch :meth:`run_tasks`,
    collect every worker result, and only then :meth:`release` — so the
    descriptors stay valid for the whole merge, including a pool
    crash-retry.
    """

    def __init__(
        self,
        layout: TileRunLayout,
        runs: int,
        segments_a: list[list[SegmentHandles]],
        segments_b: list[list[SegmentHandles]],
        spill: SpillManager,
        handles: list[SpillHandle],
        owns_spill: bool,
    ) -> None:
        self.layout = layout
        self.runs = runs
        self.segments_a = segments_a
        self.segments_b = segments_b
        self.spill = spill
        self._handles = handles
        self._owns_spill = owns_spill
        self.released = False

    def run_tasks(self) -> list[TileRunTask]:
        """One dispatchable task per run, with both sides' segments exported
        as :class:`~repro.exec.spill.MappedRun` descriptor triples."""
        describe = self.spill.describe
        return [
            (
                self.layout,
                [tuple(describe(h) for h in seg) for seg in self.segments_a[run]],
                [tuple(describe(h) for h in seg) for seg in self.segments_b[run]],
            )
            for run in range(self.runs)
        ]

    def merge_inline(self, run: int, counters: Counters) -> tuple[np.ndarray, np.ndarray]:
        """Merge one run in-process (the no-pool fallback)."""
        sides = []
        for segments in (self.segments_a, self.segments_b):
            parts = [
                tuple(self.spill.read(handle) for handle in seg)
                for seg in segments[run]
            ]
            sides.append(concat_segments(parts, self.layout.dims))
        return merge_run_arrays(self.layout, sides[0], sides[1], counters)

    def release(self) -> None:
        """Free every spilled segment; close a private manager.  Idempotent —
        callers run this in a ``finally``."""
        if self.released:
            return
        self.released = True
        for handle in self._handles:
            self.spill.free(handle)
        if self._owns_spill:
            self.spill.close()


# -- the strategy --------------------------------------------------------------


@register
class SpillPBSMJoin(JoinStrategy):
    """PBSM with budget-bounded phases and spill-to-disk partitions.

    Parameters
    ----------
    budget:
        A :class:`~repro.exec.budget.MemoryBudget`, raw byte limit, or
        ``None`` (unlimited — runs as one in-memory partition, no spill).
        Each phase holds at most ~``limit / 4`` bytes of arrays: one run
        being gathered or merged, plus the kernels' own slab temporaries.
    tiles_per_axis:
        Tiling override (default: the same heuristic as ``pbsm``).
    spill:
        A shared :class:`~repro.exec.spill.SpillManager` (the session
        passes its own, so spill files live until ``session.close()``).
        When omitted, a private manager is created per join call and torn
        down in a ``finally`` — an error mid-join leaves no files behind.
    spill_dir:
        Directory for the private manager's spill file (ignored when
        ``spill`` is supplied).
    """

    name = "pbsm_spill"
    # Shardable — but never by forking the whole strategy into workers: the
    # tile_runs protocol below partitions in the parent and ships workers
    # read-only MappedRun descriptors, so no spill file descriptor is ever
    # shared across processes.
    forkable = True
    #: The sharded executor's contract: partition in the parent with
    #: :meth:`plan_tile_runs`, merge runs in pool workers via
    #: ``repro.serving.worker.merge_run_task``.  Generic element-range
    #: sharding (pool or fork) must not be applied to this strategy.
    shard_protocol = "tile_runs"

    def __init__(
        self,
        budget: MemoryBudget | int | None = None,
        tiles_per_axis: int | None = None,
        spill: SpillManager | None = None,
        spill_dir: str | None = None,
    ) -> None:
        self.budget = MemoryBudget.coerce(budget)
        self.tiles_per_axis = tiles_per_axis
        self.spill = spill
        self.spill_dir = spill_dir

    # -- the join -------------------------------------------------------------

    def join(
        self, items_a: Sequence[Item], items_b: Sequence[Item], counters: Counters
    ) -> list[tuple[int, int]]:
        if not items_a or not items_b:
            return []
        dims = items_a[0][1].dims
        chunk_budget = self._chunk_budget()
        owns_spill = self.spill is None
        spill = (
            self.spill
            if self.spill is not None
            else SpillManager(
                dir=self.spill_dir,
                page_size=spill_page_size(chunk_budget),
                counters=counters,
            )
        )
        try:
            return self._join_staged(items_a, items_b, dims, chunk_budget, spill, counters)
        finally:
            if owns_spill:
                spill.close()

    def plan_tile_runs(
        self, items_a: Sequence[Item], items_b: Sequence[Item], counters: Counters
    ) -> SpillPlan | None:
        """Partition for sharded merging; ``None`` when sharding is moot.

        Runs passes 1–2 (histogram + gather/spill) in the calling process
        and returns a :class:`SpillPlan` whose runs are independent merge
        units.  Returns ``None`` for joins that would not spill (no budget,
        or a working set that fits one run) — the executor then runs the
        strategy inline, which is both correct and faster for those cases.
        """
        if not items_a or not items_b:
            return None
        chunk_budget = self._chunk_budget()
        if chunk_budget is None:
            return None
        dims = items_a[0][1].dims
        owns_spill = self.spill is None
        spill = (
            self.spill
            if self.spill is not None
            else SpillManager(
                dir=self.spill_dir,
                page_size=spill_page_size(chunk_budget),
                counters=counters,
            )
        )
        handles: list[SpillHandle] = []
        try:
            with _span(
                "join.spill.partition",
                counters=counters,
                size_a=len(items_a),
                size_b=len(items_b),
            ) as partition_span:
                chunk_rows = self._chunk_rows(chunk_budget, dims)
                layout, histogram, replicas = self._layout_and_histogram(
                    items_a, items_b, dims, chunk_budget, chunk_rows, counters
                )
                runs, run_of_tile = self._partition_runs(
                    histogram, replicas, dims, chunk_budget
                )
                partition_span.set_attr("runs", runs)
                if runs < 2:
                    if owns_spill:
                        spill.close()
                    return None
                segments_a, segments_b = self._gather_segments(
                    items_a, items_b, layout, run_of_tile, runs, chunk_rows,
                    spill, handles, spilling=True,
                )
            return SpillPlan(
                layout, runs, segments_a, segments_b, spill, handles, owns_spill
            )
        except BaseException:
            for handle in handles:
                spill.free(handle)
            if owns_spill:
                spill.close()
            raise

    def _join_staged(
        self,
        items_a: Sequence[Item],
        items_b: Sequence[Item],
        dims: int,
        chunk_budget: int | None,
        spill: SpillManager,
        counters: Counters,
    ) -> list[tuple[int, int]]:
        chunk_rows = self._chunk_rows(chunk_budget, dims)

        with _span(
            "join.spill.partition",
            counters=counters,
            size_a=len(items_a),
            size_b=len(items_b),
        ) as partition_span:
            # Pass 1: global tiling + per-tile replica histogram.
            layout, histogram, replicas = self._layout_and_histogram(
                items_a, items_b, dims, chunk_budget, chunk_rows, counters
            )
            runs, run_of_tile = self._partition_runs(
                histogram, replicas, dims, chunk_budget
            )
            partition_span.set_attr("runs", runs)

            # Pass 2: gather replicas per run; spill when there is > 1 run.
            spilling = runs > 1
        # Every handle this join creates, so the finally can release them
        # even when the merge dies mid-run on a *session-shared* manager
        # (a private manager is torn down wholesale by the caller).
        all_handles: list[SpillHandle] = []
        try:
            segments_a, segments_b = self._gather_segments(
                items_a, items_b, layout, run_of_tile, runs, chunk_rows,
                spill, all_handles, spilling,
            )

            # Pass 3: merge runs one at a time.
            out_a: list[np.ndarray] = []
            out_b: list[np.ndarray] = []
            for run in range(runs):
                with _span(
                    "join.spill.merge", counters=counters, run=run
                ) as merge_span:
                    side_arrays: list[Segment] = []
                    run_bytes = 0
                    for segments in (segments_a, segments_b):
                        if spilling:
                            parts = [
                                tuple(spill.read(handle) for handle in seg)
                                for seg in segments[run]
                            ]
                        else:
                            parts = segments[run]
                        side_arrays.append(concat_segments(parts, dims))
                        run_bytes += sum(arr.nbytes for arr in side_arrays[-1])
                    with self.budget.reserving(run_bytes, force=True):
                        ids_a, ids_b = merge_run_arrays(
                            layout, side_arrays[0], side_arrays[1], counters
                        )
                    merge_span.set_attr("pairs", int(ids_a.shape[0]))
                # merge_run_arrays' sorts copied out of any zero-copy views,
                # so the run's pages can be released for slot reuse now.
                if spilling:
                    for segments in (segments_a, segments_b):
                        for seg in segments[run]:
                            for handle in seg:
                                spill.free(handle)
                if ids_a.shape[0]:
                    out_a.append(ids_a)
                    out_b.append(ids_b)
        finally:
            for handle in all_handles:  # free() is idempotent
                spill.free(handle)

        if not out_a:
            return []
        all_a = np.concatenate(out_a)
        all_b = np.concatenate(out_b)
        return list(zip(all_a.tolist(), all_b.tolist()))

    # -- staged passes ---------------------------------------------------------

    def _layout_and_histogram(
        self,
        items_a: Sequence[Item],
        items_b: Sequence[Item],
        dims: int,
        chunk_budget: int | None,
        chunk_rows: int,
        counters: Counters,
    ) -> tuple[TileRunLayout, np.ndarray, int]:
        """Pass 1: the global tiling plus the per-tile replica histogram."""
        hull_lo, hull_hi = _chunked_hull(items_a, chunk_rows)
        lo_b, hi_b = _chunked_hull(items_b, chunk_rows)
        hull_lo, hull_hi = np.minimum(hull_lo, lo_b), np.maximum(hull_hi, hi_b)
        tiles = (
            self.tiles_per_axis
            if self.tiles_per_axis is not None
            else _default_tiles(len(items_a) + len(items_b), dims)
        )
        sides, strides = kernels.tile_layout(hull_lo, hull_hi, tiles)
        tile_count = tiles**dims

        histogram = np.zeros(tile_count, dtype=np.int64)
        replicas = 0
        for items in (items_a, items_b):
            for chunk in _chunks(items, chunk_rows):
                _, boxes = kernels.pack_items(chunk)
                with self.budget.reserving(boxes.nbytes, force=True):
                    _, keys = kernels._tile_replicas(boxes, hull_lo, sides, strides, tiles)
                    np.add.at(histogram, keys, 1)
                    replicas += keys.shape[0]
        counters.cells_probed += replicas
        layout = TileRunLayout(
            hull_lo=hull_lo,
            sides=sides,
            strides=strides,
            tiles=tiles,
            dims=dims,
            slab_pairs=self._slab_pairs(chunk_budget, dims),
        )
        return layout, histogram, replicas

    def _partition_runs(
        self, histogram: np.ndarray, replicas: int, dims: int, chunk_budget: int | None
    ) -> tuple[int, np.ndarray]:
        """Group contiguous tile ranges into budget-sized runs."""
        tile_count = histogram.shape[0]
        rep_bytes = _replica_bytes(dims)
        total_bytes = replicas * rep_bytes
        if chunk_budget is None or total_bytes <= chunk_budget:
            # Everything fits in one partition: merge in memory, no spill.
            return 1, np.zeros(tile_count, dtype=np.int64)
        # Contiguous tile ranges whose replica bytes fit the chunk budget;
        # a single over-budget tile becomes its own run.
        prefix = np.cumsum(histogram * rep_bytes) - histogram * rep_bytes
        run_of_tile = prefix // chunk_budget
        runs = int(run_of_tile[-1]) + 1 if tile_count else 1
        return runs, run_of_tile

    def _gather_segments(
        self,
        items_a: Sequence[Item],
        items_b: Sequence[Item],
        layout: TileRunLayout,
        run_of_tile: np.ndarray,
        runs: int,
        chunk_rows: int,
        spill: SpillManager,
        handles: list[SpillHandle],
        spilling: bool,
    ) -> tuple[list[list], list[list]]:
        """Pass 2: gather replicas per run in bounded chunks.

        Returns ``(segments_a, segments_b)``; each run's list holds
        ``(eids, boxes, keys)`` triples of :class:`SpillHandle`\\ s when
        ``spilling`` else of resident arrays.  Every created handle is also
        appended to ``handles`` so any caller's error path can release them.
        """
        segments_a: list[list] = [[] for _ in range(runs)]
        segments_b: list[list] = [[] for _ in range(runs)]
        for items, segments in ((items_a, segments_a), (items_b, segments_b)):
            for chunk in _chunks(items, chunk_rows):
                eids, boxes = kernels.pack_items(chunk)
                with self.budget.reserving(2 * boxes.nbytes, force=True):
                    rows, keys = kernels._tile_replicas(
                        boxes, layout.hull_lo, layout.sides, layout.strides, layout.tiles
                    )
                    run_ids = run_of_tile[keys]
                    order = np.argsort(run_ids, kind="stable")
                    rows, keys, run_ids = rows[order], keys[order], run_ids[order]
                    uniq_runs, starts = np.unique(run_ids, return_index=True)
                    edges = np.append(starts, run_ids.shape[0])
                    for run, seg_lo, seg_hi in zip(uniq_runs.tolist(), edges[:-1], edges[1:]):
                        sl = slice(seg_lo, seg_hi)
                        seg = (eids[rows[sl]], boxes[rows[sl]], keys[sl])
                        if spilling:
                            spilled = tuple(
                                spill.spill(arr, tag=self.name) for arr in seg
                            )
                            handles.extend(spilled)
                            segments[run].append(spilled)
                        else:
                            segments[run].append(seg)
        return segments_a, segments_b

    # -- sizing ---------------------------------------------------------------

    def _chunk_budget(self) -> int | None:
        """Per-phase byte allowance: a quarter of the budget (one run being
        gathered/merged + input chunk + kernel temporaries + slack)."""
        if self.budget.limit is None:
            return None
        return max(self.budget.limit // 4, MIN_CHUNK_BYTES)

    def _chunk_rows(self, chunk_budget: int | None, dims: int) -> int:
        if chunk_budget is None:
            return 1 << 30
        return max(chunk_budget // _replica_bytes(dims), 256)

    def _slab_pairs(self, chunk_budget: int | None, dims: int) -> int:
        if chunk_budget is None:
            return kernels._SLAB_PAIRS
        # A materialized candidate pair costs two gathered boxes plus the
        # overlap corners and index arrays.
        pair_bytes = 6 * dims * 8 + 4 * 8
        return min(kernels._SLAB_PAIRS, max(chunk_budget // pair_bytes, 1 << 12))


def _chunks(items: Sequence[Item], chunk_rows: int):
    for start in range(0, len(items), chunk_rows):
        yield items[start : start + chunk_rows]


def _chunked_hull(items: Sequence[Item], chunk_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Dataset hull corners computed in bounded packing chunks."""
    lo: np.ndarray | None = None
    hi: np.ndarray | None = None
    for chunk in _chunks(items, chunk_rows):
        _, boxes = kernels.pack_items(chunk)
        chunk_lo = boxes[:, 0, :].min(axis=0)
        chunk_hi = boxes[:, 1, :].max(axis=0)
        lo = chunk_lo if lo is None else np.minimum(lo, chunk_lo)
        hi = chunk_hi if hi is None else np.maximum(hi, chunk_hi)
    assert lo is not None and hi is not None
    return lo, hi


# Kept for callers/tests that imported the private name.
_concat_segments = concat_segments
