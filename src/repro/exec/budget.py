"""The memory governor: a per-session byte budget with reservation accounting.

The paper's target workloads are "larger than memory by definition" — yet
every join strategy and bulk-load path in the library materialized its full
working set in RAM.  :class:`MemoryBudget` is the small contract that changes
that: components *reserve* bytes before materializing an array and *release*
them when the array dies, so

* planners (:class:`~repro.engine.session.QuerySession`,
  :class:`~repro.joins.session.JoinSession`) can route a workload to a
  spilling strategy when its estimated working set would not fit;
* spilling strategies (:mod:`repro.exec.external_join`,
  :mod:`repro.exec.external_build`) can size their partitions/runs so no
  phase holds more than the budget;
* telemetry (``high_water``) records how close execution actually came to
  the line, which ``join_report`` / ``session_report`` render next to the
  routing tables.

A budget is *advisory but honest*: ``try_reserve`` refuses (and counts a
denial) when the request does not fit, while ``reserve(force=True)`` admits
an unavoidable minimum (e.g. a single tile larger than the whole budget) and
counts an overcommit, so the telemetry never hides a breach.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class BudgetExceeded(RuntimeError):
    """Raised by :meth:`MemoryBudget.reserve` when a request cannot be
    admitted and the caller did not ask to force it."""


class MemoryBudget:
    """Byte-budget governor with reserve/release accounting.

    Parameters
    ----------
    limit_bytes:
        The budget in bytes.  ``None`` means unlimited — every reservation
        is admitted and only the telemetry (``in_use`` / ``high_water``)
        is maintained.

    Telemetry attributes: ``in_use`` (currently reserved bytes),
    ``high_water`` (max ``in_use`` ever), ``reservations`` (admitted
    reserve calls), ``denials`` (refused ``try_reserve`` calls) and
    ``overcommits`` (forced reservations past the limit).
    """

    def __init__(self, limit_bytes: int | None = None) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        self.limit = limit_bytes
        self.in_use = 0
        self.high_water = 0
        self.reservations = 0
        self.denials = 0
        self.overcommits = 0

    @classmethod
    def unlimited(cls) -> "MemoryBudget":
        """A budget that admits everything (telemetry only)."""
        return cls(None)

    @classmethod
    def coerce(cls, budget: "MemoryBudget | int | None") -> "MemoryBudget":
        """Accept a budget, a raw byte limit, or ``None`` (unlimited)."""
        if budget is None:
            return cls.unlimited()
        if isinstance(budget, MemoryBudget):
            return budget
        return cls(int(budget))

    @property
    def available(self) -> int | None:
        """Bytes still admissible, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(self.limit - self.in_use, 0)

    def fits(self, nbytes: int) -> bool:
        """Would a reservation of ``nbytes`` stay within the limit?"""
        return self.limit is None or self.in_use + nbytes <= self.limit

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` if they fit; count a denial otherwise."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not self.fits(nbytes):
            self.denials += 1
            return False
        self._admit(nbytes)
        return True

    def reserve(self, nbytes: int, *, force: bool = False) -> None:
        """Reserve ``nbytes`` or raise :class:`BudgetExceeded`.

        ``force=True`` admits the reservation even past the limit (counting
        an overcommit) — for the irreducible minimum a phase must hold.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not self.fits(nbytes):
            if not force:
                self.denials += 1
                raise BudgetExceeded(
                    f"reserving {nbytes} bytes would exceed the "
                    f"{self.limit}-byte budget ({self.in_use} in use)"
                )
            self.overcommits += 1
        self._admit(nbytes)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget (clamped at zero)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.in_use = max(self.in_use - nbytes, 0)

    @contextmanager
    def reserving(self, nbytes: int, *, force: bool = False) -> Iterator[None]:
        """Context manager: reserve on entry, release on exit."""
        self.reserve(nbytes, force=force)
        try:
            yield
        finally:
            self.release(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "unlimited" if self.limit is None else f"{self.limit:,}B"
        return (
            f"<MemoryBudget {limit} in_use={self.in_use:,} "
            f"high_water={self.high_water:,}>"
        )

    def _admit(self, nbytes: int) -> None:
        self.in_use += nbytes
        self.reservations += 1
        if self.in_use > self.high_water:
            self.high_water = self.in_use


# -- working-set estimators ------------------------------------------------------

#: Average box replication PBSM partitioning produces on the library's
#: synapse-scale workloads (boxes small relative to tiles); the planner's
#: routing estimate errs high on purpose.
PBSM_REPLICATION = 2.0


def item_array_bytes(n_items: int, dims: int = 3) -> int:
    """Bytes to hold ``n_items`` packed as (eid, box) arrays."""
    return n_items * (2 * dims * 8 + 8)


def pbsm_working_set_bytes(n_a: int, n_b: int, dims: int = 3) -> int:
    """Estimated peak array bytes of the in-memory vectorized PBSM join.

    Packed inputs, replica row/key arrays and the gathered per-tile boxes
    the merge phase materializes — the quantity
    :meth:`repro.joins.session.JoinSession.choose_strategy` compares against
    the session budget when deciding whether to route a spec to the
    spilling strategy.
    """
    packed = item_array_bytes(n_a, dims) + item_array_bytes(n_b, dims)
    replicas = int((n_a + n_b) * PBSM_REPLICATION) * (2 * dims * 8 + 3 * 8)
    return packed + replicas


def str_build_working_set_bytes(n_items: int, dims: int = 3) -> int:
    """Estimated peak array bytes of an in-memory STR bulk load (sort keys,
    entry arrays and the per-level regroupings)."""
    return 3 * item_array_bytes(n_items, dims)
