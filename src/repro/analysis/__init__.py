"""Result analysis and report formatting for the benchmark harness."""

from repro.analysis.reporting import format_table, percent_bar
from repro.analysis.breakdown import (
    coarse_breakdown_rows,
    disk_vs_memory_report,
    memory_breakdown_report,
)
from repro.analysis.session_report import (
    continuous_report,
    join_report,
    join_summary_rows,
    query_session_report,
    session_report,
    session_summary_rows,
)

__all__ = [
    "format_table",
    "percent_bar",
    "disk_vs_memory_report",
    "memory_breakdown_report",
    "coarse_breakdown_rows",
    "session_report",
    "continuous_report",
    "query_session_report",
    "join_report",
    "session_summary_rows",
    "join_summary_rows",
]
