"""Figure 2/3-style breakdown reports from counters and cost models."""

from __future__ import annotations

from repro.analysis.reporting import format_table, percent_bar
from repro.instrumentation.costmodel import (
    READING,
    DiskCostModel,
    MemoryCostModel,
    TimeBreakdown,
)
from repro.instrumentation.counters import Counters


def coarse_breakdown_rows(label: str, breakdown: TimeBreakdown) -> list[list[object]]:
    """Rows of (label, reading %, computing %, total s) — the Figure 2 axes."""
    coarse = breakdown.coarse()
    return [
        [
            label,
            coarse.percent(READING),
            coarse.percent("computations"),
            coarse.total(),
        ]
    ]


def disk_vs_memory_report(
    disk_counters: Counters,
    memory_counters: Counters,
    disk_model: DiskCostModel | None = None,
    memory_model: MemoryCostModel | None = None,
) -> str:
    """The Figure 2 comparison: reading vs computing, disk vs memory."""
    disk_model = disk_model if disk_model is not None else DiskCostModel()
    memory_model = memory_model if memory_model is not None else MemoryCostModel()
    disk = disk_model.breakdown(disk_counters).coarse()
    memory = memory_model.breakdown(memory_counters).coarse()
    rows = []
    for label, coarse in (("R-Tree on Disk", disk), ("R-Tree in Memory", memory)):
        rows.append(
            [
                label,
                coarse.percent(READING),
                coarse.percent("computations"),
                coarse.total(),
                percent_bar(coarse.fraction(READING), width=20),
            ]
        )
    return format_table(
        ["configuration", "reading %", "computing %", "modeled s", "reading share"],
        rows,
    )


def memory_breakdown_report(
    counters: Counters, model: MemoryCostModel | None = None
) -> str:
    """The Figure 3 four-way in-memory breakdown."""
    model = model if model is not None else MemoryCostModel()
    breakdown = model.breakdown(counters)
    rows = [
        [category, breakdown.percent(category), seconds]
        for category, seconds in breakdown.seconds.items()
    ]
    return format_table(["category", "% of time", "modeled s"], rows)
