"""Plain-text tables and bars for benchmark output.

The harness prints the same rows/series the paper's figures show; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a header rule.

    Numeric cells are right-aligned; floats are rendered with 4 significant
    digits unless already strings.
    """
    rendered: list[list[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str], numeric_row: Sequence[object] | None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric_row is not None and isinstance(numeric_row[i], (int, float)):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = [line(list(headers), None), line(["-" * w for w in widths], None)]
    for original, row in zip(rows, rendered):
        out.append(line(row, original))
    return "\n".join(out)


def percent_bar(fraction: float, width: int = 40) -> str:
    """``####....`` bar for a [0, 1] fraction."""
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(width * fraction))
    return "#" * filled + "." * (width - filled)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
