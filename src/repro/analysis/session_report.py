"""Telemetry reports for session workloads — queries *and* joins.

The query session records which executor answered each batch
(:class:`~repro.engine.session.SessionStats`); the join session records
which strategy and executor answered each spec plus the filter/refine
funnel (:class:`~repro.joins.spec.JoinStats`).  These helpers turn both
into the same plain-text tables the rest of the analysis layer emits, so
benchmarks (and capacity planning) can judge the planners' routing the way
the paper's figures judge the indexes.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, percent_bar
from repro.continuous.session import ContinuousSession
from repro.engine import QuerySession, SessionStats
from repro.joins.session import JoinSession
from repro.joins.spec import JoinStats
from repro.obs import Histogram, MetricsRegistry


def session_summary_rows(stats: SessionStats) -> list[list[object]]:
    """One row per executor: batches routed there plus the overall tallies."""
    return _routing_rows(stats.executor_runs)


def _routing_rows(runs: dict[str, int]) -> list[list[object]]:
    total_runs = sum(runs.values())
    rows: list[list[object]] = []
    for name, count in sorted(runs.items(), key=lambda kv: -kv[1]):
        share = count / total_runs if total_runs else 0.0
        rows.append([name, count, share * 100.0, percent_bar(share, width=20)])
    return rows


def _spill_line(
    tiles: int, written: int, read: int, high_water: int, chunks: int | None = None
) -> str | None:
    """The out-of-core funnel, rendered only when the governor saw action."""
    if not (tiles or written or read or high_water or chunks):
        return None
    parts = [
        f"spill: tiles={tiles:,}",
        f"written={written:,}B",
        f"read={read:,}B",
        f"budget-high-water={high_water:,}B",
    ]
    if chunks:
        parts.append(f"chunks={chunks:,}")
    return " ".join(parts)


def _mapped_line(views: int, mapped: int, tile_runs: int) -> str | None:
    """The zero-copy storage funnel, rendered once any read was served as a
    mapped view (or any mapped work unit went to a pool worker)."""
    if not (views or mapped or tile_runs):
        return None
    parts = [f"mapped: views={views:,}", f"bytes={mapped:,}B"]
    if tile_runs:
        parts.append(f"tile-runs={tile_runs:,}")
    return " ".join(parts)


def _approx_line(stats: SessionStats) -> str | None:
    """The approximate-kNN funnel, rendered once the planner has routed any
    batch through a defeatist kernel."""
    batch = stats.batch
    if not batch.approx_descents:
        return None
    per_query = batch.leaves_scanned / batch.approx_descents
    return (
        f"approx: descents={batch.approx_descents:,} "
        f"leaves-scanned={batch.leaves_scanned:,} ({per_query:.2f}/query) "
        f"recall-est>={batch.recall_estimate:.3f}"
    )


def _serving_line(
    stats: SessionStats | JoinStats,
    metrics: MetricsRegistry | None = None,
    prefix: str = "query",
) -> str | None:
    """The async serving-tier telemetry, rendered once an event-loop
    executor has attributed flushes to causes.

    Rendered from the session's metrics registry when one is supplied (the
    sessions mirror every serving stat there); the legacy stats fields are
    the fallback so snapshots merged from elsewhere still report.
    """
    if metrics is not None:
        head = "serving.flush.trigger."
        triggers = {
            name[len(head):]: int(metrics.value(name))
            for name in metrics.names()
            if name.startswith(head)
        }
        high_water = int(metrics.value(f"{prefix}.queue.high_water"))
        hist = metrics.get(f"{prefix}.flush.seconds")
        flush_wall = hist.total if isinstance(hist, Histogram) else 0.0
        if not triggers and not high_water:
            # A session that never rode the async tier mirrors nothing under
            # serving.*; fall through to the stats fields (merged snapshots).
            triggers = stats.flush_triggers
            high_water = stats.queue_high_water
            flush_wall = stats.flush_seconds
    else:
        triggers = stats.flush_triggers
        high_water = stats.queue_high_water
        flush_wall = stats.flush_seconds
    if not triggers and not high_water:
        return None
    causes = ",".join(
        f"{cause}:{count}" for cause, count in sorted(triggers.items())
    )
    return (
        f"serving: triggers={causes or '-'} "
        f"queue-high-water={high_water:,} "
        f"flush-wall={flush_wall:.3f}s"
    )


def query_session_report(session: QuerySession) -> str:
    """A formatted executor-mix + dedup summary for one query session."""
    stats = session.stats
    batch = stats.batch
    dedup_share = batch.deduplicated / batch.queries if batch.queries else 0.0
    header = (
        f"queries={batch.queries:,} submitted={stats.submitted:,} "
        f"flushes={stats.flushes:,} batches={batch.batches:,} "
        f"dedup={batch.deduplicated:,} ({dedup_share:.1%})"
    )
    spill = _spill_line(
        batch.tiles_spilled,
        batch.spill_bytes_written,
        batch.spill_bytes_read,
        batch.budget_high_water,
        batch.budget_chunks,
    )
    if spill is not None:
        header = f"{header}\n{spill}"
    mapped = _mapped_line(
        batch.zero_copy_reads, batch.mapped_bytes, batch.tile_runs_dispatched
    )
    if mapped is not None:
        header = f"{header}\n{mapped}"
    approx = _approx_line(stats)
    if approx is not None:
        header = f"{header}\n{approx}"
    serving = _serving_line(stats, getattr(session, "metrics", None), "query")
    if serving is not None:
        header = f"{header}\n{serving}"
    table = format_table(
        ["executor", "batches", "share %", "routing"],
        session_summary_rows(stats),
    )
    return f"{header}\n{table}"


def join_summary_rows(stats: JoinStats) -> list[list[object]]:
    """One row per join strategy: specs routed there, with routing bars."""
    return _routing_rows(stats.strategy_runs)


def join_report(session: JoinSession) -> str:
    """A formatted strategy/executor-mix + filter-funnel summary.

    The funnel line is the paper's filter/refine split in numbers: candidate
    pairs out of the filter, exact refinements run on them, result pairs,
    and the box ``comparisons`` the strategies charged.
    """
    stats = session.stats
    header = (
        f"joins={stats.joins:,} candidates={stats.candidates:,} "
        f"refined={stats.refined:,} pairs={stats.pairs:,} "
        f"comparisons={stats.comparisons:,}"
    )
    spill = _spill_line(
        stats.tiles_spilled,
        stats.spill_bytes_written,
        stats.spill_bytes_read,
        stats.budget_high_water,
    )
    if spill is not None:
        header = f"{header}\n{spill}"
    mapped = _mapped_line(
        stats.zero_copy_reads, stats.mapped_bytes, stats.tile_runs_dispatched
    )
    if mapped is not None:
        header = f"{header}\n{mapped}"
    serving = _serving_line(stats, getattr(session, "metrics", None), "join")
    if serving is not None:
        header = f"{header}\n{serving}"
    strategy_table = format_table(
        ["strategy", "joins", "share %", "routing"],
        join_summary_rows(stats),
    )
    executor_table = format_table(
        ["executor", "joins", "share %", "routing"],
        _routing_rows(stats.executor_runs),
    )
    return f"{header}\n{strategy_table}\n{executor_table}"


def continuous_report(session: ContinuousSession) -> str:
    """Policy-routing + delta-volume + safe-region summary for one
    continuous session — the maintenance planner's answer sheet.

    The routing table counts per-tick policy decisions (``resync`` rows are
    post-fault recoveries through the recompute oracle); the safe-region
    line splits results that provably survived ticks untouched from those
    whose region was violated and re-evaluated.
    """
    stats = session.stats
    counters = session.counters
    header = (
        f"ticks={stats.ticks:,} subscriptions={len(session.subscriptions):,} "
        f"updates={stats.updates:,} deltas={stats.deltas:,} "
        f"(empty={stats.empty_deltas:,})"
    )
    volume = (
        f"delta volume: results +{stats.results_added:,}/-{stats.results_removed:,} "
        f"pairs +{stats.pairs_added:,}/-{stats.pairs_removed:,}"
    )
    checks = counters.safe_region_hits + counters.safe_region_invalidations
    hit_share = counters.safe_region_hits / checks if checks else 0.0
    safe = (
        f"safe regions: hits={counters.safe_region_hits:,} "
        f"invalidations={counters.safe_region_invalidations:,} "
        f"({hit_share:.1%} held)"
    )
    lines = [header, volume, safe]
    if stats.faults or stats.resyncs:
        lines.append(f"faults={stats.faults:,} resyncs={stats.resyncs:,}")
    table = format_table(
        ["policy", "evaluations", "share %", "routing"],
        _routing_rows(stats.policy_routes),
    )
    return "\n".join(lines) + f"\n{table}"


def session_report(session: QuerySession | JoinSession | ContinuousSession) -> str:
    """Routing telemetry for any session kind, dispatched on type."""
    if isinstance(session, JoinSession):
        return join_report(session)
    if isinstance(session, ContinuousSession):
        return continuous_report(session)
    return query_session_report(session)
