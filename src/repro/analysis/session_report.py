"""Telemetry reports for :class:`~repro.engine.QuerySession` workloads.

The session records which executor answered each batch and the merged
kernel :class:`~repro.engine.batch.BatchStats`; these helpers turn that
into the same plain-text tables the rest of the analysis layer emits, so
benchmarks (and capacity planning) can judge the cost heuristic's routing
the way the paper's figures judge the indexes.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, percent_bar
from repro.engine import QuerySession, SessionStats


def session_summary_rows(stats: SessionStats) -> list[list[object]]:
    """One row per executor: batches routed there plus the overall tallies."""
    total_runs = sum(stats.executor_runs.values())
    rows: list[list[object]] = []
    for name, runs in sorted(stats.executor_runs.items(), key=lambda kv: -kv[1]):
        share = runs / total_runs if total_runs else 0.0
        rows.append([name, runs, share * 100.0, percent_bar(share, width=20)])
    return rows


def session_report(session: QuerySession) -> str:
    """A formatted executor-mix + dedup summary for one session."""
    stats = session.stats
    batch = stats.batch
    dedup_share = batch.deduplicated / batch.queries if batch.queries else 0.0
    header = (
        f"queries={batch.queries:,} submitted={stats.submitted:,} "
        f"flushes={stats.flushes:,} batches={batch.batches:,} "
        f"dedup={batch.deduplicated:,} ({dedup_share:.1%})"
    )
    table = format_table(
        ["executor", "batches", "share %", "routing"],
        session_summary_rows(stats),
    )
    return f"{header}\n{table}"
