"""The R+-tree (Sellis, Roussopoulos, Faloutsos 1987): overlap-free regions.

§3.2 names it among the R-tree extensions that attack overlap: "Numerous
extensions (Priority R-Tree, R*-Tree, R+-Tree, etc. ...) reduce the overlap
and hence improve performance, but the fundamental problem of overlap
remains."  The R+-tree removes *inner-node* overlap entirely by partitioning
space into disjoint regions and **replicating** elements that straddle region
boundaries — trading Figure 3's redundant tree descents for Figure 4-style
duplicated element tests, a trade-off the counters make directly visible
(zero overlapping sibling regions; ``replication_factor`` > 1).

Implementation: children of a node carry disjoint *region* boxes produced by
recursive axis cuts (widest axis, median of element lower bounds); an
element is stored in every leaf whose region its box intersects; queries
descend by region (a point crosses exactly one child) and deduplicate ids.
Deletion removes the element from every hosting leaf; regions are never
merged (classic R+ behaviour — the structure is periodically rebuilt
instead, which suits the paper's §4 economics).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16
_NODE_HEADER_BYTES = 16


class _RPlusNode:
    __slots__ = ("region", "children", "items")

    def __init__(self, region: AABB) -> None:
        self.region = region
        self.children: list["_RPlusNode"] | None = None
        self.items: list[tuple[int, AABB]] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class RPlusTree(SpatialIndex):
    """Overlap-free data-oriented tree with straddler replication.

    Parameters
    ----------
    max_entries:
        Leaf capacity before a region split.
    universe:
        Root region; derived (with margin) from the first bulk load when
        omitted, and grown by rebuild if an insert lands outside.
    """

    def __init__(
        self,
        max_entries: int = 16,
        universe: AABB | None = None,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        self._universe = universe
        self._root: _RPlusNode | None = _RPlusNode(universe) if universe else None
        self._boxes: dict[int, AABB] = {}
        self._replicas = 0

    # -- maintenance ---------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._boxes = dict(materialized)
        self._replicas = 0
        if not materialized:
            self._root = _RPlusNode(self._universe) if self._universe else None
            return
        if self._universe is None:
            hull = union_all(box for _, box in materialized)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        self._root = self._build(self._universe, materialized)

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        if self._universe is None:
            self._universe = box.expanded(max(box.margin() * 0.005, 1e-9))
            self._root = _RPlusNode(self._universe)
        if not self._universe.contains_box(box):
            self._grow_universe(box)
        self._boxes[eid] = box
        assert self._root is not None
        self._insert_into(self._root, eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        assert self._root is not None
        self._delete_from(self._root, eid, box)
        del self._boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        self.delete(eid, old_box)
        self.insert(eid, new_box)
        self.counters.updates += 1

    # -- queries --------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._root is None:
            return []
        counters = self.counters
        dims = box.dims
        seen: set[int] = set()
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                counters.bytes_touched += _NODE_HEADER_BYTES + len(node.items) * (
                    dims * _BOX_BYTES_PER_DIM + 8
                )
                for eid, elem_box in node.items:
                    if eid in seen:
                        continue
                    counters.elem_tests += 1
                    if elem_box.intersects(box):
                        seen.add(eid)
                        results.append(eid)
                continue
            assert node.children is not None
            for child in node.children:
                counters.node_tests += 1
                if child.region.intersects(box):
                    counters.pointer_follows += 1
                    stack.append(child)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or not self._boxes or self._root is None:
            return []
        counters = self.counters
        # (distance, kind, key, ref): nodes (kind 0) pop before elements
        # (kind 1) at equal distance, tied elements pop in id order — the
        # deterministic (distance, id) contract (see indexes/base.py).
        heap: list[tuple[float, int, int, object]] = [(0.0, 0, 0, self._root)]
        tiebreak = 1
        emitted: set[int] = set()
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                if ref not in emitted:
                    emitted.add(ref)  # type: ignore[arg-type]
                    results.append((dist, ref))  # type: ignore[arg-type]
                continue
            node: _RPlusNode = ref  # type: ignore[assignment]
            if node.is_leaf:
                for eid, elem_box in node.items:
                    if eid in emitted:
                        continue
                    counters.elem_tests += 1
                    heapq.heappush(
                        heap,
                        (elem_box.min_distance_to_point(point), 1, eid, eid),
                    )
                    counters.heap_ops += 1
                continue
            assert node.children is not None
            for child in node.children:
                counters.node_tests += 1
                heapq.heappush(
                    heap,
                    (child.region.min_distance_to_point(point), 0, tiebreak, child),
                )
                counters.heap_ops += 1
                tiebreak += 1
        return results

    def __len__(self) -> int:
        return len(self._boxes)

    # -- introspection ----------------------------------------------------------------

    @property
    def replication_factor(self) -> float:
        if not self._boxes:
            return 0.0
        return self._replicas / len(self._boxes)

    def max_sibling_overlap(self) -> float:
        """Largest pairwise overlap volume among sibling regions (must be 0
        up to shared faces — the R+ invariant the tests assert)."""
        worst = 0.0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            assert node.children is not None
            for i, a in enumerate(node.children):
                for b in node.children[i + 1 :]:
                    worst = max(worst, a.region.overlap_volume(b.region))
            stack.extend(node.children)
        return worst

    # -- internals -----------------------------------------------------------------------

    def _build(self, region: AABB, items: list[Item]) -> _RPlusNode:
        node = _RPlusNode(region)
        if len(items) <= self.max_entries:
            node.items = list(items)
            self._replicas += len(items)
            return node
        cut_axis, cut_value = _choose_cut(region, items)
        if cut_value is None:
            # Degenerate: all items identical along every axis — oversized leaf.
            node.items = list(items)
            self._replicas += len(items)
            return node
        low_region, high_region = _split_region(region, cut_axis, cut_value)
        low_items = [item for item in items if item[1].lo[cut_axis] < cut_value]
        high_items = [item for item in items if item[1].hi[cut_axis] > cut_value]
        on_cut = [
            item
            for item in items
            if item[1].lo[cut_axis] == cut_value and item[1].hi[cut_axis] == cut_value
        ]
        low_items += on_cut
        if not low_items or not high_items:
            node.items = list(items)
            self._replicas += len(items)
            return node
        node.children = [
            self._build(low_region, low_items),
            self._build(high_region, high_items),
        ]
        return node

    def _insert_into(self, node: _RPlusNode, eid: int, box: AABB) -> None:
        if node.is_leaf:
            node.items.append((eid, box))
            self._replicas += 1
            if len(node.items) > self.max_entries:
                self._split_leaf(node)
            return
        assert node.children is not None
        for child in node.children:
            if child.region.intersects(box):
                self._insert_into(child, eid, box)

    def _split_leaf(self, node: _RPlusNode) -> None:
        items = node.items
        cut_axis, cut_value = _choose_cut(node.region, items)
        if cut_value is None:
            return  # all identical: tolerate the oversized leaf
        low_region, high_region = _split_region(node.region, cut_axis, cut_value)
        low_items = [item for item in items if item[1].lo[cut_axis] < cut_value]
        high_items = [item for item in items if item[1].hi[cut_axis] > cut_value]
        on_cut = [
            item
            for item in items
            if item[1].lo[cut_axis] == cut_value and item[1].hi[cut_axis] == cut_value
        ]
        low_items += on_cut
        if not low_items or not high_items:
            return
        self._replicas += len(low_items) + len(high_items) - len(items)
        node.items = []
        low = _RPlusNode(low_region)
        low.items = low_items
        high = _RPlusNode(high_region)
        high.items = high_items
        node.children = [low, high]

    def _delete_from(self, node: _RPlusNode, eid: int, box: AABB) -> None:
        if node.is_leaf:
            before = len(node.items)
            node.items = [(e, b) for e, b in node.items if e != eid]
            self._replicas -= before - len(node.items)
            return
        assert node.children is not None
        for child in node.children:
            if child.region.intersects(box):
                self._delete_from(child, eid, box)

    def _grow_universe(self, box: AABB) -> None:
        items = list(self._boxes.items())
        hull = self._universe.union(box) if self._universe else box
        self._universe = hull.expanded(max(hull.margin() * 0.5, 1e-9))
        self._replicas = 0
        if items:
            self._root = self._build(self._universe, items)
        else:
            self._root = _RPlusNode(self._universe)


def _choose_cut(region: AABB, items: list[Item]) -> tuple[int, float | None]:
    """Widest axis with a median lower-bound cut strictly inside the region.

    Returns ``(axis, None)`` when no axis admits a separating cut (all
    element boxes identical along every axis).
    """
    dims = region.dims
    axes = sorted(range(dims), key=lambda a: region.hi[a] - region.lo[a], reverse=True)
    for axis in axes:
        values = sorted(box.lo[axis] for _, box in items)
        median = values[len(values) // 2]
        if region.lo[axis] < median < region.hi[axis] and values[0] < median:
            return axis, median
        # Fall back to the midpoint of distinct coordinates on this axis.
        distinct = sorted({v for v in values})
        for candidate in distinct:
            if region.lo[axis] < candidate < region.hi[axis]:
                return axis, candidate
    return axes[0], None


def _split_region(region: AABB, axis: int, value: float) -> tuple[AABB, AABB]:
    low_hi = list(region.hi)
    low_hi[axis] = value
    high_lo = list(region.lo)
    high_lo[axis] = value
    return AABB(region.lo, low_hi), AABB(high_lo, region.hi)
