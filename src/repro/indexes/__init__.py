"""Spatial indexes surveyed by the paper, implemented from scratch.

All indexes share the :class:`~repro.indexes.base.SpatialIndex` interface and
charge their primitive operations to a
:class:`~repro.instrumentation.Counters` object, so the benchmark harness can
reproduce the paper's time-breakdown figures from any of them.

Contents:

* :class:`~repro.indexes.linear_scan.LinearScan` — the no-index baseline of
  Section 4 ("using no index, i.e., a linear scan over the dataset, may be
  faster").
* :class:`~repro.indexes.rtree.RTree` — Guttman's dynamic R-tree with linear
  and quadratic node splits, plus STR bulk loading.
* :class:`~repro.indexes.rstar.RStarTree` — the R*-tree with forced
  reinsertion and margin-driven splits.
* :class:`~repro.indexes.disk_rtree.DiskRTree` — the same structure with
  nodes resident in the simulated page store behind an LRU buffer pool.
* :class:`~repro.indexes.crtree.CRTree` — the cache-conscious R-tree with
  quantized relative MBRs and cache-line-multiple nodes.
* :class:`~repro.indexes.kdtree.KDTree` — point access method.
* :class:`~repro.indexes.quadtree.QuadTree` /
  :class:`~repro.indexes.octree.Octree` — space-oriented partitioning with
  leaf-level replication for volumetric elements.
* :class:`~repro.indexes.loose_octree.LooseOctree` — replication-free variant
  with enlarged (loose) cells.
"""

from repro.indexes.base import Item, KNNResult, SpatialIndex
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree
from repro.indexes.rstar import RStarTree
from repro.indexes.bulkload import str_pack
from repro.indexes.hilbert import hilbert_index, hilbert_pack, hilbert_sort
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.crtree import CRTree
from repro.indexes.kdtree import KDTree
from repro.indexes.quadtree import QuadTree
from repro.indexes.octree import Octree
from repro.indexes.loose_octree import LooseOctree
from repro.indexes.rplus import RPlusTree

__all__ = [
    "Item",
    "KNNResult",
    "SpatialIndex",
    "LinearScan",
    "RTree",
    "RStarTree",
    "str_pack",
    "hilbert_index",
    "hilbert_pack",
    "hilbert_sort",
    "DiskRTree",
    "CRTree",
    "KDTree",
    "QuadTree",
    "Octree",
    "LooseOctree",
    "RPlusTree",
]
