"""The R*-tree (Beckmann et al. 1990): the paper's canonical "extension that
reduces overlap".

Three changes over Guttman's R-tree, each implemented here:

1. **Subtree choice** — at the level above the leaves, children are picked by
   least *overlap* enlargement (ties by area enlargement, then area), which is
   the mechanism that actually reduces the inner-node overlap Figure 3 blames
   for tree intersection tests.
2. **Margin-driven split** — the split axis minimizes the summed margins of
   candidate distributions; the distribution minimizes overlap, then area.
3. **Forced reinsertion** — on the first overflow per level per insertion,
   the 30 % of entries farthest from the node centre are removed and
   reinserted, deferring (and often avoiding) the split.
"""

from __future__ import annotations

from repro.geometry.aabb import AABB, union_all
from repro.indexes.rtree import Node, RTree

_REINSERT_FRACTION = 0.3


class RStarTree(RTree):
    """R*-tree; drop-in replacement for :class:`~repro.indexes.rtree.RTree`."""

    def __init__(self, max_entries: int = 16, min_entries: int | None = None, counters=None) -> None:
        super().__init__(
            max_entries=max_entries,
            min_entries=min_entries,
            split="quadratic",  # placeholder; _split is overridden below
            counters=counters,
        )
        self._overflow_seen_levels: set[int] = set()
        self._pending_reinserts: list[tuple[AABB, object, int]] = []

    # -- insertion with forced reinsertion -------------------------------------

    def insert(self, eid: int, box: AABB) -> None:
        self._overflow_seen_levels = set()
        super().insert(eid, box)
        self._drain_reinserts()

    def delete(self, eid: int, box: AABB) -> None:
        # Condensation reinserts orphans, which can overflow nodes and queue
        # forced reinsertions — those must be drained here too, or the queued
        # entries would silently drop out of the tree.
        self._overflow_seen_levels = set()
        super().delete(eid, box)
        self._drain_reinserts()

    def _drain_reinserts(self) -> None:
        while self._pending_reinserts:
            entry_box, ref, level = self._pending_reinserts.pop()
            self._insert_entry(entry_box, ref, target_level=level)

    def _handle_overflow(self, node: Node, level: int):
        is_root = node is self._root
        if is_root or level in self._overflow_seen_levels:
            sibling = self._split(node)
            self._node_count += 1
            return (node.mbr(), sibling)
        self._overflow_seen_levels.add(level)
        self._force_reinsert(node, level)
        return None

    def _force_reinsert(self, node: Node, level: int) -> None:
        """Remove the farthest ~30 % of entries and queue them for reinsertion."""
        center = node.mbr().center()
        count = max(1, int(len(node.entries) * _REINSERT_FRACTION))

        def distance(entry: tuple[AABB, object]) -> float:
            entry_center = entry[0].center()
            return sum((a - b) ** 2 for a, b in zip(entry_center, center))

        ordered = sorted(node.entries, key=distance)
        keep, evict = ordered[:-count], ordered[-count:]
        node.entries = keep
        # Entries of a node at `level` reference children at level-1 (or
        # elements for leaves), so their container level is `level` itself.
        for entry_box, ref in evict:
            self._pending_reinserts.append((entry_box, ref, level))

    # -- R* subtree choice -------------------------------------------------------

    def _choose_subtree(self, node: Node, box: AABB, level: int) -> int:
        children_are_leaves = not node.is_leaf and all(
            isinstance(child, Node) and child.is_leaf for _, child in node.entries
        )
        if not children_are_leaves:
            return super()._choose_subtree(node, box, level)
        best_index = 0
        best_key: tuple[float, float, float] | None = None
        boxes = [entry_box for entry_box, _ in node.entries]
        for i, entry_box in enumerate(boxes):
            grown = entry_box.union(box)
            overlap_delta = 0.0
            for j, other in enumerate(boxes):
                if j == i:
                    continue
                overlap_delta += grown.overlap_volume(other) - entry_box.overlap_volume(other)
            key = (overlap_delta, entry_box.enlargement(box), entry_box.volume())
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        return best_index

    # -- R* split -------------------------------------------------------------------

    def _split(self, node: Node) -> Node:
        group_a, group_b = _rstar_split(node.entries, self.min_entries, self.max_entries)
        node.entries = group_a
        return Node(is_leaf=node.is_leaf, entries=group_b)


def _rstar_split(
    entries: list[tuple[AABB, object]], min_entries: int, max_entries: int
) -> tuple[list[tuple[AABB, object]], list[tuple[AABB, object]]]:
    """Axis by minimum margin sum; distribution by minimum overlap then area."""
    dims = entries[0][0].dims
    m = min_entries
    best_axis = 0
    best_axis_margin = float("inf")
    best_axis_orderings: list[list[tuple[AABB, object]]] = []

    for axis in range(dims):
        by_lo = sorted(entries, key=lambda e: (e[0].lo[axis], e[0].hi[axis]))
        by_hi = sorted(entries, key=lambda e: (e[0].hi[axis], e[0].lo[axis]))
        margin_sum = 0.0
        for ordering in (by_lo, by_hi):
            for split_at in range(m, len(entries) - m + 1):
                left = union_all(box for box, _ in ordering[:split_at])
                right = union_all(box for box, _ in ordering[split_at:])
                margin_sum += left.margin() + right.margin()
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis
            best_axis_orderings = [by_lo, by_hi]

    best_key: tuple[float, float] | None = None
    best_groups: tuple[list, list] | None = None
    for ordering in best_axis_orderings:
        for split_at in range(m, len(entries) - m + 1):
            left_entries = ordering[:split_at]
            right_entries = ordering[split_at:]
            left = union_all(box for box, _ in left_entries)
            right = union_all(box for box, _ in right_entries)
            key = (left.overlap_volume(right), left.volume() + right.volume())
            if best_key is None or key < best_key:
                best_key = key
                best_groups = (list(left_entries), list(right_entries))
    assert best_groups is not None  # len(entries) > max_entries >= 2m guarantees candidates
    return best_groups
