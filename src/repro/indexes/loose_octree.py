"""The loose octree: replication-free space partitioning via enlarged cells.

The paper: "Other extensions avoid replication by increasing the size of the
partitions (e.g., loose Octree).  Bigger partitions for space-oriented
approaches, however, introduce substantial overlap and therefore increase
unnecessary child traversals (and comparisons) similar to the R-Tree."

Each element is stored in exactly **one** cell: the level is chosen so the
cell is the smallest whose size (times the looseness factor) still covers the
element, and the cell within the level is addressed by the element's centre.
Because cells are loose (each cell's effective box is its strict box scaled by
``looseness``), a query must probe a halo of neighbouring cells per level —
the extra comparisons the paper predicts, which the counters expose.

The implementation is hash-addressed (level, i, j, k) → bucket, which also
makes single-element updates O(1) — a property the massive-update benchmarks
exploit for comparison.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16


class LooseOctree(SpatialIndex):
    """Hash-addressed loose octree (works for any ``dims``, default 3).

    Parameters
    ----------
    universe:
        Root cell at level 0.  Required before the first insert unless
        ``bulk_load`` derives it from the data.
    looseness:
        Cell enlargement factor k (classically 2.0): a level-L cell of strict
        side ``s`` accepts elements up to size ``k·s − s`` beyond its bounds
        and is probed with a halo of ``k/2`` cells.
    max_level:
        Deepest level used (cells shrink by 2 per level).
    """

    def __init__(
        self,
        universe: AABB | None = None,
        looseness: float = 2.0,
        max_level: int = 10,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if looseness < 1.0:
            raise ValueError(f"looseness must be >= 1, got {looseness}")
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.looseness = looseness
        self.max_level = max_level
        self._universe = universe
        self._cells: dict[tuple[int, tuple[int, ...]], list[tuple[int, AABB]]] = {}
        self._locations: dict[int, tuple[int, tuple[int, ...]]] = {}
        self._boxes: dict[int, AABB] = {}
        self._levels_in_use: dict[int, int] = {}
        # Occupied cell coordinates per level: lets range_query clamp its
        # probe window to cells that exist instead of enumerating the full
        # level resolution (fatal on degenerate universes, where every query
        # window clamps to the whole 2^level-per-axis grid).
        self._level_cells: dict[int, set[tuple[int, ...]]] = {}

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._cells = {}
        self._locations = {}
        self._boxes = {}
        self._levels_in_use = {}
        self._level_cells = {}
        if not materialized:
            return
        if self._universe is None:
            hull = union_all(box for _, box in materialized)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        for eid, box in materialized:
            self._place(eid, box)

    def insert(self, eid: int, box: AABB) -> None:
        if self._universe is None:
            self._universe = box.expanded(max(box.margin() * 0.005, 1e-9))
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._place(eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._remove(eid)
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """O(1) move: relocate only when the owning cell changes."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        new_key = self._cell_key(new_box)
        old_key = self._locations[eid]
        self._boxes[eid] = new_box
        if new_key == old_key:
            bucket = self._cells[old_key]
            for i, (stored_eid, _) in enumerate(bucket):
                if stored_eid == eid:
                    bucket[i] = (eid, new_box)
                    break
        else:
            self._remove(eid, keep_box=False)
            self._boxes[eid] = new_box
            self._place(eid, new_box)
        self.counters.updates += 1

    # -- queries -----------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._universe is None:
            return []
        counters = self.counters
        results: list[int] = []
        dims = self._universe.dims
        halo = self.looseness / 2.0
        for level, _count in self._levels_in_use.items():
            cell_sides = self._cell_sides(level)
            resolution = 1 << level
            occupied = self._level_cells.get(level, ())
            ranges = []
            window = 1
            for axis in range(dims):
                side = cell_sides[axis]
                lo_idx = math.floor((box.lo[axis] - self._universe.lo[axis]) / side - halo)
                hi_idx = math.floor((box.hi[axis] - self._universe.lo[axis]) / side + halo)
                # Clamp both ends into the grid: out-of-universe elements are
                # clamped into edge cells at placement time, so queries beyond
                # the universe must still probe those edge cells.
                lo_idx = max(0, min(lo_idx, resolution - 1))
                hi_idx = max(0, min(hi_idx, resolution - 1))
                ranges.append(range(lo_idx, hi_idx + 1))
                window *= hi_idx - lo_idx + 1
            if not ranges:
                continue
            if window > len(occupied):
                # The window covers more cells than exist at this level —
                # a huge query over a small (or degenerate) universe would
                # enumerate up to 2^(level·dims) empty coordinates.  Walk the
                # occupied cells instead and keep the ones inside the window;
                # same answer, bounded by the level's population.
                for coords in occupied:
                    if any(c not in r for c, r in zip(coords, ranges)):
                        continue
                    counters.cells_probed += 1
                    bucket = self._cells.get((level, coords))
                    if not bucket:
                        continue
                    counters.bytes_touched += len(bucket) * (dims * _BOX_BYTES_PER_DIM + 8)
                    for eid, elem_box in bucket:
                        counters.elem_tests += 1
                        if elem_box.intersects(box):
                            results.append(eid)
                continue
            for coords in _product(ranges):
                key = (level, coords)
                bucket = self._cells.get(key)
                counters.cells_probed += 1
                if not bucket:
                    continue
                counters.bytes_touched += len(bucket) * (dims * _BOX_BYTES_PER_DIM + 8)
                for eid, elem_box in bucket:
                    counters.elem_tests += 1
                    if elem_box.intersects(box):
                        results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Exact kNN by expanding-radius range probes (doubling search)."""
        if k <= 0 or not self._boxes or self._universe is None:
            return []
        counters = self.counters
        point = tuple(point)
        radius = max(min(self._cell_sides(self.max_level)), 1e-9)
        universe_diag = self._universe.max_distance_to_point(point) + 1.0
        while True:
            probe = AABB.from_center(point, radius)
            candidates = self.range_query(probe)
            if len(candidates) >= k or radius > universe_diag:
                scored = []
                for eid in set(candidates):
                    dist = self._boxes[eid].min_distance_to_point(point)
                    scored.append((dist, eid))
                    counters.heap_ops += 1
                scored.sort()
                # Candidates within `radius` are exact; beyond that a closer
                # element could hide outside the probe box, so only accept
                # results whose distance is covered by the probe.
                confirmed = [(d, e) for d, e in scored if d <= radius]
                if len(confirmed) >= k or radius > universe_diag:
                    return heapq.nsmallest(k, scored)
            radius *= 2.0

    def __len__(self) -> int:
        return len(self._boxes)

    @property
    def cell_count(self) -> int:
        return sum(1 for bucket in self._cells.values() if bucket)

    # -- internals -------------------------------------------------------------------

    def _cell_sides(self, level: int) -> tuple[float, ...]:
        assert self._universe is not None
        scale = 1 << level
        return tuple(extent / scale for extent in self._universe.extents())

    def _level_for(self, box: AABB) -> int:
        """Deepest level whose loose cell still covers the element."""
        assert self._universe is not None
        extents = box.extents()
        level = self.max_level
        for axis, extent in enumerate(extents):
            axis_extent = self._universe.extents()[axis]
            if extent <= 0.0:
                continue
            # Loose cell covers elements up to (looseness - 1) * side.
            max_size_factor = max(self.looseness - 1.0, 1e-9)
            fit = axis_extent * max_size_factor / extent
            if not math.isfinite(fit) or fit >= 2.0**self.max_level:
                continue  # element is tiny on this axis; no constraint
            axis_level = int(math.floor(math.log2(fit))) if fit >= 1.0 else 0
            level = min(level, axis_level)
        return max(0, min(self.max_level, level))

    def _cell_key(self, box: AABB) -> tuple[int, tuple[int, ...]]:
        assert self._universe is not None
        level = self._level_for(box)
        sides = self._cell_sides(level)
        resolution = 1 << level
        center = box.center()
        coords = []
        for axis, side in enumerate(sides):
            idx = int((center[axis] - self._universe.lo[axis]) / side)
            coords.append(max(0, min(resolution - 1, idx)))
        return (level, tuple(coords))

    def _place(self, eid: int, box: AABB) -> None:
        key = self._cell_key(box)
        self._cells.setdefault(key, []).append((eid, box))
        self._locations[eid] = key
        self._boxes[eid] = box
        self._levels_in_use[key[0]] = self._levels_in_use.get(key[0], 0) + 1
        self._level_cells.setdefault(key[0], set()).add(key[1])

    def _remove(self, eid: int, keep_box: bool = False) -> None:
        key = self._locations.pop(eid)
        bucket = self._cells[key]
        self._cells[key] = [(e, b) for e, b in bucket if e != eid]
        if not self._cells[key]:
            del self._cells[key]
            self._level_cells[key[0]].discard(key[1])
        self._levels_in_use[key[0]] -= 1
        if self._levels_in_use[key[0]] == 0:
            del self._levels_in_use[key[0]]
            self._level_cells.pop(key[0], None)
        if not keep_box:
            self._boxes.pop(eid, None)


def _product(ranges: list[range]):
    """Cartesian product of index ranges as coordinate tuples."""
    if not ranges:
        return
    if len(ranges) == 1:
        for i in ranges[0]:
            yield (i,)
        return
    for head in ranges[0]:
        for tail in _product(ranges[1:]):
            yield (head, *tail)
