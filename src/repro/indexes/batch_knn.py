"""Shared best-first batch-kNN traversal for the tree indexes.

One traversal answers a whole batch of kNN queries: every node enters the
priority queue at most once per batch, carrying the subset of queries whose
current k-th-distance bound still reaches it, and entry distances are
computed for all carried queries with one vectorized kernel.  The per-query
running top-k lives in dense ``(m, k)`` distance/id arrays, so leaf updates
are a single row-wise merge instead of per-hit Python heap churn.

The R-tree family (:class:`~repro.indexes.rtree.RTree` and subclasses),
:class:`~repro.indexes.disk_rtree.DiskRTree` and
:class:`~repro.indexes.kdtree.KDTree` all funnel through
:func:`best_first_batch_knn`; each supplies an ``expand`` callback that maps
its own node handle to ``(is_leaf, entry_boxes, refs)``.

Two properties the callers rely on:

* **Determinism** — results follow the library-wide kNN contract (sorted
  ascending by ``(distance, id)``; see :mod:`repro.indexes.base`).  Pruning
  keeps nodes at exactly the bound distance, so an element tying the k-th
  distance with a smaller id is always found.
* **Bounded node visits** — a node is pushed once (when its parent expands)
  and popped once; large batches are split into spatially local query chunks
  so the carried-query sets, and with them the per-node matrices, stay small.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.indexes.base import KNNResult
from repro.instrumentation.counters import Counters

# Sentinel id for "no element yet" slots in the running top-k; sorts after
# every real id at equal (infinite) distance.
_ID_SENTINEL = np.iinfo(np.int64).max

# Queries per traversal chunk.  The seeded bounds keep carried-query sets
# tight regardless of chunk size, so the chunk mainly trades per-node Python
# overhead (fewer, larger visits) against peak matrix size; 4096 measures
# fastest on the n=100k/m=10k benchmark workload.
_CHUNK = 4096

# expand(handle) -> (is_leaf, boxes, refs).  ``boxes`` is an (e, 2, d) float64
# array of entry MBRs; ``refs`` is an (e,) int64 array of element ids for a
# leaf, or a sequence of child handles for an inner node.
ExpandFn = Callable[[object], tuple[bool, np.ndarray, object]]


def _spatial_chunks(pts: np.ndarray, chunk: int) -> list[np.ndarray]:
    """Split query indices into chunks of spatially nearby points.

    Bounds within a chunk tighten fastest when its queries are co-located
    (the first leaves visited serve all of them), so queries are ordered by
    coarse grid cell before slicing.  Correctness never depends on the
    grouping — it only controls pruning quality.
    """
    m = pts.shape[0]
    if m <= chunk:
        return [np.arange(m)]
    lo = pts.min(axis=0)
    extent = pts.max(axis=0) - lo
    extent[extent == 0.0] = 1.0
    cells = np.clip((pts - lo) / extent * 16.0, 0.0, 15.0).astype(np.int64)
    key = np.zeros(m, dtype=np.int64)
    for axis in range(pts.shape[1]):
        key = key * 16 + cells[:, axis]
    order = np.argsort(key, kind="stable")
    return [order[start : start + chunk] for start in range(0, m, chunk)]


def _entry_distances(cpts: np.ndarray, rows: np.ndarray, boxes: np.ndarray) -> np.ndarray:
    """Point-to-box gaps for query rows vs node entries: ``(rows, entries)``."""
    p = cpts[rows][:, None, :]
    gaps = np.maximum(np.maximum(boxes[None, :, 0, :] - p, p - boxes[None, :, 1, :]), 0.0)
    return np.sqrt(np.einsum("qed,qed->qe", gaps, gaps))


def _seed_bounds(
    cpts: np.ndarray, kk: int, root: object, expand: ExpandFn, counters: Counters
) -> np.ndarray:
    """Cheap per-query upper bounds on the k-th distance: one greedy descent.

    Every query follows the child with the smallest entry distance down to a
    single leaf; the k-th smallest entry distance there bounds the true k-th
    distance from above.  Queries *partition* among children, so the whole
    phase costs one vectorized distance matrix per visited node — and the
    resulting bounds let the best-first phase prune most of the tree before
    any of its own leaves tighten them.
    """
    bounds = np.full(cpts.shape[0], np.inf)
    stack: list[tuple[object, np.ndarray]] = [(root, np.arange(cpts.shape[0]))]
    while stack:
        handle, rows = stack.pop()
        is_leaf, boxes, refs = expand(handle)
        if boxes.shape[0] == 0:
            continue
        dists = _entry_distances(cpts, rows, boxes)
        if is_leaf:
            counters.elem_tests += dists.size
            if boxes.shape[0] >= kk:
                bounds[rows] = np.partition(dists, kk - 1, axis=1)[:, kk - 1]
            continue
        counters.node_tests += dists.size
        choice = np.argmin(dists, axis=1)
        for entry_i, child in enumerate(refs):
            sub = rows[choice == entry_i]
            if sub.shape[0]:
                stack.append((child, sub))
    return bounds


def best_first_batch_knn(
    pts: np.ndarray,
    k: int,
    size: int,
    root: object,
    expand: ExpandFn,
    counters: Counters,
    chunk: int = _CHUNK,
    after_chunk: Callable[[], None] | None = None,
) -> list[KNNResult]:
    """Answer ``k``-NN for every row of ``pts`` with shared traversals.

    ``size`` is the number of indexed elements (caps the result length);
    ``root`` is the index's root handle for ``expand``.  Callers must handle
    the trivial cases (``m == 0``, ``k <= 0``, empty index) themselves.
    ``after_chunk`` fires once per finished query chunk — callers with
    bounded-memory models (DiskRTree) release per-chunk expansion state
    there.
    """
    m = pts.shape[0]
    kk = min(k, size)
    results: list[KNNResult] = [[] for _ in range(m)]
    if kk <= 0:
        return results
    for chunk_idx in _spatial_chunks(pts, chunk):
        cpts = pts[chunk_idx]
        a = chunk_idx.shape[0]
        best_d = np.full((a, kk), np.inf)
        best_e = np.full((a, kk), _ID_SENTINEL, dtype=np.int64)
        # Seeded upper bounds stay valid for the whole chunk (the running
        # k-th distance only replaces them once it drops below).
        bounds = _seed_bounds(cpts, kk, root, expand, counters)
        tiebreak = 0
        # Heap entries: (min entry distance, tiebreak, handle, carried query
        # rows, per-carried-query distances to the node's entry box).
        heap: list[tuple[float, int, object, np.ndarray, np.ndarray]] = [
            (0.0, 0, root, np.arange(a), np.zeros(a))
        ]
        while heap:
            _, _, handle, carried, cdists = heapq.heappop(heap)
            counters.heap_ops += 1
            # Re-filter against bounds that tightened since the push.  ``<=``
            # (not ``<``) keeps tie-distance nodes visitable — an element at
            # exactly the bound with a smaller id must still displace.
            alive = cdists <= bounds[carried]
            if not alive.all():
                carried = carried[alive]
            if carried.shape[0] == 0:
                continue
            is_leaf, boxes, refs = expand(handle)
            if boxes.shape[0] == 0:
                continue
            dists = _entry_distances(cpts, carried, boxes)  # (carried, entries)
            if is_leaf:
                counters.elem_tests += dists.size
                # Merge only rows an entry can actually improve (`<=` keeps
                # id-displacing ties eligible).
                improvable = (dists <= bounds[carried][:, None]).any(axis=1)
                if not improvable.all():
                    carried = carried[improvable]
                    dists = dists[improvable]
                if carried.shape[0] == 0:
                    continue
                entry_count = boxes.shape[0]
                cat_d = np.concatenate([best_d[carried], dists], axis=1)
                cat_e = np.concatenate(
                    [best_e[carried], np.broadcast_to(refs, (carried.shape[0], entry_count))],
                    axis=1,
                )
                order = np.lexsort((cat_e, cat_d), axis=1)[:, :kk]
                rows = np.arange(carried.shape[0])[:, None]
                best_d[carried] = cat_d[rows, order]
                best_e[carried] = cat_e[rows, order]
                bounds[carried] = np.minimum(bounds[carried], best_d[carried, kk - 1])
                counters.heap_ops += dists.size
            else:
                counters.node_tests += dists.size
                node_bounds = bounds[carried]
                for entry_i, child in enumerate(refs):
                    entry_d = dists[:, entry_i]
                    keep = entry_d <= node_bounds
                    if not keep.any():
                        continue
                    tiebreak += 1
                    counters.pointer_follows += 1
                    heapq.heappush(
                        heap,
                        (float(entry_d.min()), tiebreak, child, carried[keep], entry_d[keep]),
                    )
        for row in range(a):
            count = int(np.searchsorted(best_d[row], np.inf, side="left"))
            results[int(chunk_idx[row])] = list(
                zip(best_d[row, :count].tolist(), best_e[row, :count].tolist())
            )
        if after_chunk is not None:
            after_chunk()
    return results
