"""A bucket KD-tree — the classic point access method (Bentley 1975).

The paper lists the KD-tree among the point access methods used in memory.
Points are indexed directly; volumetric elements must be replicated or
enlarged (see :class:`~repro.indexes.quadtree.QuadTree` and
:class:`~repro.indexes.loose_octree.LooseOctree` for those strategies) — this
implementation therefore accepts only degenerate (point) boxes and raises
otherwise, keeping the PAM semantics honest.

Structure: internal nodes split on the widest axis at the median; leaves hold
up to ``bucket_size`` points and split on overflow.  All operations charge the
shared counters (``node_tests`` for split-plane comparisons, ``elem_tests``
for point-in-range tests).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_POINT_BYTES_PER_DIM = 8


class _KDNode:
    __slots__ = ("axis", "threshold", "left", "right", "points")

    def __init__(self) -> None:
        self.axis = -1
        self.threshold = 0.0
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None
        # Leaf payload: list of (point, eid); None marks an internal node.
        self.points: list[tuple[tuple[float, ...], int]] | None = []

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class KDTree(SpatialIndex):
    """Bucketed KD-tree over points (degenerate boxes)."""

    def __init__(self, bucket_size: int = 16, counters: Counters | None = None) -> None:
        super().__init__(counters)
        if bucket_size < 2:
            raise ValueError(f"bucket_size must be >= 2, got {bucket_size}")
        self.bucket_size = bucket_size
        self._root = _KDNode()
        self._size = 0
        self._dims: int | None = None
        # Lazy per-node expansion cache for the batch-kNN traversal.  A
        # node's region is determined by its root path, so cached child
        # regions/leaf arrays stay valid until a mutation clears the cache;
        # values keep the node alive so id() keys are stable.
        self._batch_pack: dict[int, tuple[_KDNode, bool, "np.ndarray", object]] = {}

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._batch_pack.clear()
        self._root = _KDNode()
        self._size = 0
        if not materialized:
            self._dims = None
            return
        self._dims = materialized[0][1].dims
        points = [(self._as_point(box), eid) for eid, box in materialized]
        self._root = self._build(points)
        self._size = len(points)

    def insert(self, eid: int, box: AABB) -> None:
        point = self._as_point(box)
        self._batch_pack.clear()
        if self._dims is None:
            self._dims = len(point)
        node = self._root
        while not node.is_leaf:
            self.counters.node_tests += 1
            node = node.left if point[node.axis] <= node.threshold else node.right
            self.counters.pointer_follows += 1
        node.points.append((point, eid))  # type: ignore[union-attr]
        if len(node.points) > self.bucket_size:  # type: ignore[arg-type]
            self._split_leaf(node)
        self._size += 1
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        point = self._as_point(box)
        self._batch_pack.clear()
        node = self._root
        while not node.is_leaf:
            self.counters.node_tests += 1
            node = node.left if point[node.axis] <= node.threshold else node.right
        points = node.points
        assert points is not None
        for i, (stored, stored_eid) in enumerate(points):
            if stored_eid == eid and stored == point:
                del points[i]
                self._size -= 1
                self.counters.deletes += 1
                return
        raise KeyError(f"element {eid} at {point} not in index")

    # -- queries ----------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        counters = self.counters
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                points = node.points
                assert points is not None
                counters.bytes_touched += len(points) * (box.dims * _POINT_BYTES_PER_DIM + 8)
                for point, eid in points:
                    counters.elem_tests += 1
                    if box.contains_point(point):
                        results.append(eid)
                continue
            counters.node_tests += 1
            counters.bytes_touched += 32
            if box.lo[node.axis] <= node.threshold:
                stack.append(node.left)  # type: ignore[arg-type]
                counters.pointer_follows += 1
            if box.hi[node.axis] > node.threshold:
                stack.append(node.right)  # type: ignore[arg-type]
                counters.pointer_follows += 1
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or self._size == 0:
            return []
        counters = self.counters
        point = tuple(point)
        tiebreak = 1
        # Max-heap on negated (distance, id): the worst survivor is the
        # lexicographically largest pair, so replacement follows the
        # deterministic (distance, id) contract (see indexes/base.py).
        best: list[tuple[float, int]] = []

        def worst() -> tuple[float, int]:
            if len(best) >= k:
                return (-best[0][0], -best[0][1])
            return (float("inf"), 0)

        # For the lower bound we store alongside each node the squared
        # distance accumulated from plane crossings (standard trick).
        bound_heap: list[tuple[float, int, _KDNode, dict[int, tuple[float, float]]]] = [
            (0.0, 0, self._root, {})
        ]
        while bound_heap:
            dist, _, node, bounds = heapq.heappop(bound_heap)
            counters.heap_ops += 1
            # Strictly greater: a node at exactly the k-th distance can still
            # hold a tied element with a smaller id.
            if dist > worst()[0]:
                break
            if node.is_leaf:
                points = node.points
                assert points is not None
                for stored, eid in points:
                    counters.elem_tests += 1
                    d = math.hypot(*(a - b for a, b in zip(stored, point)))
                    if len(best) < k:
                        heapq.heappush(best, (-d, -eid))
                        counters.heap_ops += 1
                    elif (d, eid) < worst():
                        heapq.heapreplace(best, (-d, -eid))
                        counters.heap_ops += 1
                continue
            counters.node_tests += 1
            axis, threshold = node.axis, node.threshold
            for child, side in ((node.left, "lo"), (node.right, "hi")):
                child_bounds = dict(bounds)
                lo, hi = child_bounds.get(axis, (float("-inf"), float("inf")))
                if side == "lo":
                    hi = min(hi, threshold)
                else:
                    lo = max(lo, threshold)
                child_bounds[axis] = (lo, hi)
                child_dist_sq = 0.0
                for bound_axis, (b_lo, b_hi) in child_bounds.items():
                    coordinate = point[bound_axis]
                    if coordinate < b_lo:
                        child_dist_sq += (b_lo - coordinate) ** 2
                    elif coordinate > b_hi:
                        child_dist_sq += (coordinate - b_hi) ** 2
                heapq.heappush(
                    bound_heap, (child_dist_sq**0.5, tiebreak, child, child_bounds)
                )
                counters.heap_ops += 1
                tiebreak += 1
        return sorted((-neg_d, -neg_e) for neg_d, neg_e in best)

    def batch_knn(
        self, points: "np.ndarray | Sequence[Sequence[float]]", k: int
    ) -> list[KNNResult]:
        """Shared best-first traversal over the whole batch.

        KD-nodes carry no boxes, so each child's bounding region is derived
        on the way down by clipping the parent region at the split plane
        (open sides stay infinite); leaves expose their points as degenerate
        boxes.  See :mod:`repro.indexes.batch_knn` for the traversal.
        """
        from repro.geometry.aabb import as_point_array
        from repro.indexes.batch_knn import best_first_batch_knn

        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or self._size == 0:
            return [[] for _ in range(m)]
        if self._dims is not None and pts.shape[1] != self._dims:
            raise ValueError(f"points have {pts.shape[1]} dims, index has {self._dims}")
        dims = pts.shape[1]
        counters = self.counters
        packed = self._batch_pack

        def expand(handle: object) -> tuple[bool, np.ndarray, object]:
            node, region = handle  # type: ignore[misc]
            cached = packed.get(id(node))
            if cached is not None:
                return cached[1:]
            if node.is_leaf:
                stored = node.points
                counters.bytes_touched += len(stored) * (dims * _POINT_BYTES_PER_DIM + 8)
                if not stored:
                    boxes = np.empty((0, 2, dims))
                    refs: object = np.empty(0, dtype=np.int64)
                else:
                    coords = np.array([p for p, _ in stored], dtype=np.float64)
                    boxes = np.stack([coords, coords], axis=1)
                    refs = np.fromiter(
                        (eid for _, eid in stored), dtype=np.int64, count=len(stored)
                    )
                packed[id(node)] = (node, True, boxes, refs)
                return packed[id(node)][1:]
            counters.bytes_touched += 32
            left_region = region.copy()
            left_region[1, node.axis] = node.threshold
            right_region = region.copy()
            right_region[0, node.axis] = node.threshold
            boxes = np.stack([left_region, right_region])
            packed[id(node)] = (
                node,
                False,
                boxes,
                [(node.left, left_region), (node.right, right_region)],
            )
            return packed[id(node)][1:]

        root_region = np.array([[-np.inf] * dims, [np.inf] * dims])
        return best_first_batch_knn(
            pts, k, self._size, (self._root, root_region), expand, counters
        )

    def __len__(self) -> int:
        return self._size

    # -- internals ------------------------------------------------------------------

    def _as_point(self, box: AABB) -> tuple[float, ...]:
        if not box.is_degenerate():
            raise ValueError(
                "KDTree is a point access method; index volumetric elements "
                "with a region tree (QuadTree/Octree) or a grid instead"
            )
        if self._dims is not None and box.dims != self._dims:
            raise ValueError(f"point has {box.dims} dims, index has {self._dims}")
        return box.lo

    def _build(self, points: list[tuple[tuple[float, ...], int]]) -> _KDNode:
        node = _KDNode()
        if len(points) <= self.bucket_size:
            node.points = points
            return node
        axis = self._widest_axis(points)
        ordered = sorted(points, key=lambda p: p[0][axis])
        median = len(ordered) // 2
        threshold = ordered[median - 1][0][axis]
        left = [p for p in ordered if p[0][axis] <= threshold]
        right = [p for p in ordered if p[0][axis] > threshold]
        if not left or not right:
            # All coordinates equal on this axis: keep as (oversized) leaf.
            node.points = points
            return node
        node.points = None
        node.axis = axis
        node.threshold = threshold
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    def _split_leaf(self, node: _KDNode) -> None:
        points = node.points
        assert points is not None
        rebuilt = self._build(points)
        if rebuilt.is_leaf:
            node.points = rebuilt.points
            return
        node.points = None
        node.axis = rebuilt.axis
        node.threshold = rebuilt.threshold
        node.left = rebuilt.left
        node.right = rebuilt.right

    @staticmethod
    def _widest_axis(points: list[tuple[tuple[float, ...], int]]) -> int:
        dims = len(points[0][0])
        widths = []
        for axis in range(dims):
            values = [p[0][axis] for p in points]
            widths.append(max(values) - min(values))
        return max(range(dims), key=widths.__getitem__)
