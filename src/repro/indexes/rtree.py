"""Guttman's R-tree, in memory, with linear and quadratic splits.

This is the reference dynamic spatial index of the paper's experiments
(Appendix A uses an STR-packed R-tree; :meth:`RTree.bulk_load` builds exactly
that, while :meth:`RTree.insert`/:meth:`RTree.delete` provide the classic
dynamic behaviour whose update cost Section 4.1 measures against rebuilds).

Instrumentation contract (used by the Figure 2/3 benchmarks):

* testing an *inner* entry's MBR against a query bumps ``node_tests``;
* testing a *leaf* entry's MBR bumps ``elem_tests``;
* descending into a child bumps ``pointer_follows``;
* visiting a node charges its payload size to ``bytes_touched``.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, boxes_to_array, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_ENTRY_PTR_BYTES = 8
_NODE_HEADER_BYTES = 16


class Node:
    """An R-tree node: a flat list of ``(box, ref)`` entries.

    For leaves ``ref`` is an element id; for inner nodes it is a child
    :class:`Node`.  Nodes do not cache their own MBR — the parent entry holds
    it — which matches the classic layout and keeps updates local.
    """

    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool, entries: list[tuple[AABB, object]] | None = None) -> None:
        self.is_leaf = is_leaf
        self.entries: list[tuple[AABB, object]] = entries if entries is not None else []

    def mbr(self) -> AABB:
        return union_all(box for box, _ in self.entries)

    def payload_bytes(self, dims: int) -> int:
        return _NODE_HEADER_BYTES + len(self.entries) * (dims * 16 + _ENTRY_PTR_BYTES)


class RTree(SpatialIndex):
    """Dynamic R-tree (Guttman 1984).

    Parameters
    ----------
    max_entries:
        Node capacity M.
    min_entries:
        Underflow threshold m; defaults to ``max(2, M * 2 // 5)`` (the 40 %
        fill classically recommended).
    split:
        ``"quadratic"`` (default) or ``"linear"`` seed selection.
    """

    def __init__(
        self,
        max_entries: int = 16,
        min_entries: int | None = None,
        split: str = "quadratic",
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        if split not in ("quadratic", "linear"):
            raise ValueError(f"unknown split algorithm: {split!r}")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries * 2 // 5)
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, max_entries/2], got {self.min_entries}"
            )
        self.split_algorithm = split
        self._root: Node = Node(is_leaf=True)
        self._height = 1  # number of levels; leaves are level 0
        self._size = 0
        self._dims: int | None = None
        self._node_count = 1
        # Lazy per-node entry arrays for the batch-kNN traversal.  Values
        # keep the Node alive so id() keys stay valid; any structural
        # mutation clears the cache wholesale.
        self._batch_pack: dict[int, tuple[Node, bool, np.ndarray, object]] = {}

    # -- bulk loading ----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item], packing: str = "str") -> None:
        """Rebuild via Sort-Tile-Recursive packing (the paper's build).

        ``packing="hilbert"`` selects Hilbert-order packing (Kamel &
        Faloutsos) instead — the other classic bulk-load of the survey the
        paper cites.
        """
        if packing not in ("str", "hilbert"):
            raise ValueError(f"unknown packing: {packing!r}")
        from repro.indexes.bulkload import str_pack
        from repro.indexes.hilbert import hilbert_pack

        materialized = validate_items(items)
        self._batch_pack.clear()
        if not materialized:
            self._root = Node(is_leaf=True)
            self._height = 1
            self._size = 0
            self._node_count = 1
            return
        self._dims = materialized[0][1].dims
        pack = str_pack if packing == "str" else hilbert_pack
        root, height, node_count = pack(materialized, self.max_entries, Node)
        self._root = root  # type: ignore[assignment]
        self._height = height
        self._size = len(materialized)
        self._node_count = node_count

    def bulk_load_external(
        self,
        items: Iterable[Item],
        budget: object = None,
        spill_dir: str | None = None,
        workers: int | None = None,
    ) -> None:
        """STR rebuild whose *build* working set never exceeds ``budget``.

        The chunked external packer (:mod:`repro.exec.external_build`)
        sort-spills entry runs through the storage layer and merges them
        into leaves, so arbitrarily large builds hold only budget-sized
        chunks of sort/entry arrays at a time.  ``items`` is consumed
        streaming — pass a generator for datasets that should never be
        materialized as a list.  Query results are identical to
        :meth:`bulk_load`; leaf composition may differ at slab boundaries.
        ``workers`` >= 2 tiles spilled merge slabs on the serving pool
        (identical output, parallel wall-clock).
        """
        from repro.exec.external_build import external_str_pack

        build = external_str_pack(
            items,
            self.max_entries,
            Node,
            budget=budget,  # type: ignore[arg-type]
            spill_dir=spill_dir,
            counters=self.counters,
            workers=workers,
        )
        self._batch_pack.clear()
        if build.size == 0:
            self._root = Node(is_leaf=True)
            self._height = 1
            self._size = 0
            self._node_count = 1
            return
        self._dims = build.dims
        self._root = build.root  # type: ignore[assignment]
        self._height = build.height
        self._size = build.size
        self._node_count = build.node_count

    # -- maintenance -------------------------------------------------------------

    def insert(self, eid: int, box: AABB) -> None:
        if self._dims is None:
            self._dims = box.dims
        elif box.dims != self._dims:
            raise ValueError(f"box has {box.dims} dims, index has {self._dims}")
        self._batch_pack.clear()
        self._insert_entry(box, eid, target_level=0)
        self._size += 1
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        self._batch_pack.clear()
        orphans: list[tuple[int, tuple[AABB, object]]] = []
        found = self._delete_recursive(self._root, self._height - 1, eid, box, orphans)
        if not found:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._size -= 1
        self.counters.deletes += 1
        # Shrink the root while it has a single inner child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]  # type: ignore[assignment]
            self._height -= 1
            self._node_count -= 1
        if not self._root.is_leaf and not self._root.entries:
            self._root = Node(is_leaf=True)
            self._height = 1
            self._node_count = 1
        # Reinsert orphaned entries at their original level.
        for level, (entry_box, ref) in orphans:
            self._insert_entry(entry_box, ref, target_level=level)

    # -- queries ---------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        counters = self.counters
        dims = box.dims
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            counters.bytes_touched += node.payload_bytes(dims)
            if node.is_leaf:
                for entry_box, ref in node.entries:
                    counters.elem_tests += 1
                    if entry_box.intersects(box):
                        results.append(ref)  # type: ignore[arg-type]
            else:
                for entry_box, child in node.entries:
                    counters.node_tests += 1
                    if entry_box.intersects(box):
                        counters.pointer_follows += 1
                        stack.append(child)  # type: ignore[arg-type]
        return results

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """One traversal for the whole batch (shared by the R* subclass).

        Each node is visited at most once per batch, carrying the subset of
        queries whose boxes reach it; entry MBRs are tested against all
        pending queries with one vectorized AABB-overlap kernel, and a child
        is descended with exactly the queries that overlap its entry box.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        results: list[list[int]] = [[] for _ in range(m)]
        if self._size == 0:
            return results
        dims = queries.shape[2]
        if self._dims is not None and dims != self._dims:
            raise ValueError(f"queries have {dims} dims, index has {self._dims}")
        counters = self.counters
        stack: list[tuple[Node, np.ndarray]] = [(self._root, np.arange(m))]
        while stack:
            node, active = stack.pop()
            if not node.entries:
                continue
            counters.bytes_touched += node.payload_bytes(dims)
            entry_boxes = boxes_to_array([box for box, _ in node.entries])
            pending = queries[active]
            overlap = np.all(
                (entry_boxes[:, None, 0, :] <= pending[None, :, 1, :])
                & (pending[None, :, 0, :] <= entry_boxes[:, None, 1, :]),
                axis=-1,
            )  # (entries, active queries)
            if node.is_leaf:
                counters.elem_tests += overlap.size
                rows, cols = np.nonzero(overlap)
                for entry_i, query_i in zip(rows.tolist(), cols.tolist()):
                    results[active[query_i]].append(node.entries[entry_i][1])  # type: ignore[arg-type]
            else:
                counters.node_tests += overlap.size
                for entry_i, (_, child) in enumerate(node.entries):
                    sub = active[overlap[entry_i]]
                    if sub.size:
                        counters.pointer_follows += 1
                        stack.append((child, sub))  # type: ignore[arg-type]
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Best-first kNN (Hjaltason & Samet) over box distances.

        Heap entries are ``(distance, kind, key, ref)`` with ``kind`` 0 for
        nodes and 1 for elements: at equal distance every node pops before
        any element (a node could still hide a tied element with a smaller
        id), and tied elements pop in id order — which realizes the
        deterministic ``(distance, id)`` contract exactly.
        """
        if k <= 0 or self._size == 0:
            return []
        counters = self.counters
        dims = len(tuple(point))
        heap: list[tuple[float, int, int, object]] = [(0.0, 0, 0, self._root)]
        tiebreak = 1
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                results.append((dist, ref))  # type: ignore[arg-type]
                continue
            node: Node = ref  # type: ignore[assignment]
            counters.bytes_touched += node.payload_bytes(dims)
            for entry_box, child in node.entries:
                if node.is_leaf:
                    counters.elem_tests += 1
                else:
                    counters.node_tests += 1
                entry_dist = entry_box.min_distance_to_point(point)
                if node.is_leaf:
                    heapq.heappush(heap, (entry_dist, 1, child, child))  # type: ignore[list-item]
                else:
                    heapq.heappush(heap, (entry_dist, 0, tiebreak, child))
                    tiebreak += 1
                counters.heap_ops += 1
        return results

    def batch_knn(self, points: np.ndarray | Sequence[Sequence[float]], k: int) -> list[KNNResult]:
        """One shared best-first traversal per query chunk (R* inherits).

        Each node is expanded at most once per chunk with the subset of
        queries whose k-th-distance bound still reaches it; see
        :mod:`repro.indexes.batch_knn`.
        """
        from repro.geometry.aabb import as_point_array
        from repro.indexes.batch_knn import best_first_batch_knn

        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or self._size == 0:
            return [[] for _ in range(m)]
        if self._dims is not None and pts.shape[1] != self._dims:
            raise ValueError(f"points have {pts.shape[1]} dims, index has {self._dims}")
        counters = self.counters
        dims = pts.shape[1]
        # Entry arrays pack lazily per node and persist across batches (the
        # steady-state analysis regime); mutations clear `_batch_pack`.
        packed = self._batch_pack

        def expand(handle: object) -> tuple[bool, np.ndarray, object]:
            node: Node = handle  # type: ignore[assignment]
            cached = packed.get(id(node))
            if cached is not None:
                return cached[1:]
            counters.bytes_touched += node.payload_bytes(dims)
            boxes = boxes_to_array([box for box, _ in node.entries], dims=dims)
            if node.is_leaf:
                refs: object = np.fromiter(
                    (ref for _, ref in node.entries), dtype=np.int64, count=len(node.entries)
                )
            else:
                refs = [child for _, child in node.entries]
            packed[id(node)] = (node, node.is_leaf, boxes, refs)
            return packed[id(node)][1:]

        return best_first_batch_knn(pts, k, self._size, self._root, expand, counters)

    # -- introspection -------------------------------------------------------------

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        items = _collect_leaf_items(self._root)
        items.sort(key=lambda item: item[0])
        eids = np.fromiter((eid for eid, _ in items), dtype=np.int64, count=len(items))
        return eids, boxes_to_array([box for _, box in items], dims=self._dims or 0)

    def export_tree(self) -> dict[str, np.ndarray] | None:
        """The whole tree flattened to contiguous arrays (BFS, root = 0).

        This is the packed-entry cache (the per-node arrays ``batch_knn``
        builds lazily) serialized for shared memory: ``node_starts`` is an
        ``(N + 1,)`` prefix over the entry tables, node ``i`` owning
        ``entry_boxes[node_starts[i]:node_starts[i+1]]`` and the matching
        ``entry_refs`` slice — element ids for leaves (``node_is_leaf``),
        child node indices for inner nodes.  A pool worker rehydrates these
        into a :class:`~repro.serving.snapshots.SnapshotTreeIndex` and
        serves the *same* structure the parent built, instead of
        STR-rebuilding an R-tree from the flat item table.  ``None`` when
        the tree is empty (R* inherits).
        """
        if self._size == 0 or self._dims is None:
            return None
        nodes: list[Node] = [self._root]
        starts = [0]
        is_leaf: list[bool] = []
        boxes_parts: list[np.ndarray] = []
        refs_parts: list[np.ndarray] = []
        total = 0
        cursor = 0
        while cursor < len(nodes):
            node = nodes[cursor]
            cursor += 1
            is_leaf.append(node.is_leaf)
            boxes_parts.append(
                boxes_to_array([box for box, _ in node.entries], dims=self._dims)
            )
            if node.is_leaf:
                refs_parts.append(
                    np.fromiter(
                        (ref for _, ref in node.entries),
                        dtype=np.int64,
                        count=len(node.entries),
                    )
                )
            else:
                child_ids = []
                for _, child in node.entries:
                    nodes.append(child)  # type: ignore[arg-type]
                    child_ids.append(len(nodes) - 1)
                refs_parts.append(np.asarray(child_ids, dtype=np.int64))
            total += len(node.entries)
            starts.append(total)
        return {
            "node_starts": np.asarray(starts, dtype=np.int64),
            "node_is_leaf": np.asarray(is_leaf, dtype=np.int64),
            "entry_boxes": np.concatenate(boxes_parts),
            "entry_refs": np.concatenate(refs_parts),
        }

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def node_count(self) -> int:
        return self._node_count

    def memory_bytes(self) -> int:
        if self._dims is None:
            return 0
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.payload_bytes(self._dims)
            if not node.is_leaf:
                stack.extend(child for _, child in node.entries)  # type: ignore[misc]
        return total

    def root_mbr(self) -> AABB | None:
        if not self._root.entries:
            return None
        return self._root.mbr()

    def check_invariants(self) -> None:
        """Validate structural invariants (tests call this after mutations)."""
        self._check_node(self._root, self._height - 1, is_root=True)

    # -- internals ------------------------------------------------------------------

    def _insert_entry(self, box: AABB, ref: object, target_level: int) -> None:
        if target_level > self._height - 1:
            # The tree shrank below the orphan's level during condensation;
            # fall back to reinserting the subtree's elements one by one.
            for eid, elem_box in _collect_leaf_items(ref):  # type: ignore[arg-type]
                self._insert_entry(elem_box, eid, target_level=0)
            return
        split = self._insert_recursive(self._root, self._height - 1, box, ref, target_level)
        if split is not None:
            left_box, right_node = split
            old_root = self._root
            self._root = Node(
                is_leaf=False,
                entries=[(left_box, old_root), (right_node.mbr(), right_node)],
            )
            self._height += 1
            self._node_count += 1

    def _insert_recursive(
        self, node: Node, level: int, box: AABB, ref: object, target_level: int
    ) -> tuple[AABB, Node] | None:
        """Insert and return ``(this_node_new_mbr_entry, split_sibling)`` info.

        Returns ``None`` when no split happened; otherwise the caller must
        add the sibling.  The caller is responsible for refreshing its entry
        box for ``node`` (done via :meth:`Node.mbr`).
        """
        if level == target_level:
            node.entries.append((box, ref))
        else:
            index = self._choose_subtree(node, box, level)
            _, child = node.entries[index]
            child_split = self._insert_recursive(child, level - 1, box, ref, target_level)
            node.entries[index] = (child.mbr(), child)  # type: ignore[union-attr]
            if child_split is not None:
                _, sibling = child_split
                node.entries.append((sibling.mbr(), sibling))
        if len(node.entries) > self.max_entries:
            return self._handle_overflow(node, level)
        return None

    def _handle_overflow(self, node: Node, level: int) -> tuple[AABB, Node] | None:
        """Resolve an overfull node; base behaviour is to split.

        Subclasses (the R*-tree) override this to try forced reinsertion
        first.  Returning ``None`` means the overflow was resolved without a
        split; otherwise the caller adds the returned sibling.
        """
        sibling = self._split(node)
        self._node_count += 1
        return (node.mbr(), sibling)

    def _choose_subtree(self, node: Node, box: AABB, level: int) -> int:
        """Guttman's criterion: least enlargement, then least volume."""
        best_index = 0
        best_key: tuple[float, float] | None = None
        for i, (entry_box, _) in enumerate(node.entries):
            key = (entry_box.enlargement(box), entry_box.volume())
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        return best_index

    def _split(self, node: Node) -> Node:
        """Split ``node`` in place, returning the new sibling."""
        if self.split_algorithm == "quadratic":
            group_a, group_b = _quadratic_split(node.entries, self.min_entries)
        else:
            group_a, group_b = _linear_split(node.entries, self.min_entries)
        node.entries = group_a
        return Node(is_leaf=node.is_leaf, entries=group_b)

    def _delete_recursive(
        self,
        node: Node,
        level: int,
        eid: int,
        box: AABB,
        orphans: list[tuple[int, tuple[AABB, object]]],
    ) -> bool:
        if node.is_leaf:
            for i, (entry_box, ref) in enumerate(node.entries):
                if ref == eid and entry_box == box:
                    del node.entries[i]
                    return True
            return False
        for i, (entry_box, child) in enumerate(node.entries):
            self.counters.node_tests += 1
            if not entry_box.intersects(box):
                continue
            if self._delete_recursive(child, level - 1, eid, box, orphans):  # type: ignore[arg-type]
                child_node: Node = child  # type: ignore[assignment]
                if len(child_node.entries) < self.min_entries:
                    # Condense: dissolve the child, reinsert its entries later.
                    del node.entries[i]
                    self._node_count -= 1
                    # The child sits at level-1; its entries belong in nodes
                    # of exactly that level (elements for a leaf child,
                    # level-2 subtrees for an inner child).
                    for entry in child_node.entries:
                        orphans.append((level - 1, entry))
                    # Make the detached node inert: external structures that
                    # cache node references (the bottom-up leaf map) must not
                    # mistake it for a live container.
                    child_node.entries = []
                else:
                    node.entries[i] = (child_node.mbr(), child_node)
                return True
        return False

    def _check_node(self, node: Node, level: int, is_root: bool) -> None:
        if node.is_leaf:
            if level != 0:
                raise AssertionError(f"leaf found at level {level}")
        else:
            if level <= 0:
                raise AssertionError("inner node at leaf level")
        if not is_root and len(node.entries) < self.min_entries:
            raise AssertionError(
                f"underfull node: {len(node.entries)} < {self.min_entries}"
            )
        if len(node.entries) > self.max_entries:
            raise AssertionError(
                f"overfull node: {len(node.entries)} > {self.max_entries}"
            )
        if not node.is_leaf:
            for entry_box, child in node.entries:
                child_node: Node = child  # type: ignore[assignment]
                if not entry_box.contains_box(child_node.mbr()):
                    raise AssertionError("parent entry box does not cover child MBR")
                self._check_node(child_node, level - 1, is_root=False)


def _collect_leaf_items(node: Node) -> list[tuple[int, AABB]]:
    """All (eid, box) element entries beneath ``node``."""
    items: list[tuple[int, AABB]] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            items.extend((ref, box) for box, ref in current.entries)  # type: ignore[misc]
        else:
            stack.extend(child for _, child in current.entries)  # type: ignore[misc]
    return items


# -- split algorithms (module-level so R* and tests can reuse them) -------------


def _quadratic_split(
    entries: list[tuple[AABB, object]], min_entries: int
) -> tuple[list[tuple[AABB, object]], list[tuple[AABB, object]]]:
    """Guttman's quadratic split: seeds maximize dead space, the rest follow
    the group whose MBR they enlarge least."""
    seed_a, seed_b = _pick_seeds_quadratic(entries)
    first = max(seed_a, seed_b)
    second = min(seed_a, seed_b)
    remaining = list(entries)
    entry_a = remaining.pop(first)
    entry_b = remaining.pop(second)
    group_a = [entry_a]
    group_b = [entry_b]
    box_a = entry_a[0]
    box_b = entry_b[0]
    while remaining:
        # Force assignment when one group must absorb all remaining entries.
        if len(group_a) + len(remaining) <= min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) <= min_entries:
            group_b.extend(remaining)
            break
        index, prefer_a = _pick_next(remaining, box_a, box_b, len(group_a), len(group_b))
        entry = remaining.pop(index)
        if prefer_a:
            group_a.append(entry)
            box_a = box_a.union(entry[0])
        else:
            group_b.append(entry)
            box_b = box_b.union(entry[0])
    return group_a, group_b


def _pick_seeds_quadratic(entries: list[tuple[AABB, object]]) -> tuple[int, int]:
    worst = -1.0
    seeds = (0, 1)
    for i in range(len(entries)):
        box_i = entries[i][0]
        for j in range(i + 1, len(entries)):
            box_j = entries[j][0]
            dead = box_i.union(box_j).volume() - box_i.volume() - box_j.volume()
            if dead > worst:
                worst = dead
                seeds = (i, j)
    return seeds


def _pick_next(
    remaining: list[tuple[AABB, object]],
    box_a: AABB,
    box_b: AABB,
    size_a: int,
    size_b: int,
) -> tuple[int, bool]:
    best_index = 0
    best_diff = -1.0
    best_prefer_a = True
    for i, (box, _) in enumerate(remaining):
        enlarge_a = box_a.enlargement(box)
        enlarge_b = box_b.enlargement(box)
        diff = abs(enlarge_a - enlarge_b)
        if diff > best_diff:
            best_diff = diff
            best_index = i
            if enlarge_a != enlarge_b:
                best_prefer_a = enlarge_a < enlarge_b
            elif box_a.volume() != box_b.volume():
                best_prefer_a = box_a.volume() < box_b.volume()
            else:
                best_prefer_a = size_a <= size_b
    return best_index, best_prefer_a


def _linear_split(
    entries: list[tuple[AABB, object]], min_entries: int
) -> tuple[list[tuple[AABB, object]], list[tuple[AABB, object]]]:
    """Guttman's linear split: seeds with greatest normalized separation."""
    dims = entries[0][0].dims
    best_separation = -1.0
    seeds = (0, 1)
    for axis in range(dims):
        highest_lo = max(range(len(entries)), key=lambda i: entries[i][0].lo[axis])
        lowest_hi = min(range(len(entries)), key=lambda i: entries[i][0].hi[axis])
        if highest_lo == lowest_hi:
            continue
        span_hi = max(box.hi[axis] for box, _ in entries)
        span_lo = min(box.lo[axis] for box, _ in entries)
        width = span_hi - span_lo
        if width <= 0.0:
            continue
        separation = (entries[highest_lo][0].lo[axis] - entries[lowest_hi][0].hi[axis]) / width
        if separation > best_separation:
            best_separation = separation
            seeds = (lowest_hi, highest_lo)
    first = max(seeds)
    second = min(seeds)
    if first == second:
        first, second = 1, 0
    remaining = list(entries)
    entry_a = remaining.pop(first)
    entry_b = remaining.pop(second)
    group_a = [entry_a]
    group_b = [entry_b]
    box_a = entry_a[0]
    box_b = entry_b[0]
    for entry in remaining:
        if len(group_a) + 1 <= min_entries and len(group_a) <= len(group_b):
            group_a.append(entry)
            box_a = box_a.union(entry[0])
            continue
        if box_a.enlargement(entry[0]) <= box_b.enlargement(entry[0]):
            group_a.append(entry)
            box_a = box_a.union(entry[0])
        else:
            group_b.append(entry)
            box_b = box_b.union(entry[0])
    if len(group_b) < min_entries:
        # Rebalance by moving the cheapest tail entries over.
        while len(group_b) < min_entries:
            group_b.append(group_a.pop())
    if len(group_a) < min_entries:
        while len(group_a) < min_entries:
            group_a.append(group_b.pop())
    return group_a, group_b
