"""Hilbert-curve utilities and Hilbert-packed bulk loading.

The paper's survey pointer ("Several bulkloading methods (see survey [8])
have been devised") covers the two classic packers: Sort-Tile-Recursive
(:mod:`repro.indexes.bulkload`) and Hilbert packing (Kamel & Faloutsos):
sort elements by the Hilbert index of their centre, cut the sequence into
full leaves, and stack levels bottom-up.  Hilbert packing preserves locality
better than STR on strongly clustered data and is the ordering behind
Hilbert R-trees.

The d-dimensional Hilbert index uses Skilling's transpose algorithm (AIP
2004) — exact, iterative, and allocation-light.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item
from repro.indexes.bulkload import NodeFactory


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Hilbert curve index of an integer lattice point.

    ``coords`` are non-negative integers below ``2**bits``; the result is in
    ``[0, 2**(bits*d))`` and consecutive indexes are lattice neighbours.
    """
    for c in coords:
        if not 0 <= c < (1 << bits):
            raise ValueError(f"coordinate {c} out of range for {bits} bits")
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)

    # Inverse undo of the Gray-code transform (Skilling).
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t

    # Interleave the transposed bits into one integer.
    h = 0
    for b in range(bits - 1, -1, -1):
        for i in range(n):
            h = (h << 1) | ((x[i] >> b) & 1)
    return h


def hilbert_key_for_box(box: AABB, universe: AABB, bits: int = 10) -> int:
    """Hilbert index of a box centre quantized into the universe lattice."""
    scale = (1 << bits) - 1
    coords = []
    for c, lo, hi in zip(box.center(), universe.lo, universe.hi):
        extent = hi - lo
        if extent <= 0.0:
            coords.append(0)
            continue
        q = int((c - lo) / extent * scale)
        coords.append(max(0, min(scale, q)))
    return hilbert_index(coords, bits)


def hilbert_sort(items: Sequence[Item], bits: int = 10) -> list[Item]:
    """Items ordered along the Hilbert curve of their centres."""
    materialized = list(items)
    if not materialized:
        return materialized
    universe = union_all(box for _, box in materialized)
    return sorted(
        materialized, key=lambda item: hilbert_key_for_box(item[1], universe, bits)
    )


def hilbert_pack(
    items: Sequence[Item],
    max_entries: int,
    node_factory: NodeFactory,
    bits: int = 10,
) -> tuple[object, int, int]:
    """Hilbert-packed tree build; same contract as
    :func:`repro.indexes.bulkload.str_pack`."""
    if not items:
        raise ValueError("hilbert_pack needs at least one item")
    if max_entries < 2:
        raise ValueError(f"max_entries must be >= 2, got {max_entries}")

    ordered = hilbert_sort(items, bits=bits)
    entries: list[tuple[AABB, object]] = [(box, eid) for eid, box in ordered]
    nodes = []
    boxes = []
    for start in range(0, len(entries), max_entries):
        group = entries[start : start + max_entries]
        nodes.append(node_factory(True, group))
        boxes.append(union_all(box for box, _ in group))
    height = 1
    node_count = len(nodes)
    while len(nodes) > 1:
        level_entries = list(zip(boxes, nodes))
        nodes = []
        boxes = []
        for start in range(0, len(level_entries), max_entries):
            group = level_entries[start : start + max_entries]
            nodes.append(node_factory(False, group))
            boxes.append(union_all(box for box, _ in group))
        height += 1
        node_count += len(nodes)
    return nodes[0], height, node_count
