"""Common interface for every spatial index in the library.

An *item* is an ``(element_id, AABB)`` pair — indexes never own geometry;
datasets keep the id-to-shape mapping and run exact refinement on the ids an
index returns.  This mirrors the filter/refine split of real spatial engines
and keeps every index comparable in the benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters

Item = tuple[int, AABB]
# kNN results are (distance, element_id), sorted ascending by distance.
KNNResult = list[tuple[float, int]]


class SpatialIndex(ABC):
    """Abstract base class of all indexes.

    Subclasses must implement bulk loading, single-item maintenance and the
    two query primitives the paper centres on (range and kNN).  They must
    charge work to ``self.counters``.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters if counters is not None else Counters()

    # -- maintenance ---------------------------------------------------------

    @abstractmethod
    def bulk_load(self, items: Iterable[Item]) -> None:
        """(Re)build the index from scratch over ``items``."""

    @abstractmethod
    def insert(self, eid: int, box: AABB) -> None:
        """Add one element."""

    @abstractmethod
    def delete(self, eid: int, box: AABB) -> None:
        """Remove one element previously inserted with exactly ``box``.

        Raises ``KeyError`` when the element is not present.
        """

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Move one element.  Default implementation is delete + insert."""
        self.delete(eid, old_box)
        self.insert(eid, new_box)
        self.counters.updates += 1

    # -- queries --------------------------------------------------------------

    @abstractmethod
    def range_query(self, box: AABB) -> list[int]:
        """Ids of all elements whose stored box intersects ``box``."""

    @abstractmethod
    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """The ``k`` elements nearest to ``point`` by box distance."""

    # -- introspection ---------------------------------------------------------

    @abstractmethod
    def __len__(self) -> int:
        """Number of indexed elements."""

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes (for cost accounting)."""
        return 0


def validate_items(items: Iterable[Item]) -> list[Item]:
    """Materialize and sanity-check a bulk-load input.

    Ensures ids are unique and dimensionalities agree, returning a list the
    caller can iterate multiple times.
    """
    materialized = list(items)
    if not materialized:
        return materialized
    dims = materialized[0][1].dims
    seen: set[int] = set()
    for eid, box in materialized:
        if box.dims != dims:
            raise ValueError(f"element {eid} has {box.dims} dims, expected {dims}")
        if eid in seen:
            raise ValueError(f"duplicate element id {eid}")
        seen.add(eid)
    return materialized
