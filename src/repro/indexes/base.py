"""Common interface for every spatial index in the library.

An *item* is an ``(element_id, AABB)`` pair — indexes never own geometry;
datasets keep the id-to-shape mapping and run exact refinement on the ids an
index returns.  This mirrors the filter/refine split of real spatial engines
and keeps every index comparable in the benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, array_to_boxes
from repro.instrumentation.counters import Counters

Item = tuple[int, AABB]
# kNN results are (distance, element_id) pairs sorted ascending by
# ``(distance, element_id)`` — ties at equal distance are broken by the
# smaller id.  Every exact index (and every vectorized batch kernel)
# implements this, so oracle comparisons can require list equality instead
# of comparing distance multisets.  Approximate structures (SpatialLSH)
# order whatever candidates they surface the same way but make no claim of
# matching the oracle's answer set.
KNNResult = list[tuple[float, int]]


def as_aabb_list(boxes: np.ndarray | Sequence[AABB]) -> list[AABB]:
    """Normalize a batch of range queries to a list of AABBs."""
    if isinstance(boxes, np.ndarray):
        if boxes.ndim != 3 or boxes.shape[1] != 2:
            raise ValueError(f"box array must have shape (m, 2, d), got {boxes.shape}")
        return array_to_boxes(boxes)
    return list(boxes)


def as_point_list(points: np.ndarray | Sequence[Sequence[float]]) -> list[tuple[float, ...]]:
    """Normalize a batch of kNN/point queries to a list of coordinate tuples."""
    if isinstance(points, np.ndarray):
        if points.ndim != 2:
            raise ValueError(f"point array must have shape (m, d), got {points.shape}")
        return [tuple(row) for row in points.tolist()]
    return [tuple(float(c) for c in p) for p in points]


class SpatialIndex(ABC):
    """Abstract base class of all indexes.

    Subclasses must implement bulk loading, single-item maintenance and the
    two query primitives the paper centres on (range and kNN).  They must
    charge work to ``self.counters``.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters if counters is not None else Counters()

    # -- maintenance ---------------------------------------------------------

    @abstractmethod
    def bulk_load(self, items: Iterable[Item]) -> None:
        """(Re)build the index from scratch over ``items``."""

    @abstractmethod
    def insert(self, eid: int, box: AABB) -> None:
        """Add one element."""

    @abstractmethod
    def delete(self, eid: int, box: AABB) -> None:
        """Remove one element previously inserted with exactly ``box``.

        Raises ``KeyError`` when the element is not present.
        """

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Move one element.  Default implementation is delete + insert."""
        self.delete(eid, old_box)
        self.insert(eid, new_box)
        self.counters.updates += 1

    # -- queries --------------------------------------------------------------

    @abstractmethod
    def range_query(self, box: AABB) -> list[int]:
        """Ids of all elements whose stored box intersects ``box``."""

    @abstractmethod
    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """The ``k`` elements nearest to ``point`` by box distance.

        Results are sorted ascending by ``(distance, element_id)``; when
        several elements tie at the k-th distance the ones with the smallest
        ids are reported.  The ordering is part of the contract — it makes
        every exact implementation's answer bit-identical to the LinearScan
        oracle's (up to float noise in the distances themselves); avowedly
        approximate indexes order their candidates the same way but may
        surface a different answer set.
        """

    # -- batch queries ---------------------------------------------------------
    #
    # Simulation analyses issue queries by the million per step (synapse
    # detection probes every branch); the batch entry points let indexes
    # amortize traversal and run vectorized kernels.  The defaults below are
    # the naive per-query loop, so every index is batch-capable; LinearScan,
    # the grids and the R-tree family override them with vectorized paths.
    # Subclass overrides must return the same answer the loop would:
    # identical ids per range query (order within one result list is
    # unspecified) and, for kNN, the identical ``(distance, id)`` list —
    # the deterministic ``(distance, id)`` tie-break above applies to batch
    # kernels exactly as it does to the scalar path.

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """Run one range query per box; ``boxes`` is ``(m, 2, d)`` or AABBs."""
        return [self.range_query(box) for box in as_aabb_list(boxes)]

    def batch_knn(self, points: np.ndarray | Sequence[Sequence[float]], k: int) -> list[KNNResult]:
        """Run one kNN query per point; ``points`` is ``(m, d)`` or sequences."""
        return [self.knn(point, k) for point in as_point_list(points)]

    def supports_batch_kind(self, kind: str) -> bool:
        """Capability probe: does this index vectorize batches of ``kind``?

        ``kind`` is ``"range"``, ``"point"`` (both served by
        ``batch_range_query`` — stabbing queries are degenerate ranges),
        ``"knn"``, or ``"approx_knn"``.  For the exact kinds, True when the
        class overrides the corresponding batch method, i.e. batching buys
        more than the base class's per-query loop; for ``"approx_knn"``,
        True when the class provides a defeatist ``approx_batch_knn``
        kernel (the spill tree).  The query-session cost heuristic uses
        this to route batches on loop-only indexes through the scalar path
        and to decide whether an ``accuracy`` target can be honoured
        approximately at all.
        """
        if kind in ("range", "point"):
            return type(self).batch_range_query is not SpatialIndex.batch_range_query
        if kind == "knn":
            return type(self).batch_knn is not SpatialIndex.batch_knn
        if kind == "approx_knn":
            return getattr(type(self), "approx_batch_knn", None) is not None
        raise ValueError(f"unknown batch kind: {kind!r}")

    # -- introspection ---------------------------------------------------------

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The current contents as packed ``(eids, boxes)`` arrays, or None.

        ``eids`` is ``(n,) int64``, ``boxes`` ``(n, 2, d) float64`` — the
        same packed layout the batch kernels use.  This is the payload the
        serving tier ships through ``multiprocessing.shared_memory`` so a
        long-lived worker pool can rebuild a query-equivalent snapshot
        without ever pickling the index (:mod:`repro.serving`).  Indexes
        whose storage cannot be enumerated cheaply return ``None``; the
        pool then falls back to single-process execution.
        """
        return None

    @abstractmethod
    def __len__(self) -> int:
        """Number of indexed elements."""

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes (for cost accounting)."""
        return 0


def validate_items(items: Iterable[Item]) -> list[Item]:
    """Materialize and sanity-check a bulk-load input.

    Ensures ids are unique and dimensionalities agree, returning a list the
    caller can iterate multiple times.
    """
    materialized = list(items)
    if not materialized:
        return materialized
    dims = materialized[0][1].dims
    seen: set[int] = set()
    for eid, box in materialized:
        if box.dims != dims:
            raise ValueError(f"element {eid} has {box.dims} dims, expected {dims}")
        if eid in seen:
            raise ValueError(f"duplicate element id {eid}")
        seen.add(eid)
    return materialized
