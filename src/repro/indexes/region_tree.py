"""Shared space-oriented region tree behind the quadtree and octree.

Space-oriented partitioning splits *space* into 2^d equal children per node.
Volumetric elements that straddle child boundaries are **replicated** into
every overlapping leaf — the strategy the paper attributes to point access
methods ("supporting volumetric objects ... can be accomplished by
replicating elements which occupy several partitions on the leaf level.
However, by doing so, the index size is increased massively").  The
``replication_factor`` property exposes exactly that blow-up for the
benchmarks; the loose octree avoids it at the price of overlap.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16


class _RegionNode:
    __slots__ = ("box", "children", "items")

    def __init__(self, box: AABB) -> None:
        self.box = box
        self.children: list["_RegionNode"] | None = None
        self.items: list[tuple[int, AABB]] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class RegionTree(SpatialIndex):
    """2^d-ary space partitioning tree with leaf-level replication.

    Parameters
    ----------
    dims:
        Dimensionality (2 = quadtree, 3 = octree).
    universe:
        Root cell; when omitted it is derived from the first ``bulk_load``
        (with a 1 % margin) and grown by rebuild when an insert lands
        outside.
    capacity:
        Leaf split threshold (distinct elements per leaf).
    max_depth:
        Hard depth cap; overflowing leaves at the cap simply grow, which
        bounds replication on pathological inputs.
    """

    def __init__(
        self,
        dims: int,
        universe: AABB | None = None,
        capacity: int = 16,
        max_depth: int = 12,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if universe is not None and universe.dims != dims:
            raise ValueError(f"universe has {universe.dims} dims, expected {dims}")
        self.dims = dims
        self.capacity = capacity
        self.max_depth = max_depth
        self._universe = universe
        self._root: _RegionNode | None = _RegionNode(universe) if universe else None
        self._boxes: dict[int, AABB] = {}
        self._replicas = 0

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._boxes = {}
        self._replicas = 0
        if self._universe is None and materialized:
            hull = union_all(box for _, box in materialized)
            margin = max(hull.margin() / (2 * self.dims) * 0.01, 1e-9)
            self._universe = hull.expanded(margin)
        self._root = _RegionNode(self._universe) if self._universe else None
        for eid, box in materialized:
            self.insert(eid, box)
        # bulk_load is a rebuild, not N logical inserts
        self.counters.inserts -= len(materialized)

    def insert(self, eid: int, box: AABB) -> None:
        if box.dims != self.dims:
            raise ValueError(f"box has {box.dims} dims, index has {self.dims}")
        if self._universe is None:
            margin = max(box.margin() / (2 * self.dims) * 0.01, 1e-9)
            self._universe = box.expanded(margin)
            self._root = _RegionNode(self._universe)
        if not self._universe.contains_box(box):
            self._grow_universe(box)
        self._boxes[eid] = box
        self._insert_into(self._root, eid, box, depth=0)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        assert self._root is not None
        self._delete_from(self._root, eid, box)
        del self._boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        self.delete(eid, old_box)
        self.insert(eid, new_box)
        self.counters.updates += 1

    # -- queries -----------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._root is None:
            return []
        counters = self.counters
        seen: set[int] = set()
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                counters.bytes_touched += len(node.items) * (
                    self.dims * _BOX_BYTES_PER_DIM + 8
                )
                for eid, elem_box in node.items:
                    if eid in seen:
                        continue
                    counters.elem_tests += 1
                    if elem_box.intersects(box):
                        seen.add(eid)
                        results.append(eid)
                continue
            assert node.children is not None
            for child in node.children:
                counters.node_tests += 1
                if child.box.intersects(box):
                    counters.pointer_follows += 1
                    stack.append(child)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or not self._boxes:
            return []
        counters = self.counters
        # (distance, kind, key, ref): nodes (kind 0) pop before elements
        # (kind 1) at equal distance, tied elements pop in id order — the
        # deterministic (distance, id) contract (see indexes/base.py).
        heap: list[tuple[float, int, int, object]] = [(0.0, 0, 0, self._root)]
        tiebreak = 1
        emitted: set[int] = set()
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                if ref not in emitted:
                    emitted.add(ref)  # type: ignore[arg-type]
                    results.append((dist, ref))  # type: ignore[arg-type]
                continue
            node: _RegionNode = ref  # type: ignore[assignment]
            if node.is_leaf:
                for eid, elem_box in node.items:
                    if eid in emitted:
                        continue
                    counters.elem_tests += 1
                    heapq.heappush(
                        heap,
                        (elem_box.min_distance_to_point(point), 1, eid, eid),
                    )
                    counters.heap_ops += 1
                continue
            assert node.children is not None
            for child in node.children:
                counters.node_tests += 1
                heapq.heappush(
                    heap,
                    (child.box.min_distance_to_point(point), 0, tiebreak, child),
                )
                counters.heap_ops += 1
                tiebreak += 1
        return results

    def __len__(self) -> int:
        return len(self._boxes)

    @property
    def replication_factor(self) -> float:
        """Stored leaf entries per distinct element (1.0 = no replication)."""
        if not self._boxes:
            return 0.0
        return self._replicas / len(self._boxes)

    # -- internals -------------------------------------------------------------------

    def _insert_into(self, node: _RegionNode, eid: int, box: AABB, depth: int) -> None:
        if node.is_leaf:
            node.items.append((eid, box))
            self._replicas += 1
            distinct = len({stored_eid for stored_eid, _ in node.items})
            if distinct > self.capacity and depth < self.max_depth:
                self._split(node)
            return
        assert node.children is not None
        for child in node.children:
            if child.box.intersects(box):
                self._insert_into(child, eid, box, depth + 1)

    def _split(self, node: _RegionNode) -> None:
        node.children = [_RegionNode(box) for box in _subdivide(node.box)]
        items = node.items
        node.items = []
        self._replicas -= len(items)
        for eid, box in items:
            for child in node.children:
                if child.box.intersects(box):
                    child.items.append((eid, box))
                    self._replicas += 1

    def _delete_from(self, node: _RegionNode, eid: int, box: AABB) -> None:
        if node.is_leaf:
            before = len(node.items)
            node.items = [(e, b) for e, b in node.items if e != eid]
            self._replicas -= before - len(node.items)
            return
        assert node.children is not None
        for child in node.children:
            if child.box.intersects(box):
                self._delete_from(child, eid, box)

    def _grow_universe(self, box: AABB) -> None:
        """Rebuild with a universe covering both the old data and ``box``."""
        items = list(self._boxes.items())
        hull = self._universe.union(box) if self._universe else box
        margin = max(hull.margin() / (2 * self.dims) * 0.5, 1e-9)
        self._universe = hull.expanded(margin)
        self._root = _RegionNode(self._universe)
        self._replicas = 0
        self._boxes = {}
        for eid, item_box in items:
            self._boxes[eid] = item_box
            self._insert_into(self._root, eid, item_box, depth=0)


def _subdivide(box: AABB) -> list[AABB]:
    """The 2^d equal children of ``box``."""
    center = box.center()
    dims = box.dims
    children = []
    for mask in range(1 << dims):
        lo = []
        hi = []
        for axis in range(dims):
            if mask & (1 << axis):
                lo.append(center[axis])
                hi.append(box.hi[axis])
            else:
                lo.append(box.lo[axis])
                hi.append(center[axis])
        children.append(AABB(lo, hi))
    return children
