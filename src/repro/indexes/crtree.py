"""The CR-tree (Kim & Kwon, SIGMOD'01): a cache-conscious R-tree.

The paper cites the CR-tree as "a step in the right direction" for in-memory
indexing: nodes are sized to a multiple of the cache block, and entry MBRs are
*quantized relative to the node's reference box* (QRMBRs), so several times
more entries fit per cache line than with full float boxes.  The paper also
notes its limit — compression roughly doubles throughput but "the fundamental
problem of overlap remains" — which the grid-vs-tree benchmark reproduces.

Implementation notes:

* Quantization is conservative (entry boxes round outward, query boxes round
  outward in the opposite sense), so the quantized filter can only produce
  false positives, never false negatives; leaf candidates are refined against
  exact boxes (counted as ``refine_tests``).
* Queries touch only the quantized representation; byte accounting therefore
  charges ``QUANT_BYTES`` per coordinate instead of 8, which is precisely the
  CR-tree saving the memory cost model prices.
* Maintenance (insert/delete) works on exact boxes and re-quantizes the
  affected nodes, mirroring the published algorithm's lazy re-quantization.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.bulkload import _tile
from repro.instrumentation.counters import Counters

QUANT_LEVELS = 1 << 16  # 16-bit coordinates
QUANT_BYTES = 2
_NODE_HEADER_BYTES = 16


class CRNode:
    """A CR-tree node: reference box plus quantized entries.

    ``entries`` holds ``(qlo, qhi, exact_box, ref)`` — the exact box is kept
    for maintenance and refinement but the query path reads only the
    quantized coordinates.
    """

    __slots__ = ("is_leaf", "ref_box", "entries")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.ref_box: AABB | None = None
        self.entries: list[tuple[tuple[int, ...], tuple[int, ...], AABB, object]] = []

    def rebuild_quantization(self, exact_entries: list[tuple[AABB, object]]) -> None:
        """Recompute the reference box and quantize every entry outward."""
        self.ref_box = union_all(box for box, _ in exact_entries)
        self.entries = [
            (*_quantize_box(box, self.ref_box, outward=True), box, ref)
            for box, ref in exact_entries
        ]

    def exact_entries(self) -> list[tuple[AABB, object]]:
        return [(box, ref) for _, _, box, ref in self.entries]

    def mbr(self) -> AABB:
        return union_all(box for _, _, box, _ in self.entries)

    def payload_bytes(self, dims: int) -> int:
        per_entry = dims * 2 * QUANT_BYTES + 8
        return _NODE_HEADER_BYTES + dims * 16 + len(self.entries) * per_entry


def _quantize_box(
    box: AABB, ref: AABB, outward: bool
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Map ``box`` into ``ref``-relative integer grid coordinates.

    ``outward=True`` rounds lo down / hi up (entries); callers quantizing a
    *query* also round outward so that the integer overlap test is a superset
    of the float test.
    """
    qlo = []
    qhi = []
    for lo, hi, r_lo, r_hi in zip(box.lo, box.hi, ref.lo, ref.hi):
        span = r_hi - r_lo
        if span <= 0.0 or not math.isfinite((QUANT_LEVELS - 1) / span):
            # Zero or denormal span: the axis carries no information —
            # quantize to the full range (always conservative).
            qlo.append(0)
            qhi.append(QUANT_LEVELS - 1)
            continue
        scale = (QUANT_LEVELS - 1) / span
        lo_cell = math.floor((lo - r_lo) * scale)
        hi_cell = math.ceil((hi - r_lo) * scale)
        if not outward:
            lo_cell = math.ceil((lo - r_lo) * scale)
            hi_cell = math.floor((hi - r_lo) * scale)
        qlo.append(max(0, min(QUANT_LEVELS - 1, lo_cell)))
        qhi.append(max(0, min(QUANT_LEVELS - 1, hi_cell)))
    return tuple(qlo), tuple(qhi)


class CRTree(SpatialIndex):
    """Cache-conscious R-tree with quantized relative MBRs."""

    def __init__(
        self,
        max_entries: int = 42,
        counters: Counters | None = None,
    ) -> None:
        # 42 three-dim quantized entries ≈ 14 cache lines per node, a
        # multiple-of-cache-line size in the range the paper recommends
        # (640 B – 1 KB nodes).
        super().__init__(counters)
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries * 2 // 5)
        self._root = CRNode(is_leaf=True)
        self._height = 1
        self._size = 0
        self._dims: int | None = None

    # -- maintenance ---------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        if not materialized:
            self._root = CRNode(is_leaf=True)
            self._height = 1
            self._size = 0
            return
        self._dims = materialized[0][1].dims
        entries: list[tuple[AABB, object]] = [(box, eid) for eid, box in materialized]
        groups = _tile(entries, self._dims, self.max_entries)
        nodes = []
        for group in groups:
            node = CRNode(is_leaf=True)
            node.rebuild_quantization(group)
            nodes.append(node)
        self._height = 1
        while len(nodes) > 1:
            level_entries = [(node.mbr(), node) for node in nodes]
            groups = _tile(level_entries, self._dims, self.max_entries)
            parents = []
            for group in groups:
                node = CRNode(is_leaf=False)
                node.rebuild_quantization(group)
                parents.append(node)
            nodes = parents
            self._height += 1
        self._root = nodes[0]
        self._size = len(materialized)

    def insert(self, eid: int, box: AABB) -> None:
        if self._dims is None:
            self._dims = box.dims
        split = self._insert_recursive(self._root, self._height - 1, box, eid)
        if split is not None:
            old_root = self._root
            new_root = CRNode(is_leaf=False)
            new_root.rebuild_quantization([(old_root.mbr(), old_root), (split.mbr(), split)])
            self._root = new_root
            self._height += 1
        self._size += 1
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        orphans: list[tuple[int, AABB]] = []
        found = self._delete_recursive(self._root, eid, box, orphans)
        if not found:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._size -= 1
        self.counters.deletes += 1
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][3]  # type: ignore[assignment]
            self._height -= 1
        for orphan_eid, orphan_box in orphans:
            split = self._insert_recursive(self._root, self._height - 1, orphan_box, orphan_eid)
            if split is not None:
                old_root = self._root
                new_root = CRNode(is_leaf=False)
                new_root.rebuild_quantization(
                    [(old_root.mbr(), old_root), (split.mbr(), split)]
                )
                self._root = new_root
                self._height += 1

    # -- queries -----------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._size == 0:
            return []
        counters = self.counters
        dims = box.dims
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            counters.bytes_touched += node.payload_bytes(dims)
            if node.ref_box is None:
                continue
            q_qlo, q_qhi = _quantize_box(box, node.ref_box, outward=True)
            if node.is_leaf:
                for qlo, qhi, exact_box, ref in node.entries:
                    counters.elem_tests += 1
                    if _quantized_intersect(qlo, qhi, q_qlo, q_qhi):
                        counters.refine_tests += 1
                        if exact_box.intersects(box):
                            results.append(ref)  # type: ignore[arg-type]
            else:
                for qlo, qhi, _, child in node.entries:
                    counters.node_tests += 1
                    if _quantized_intersect(qlo, qhi, q_qlo, q_qhi):
                        counters.pointer_follows += 1
                        stack.append(child)  # type: ignore[arg-type]
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or self._size == 0:
            return []
        counters = self.counters
        dims = len(tuple(point))
        # (distance, kind, key, ref): nodes (kind 0) pop before elements
        # (kind 1) at equal distance, tied elements pop in id order — the
        # deterministic (distance, id) contract (see indexes/base.py).
        heap: list[tuple[float, int, int, object]] = [(0.0, 0, 0, self._root)]
        tiebreak = 1
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                results.append((dist, ref))  # type: ignore[arg-type]
                continue
            node: CRNode = ref  # type: ignore[assignment]
            counters.bytes_touched += node.payload_bytes(dims)
            for _, _, exact_box, child in node.entries:
                if node.is_leaf:
                    counters.elem_tests += 1
                else:
                    counters.node_tests += 1
                entry_dist = exact_box.min_distance_to_point(point)
                if node.is_leaf:
                    heapq.heappush(heap, (entry_dist, 1, child, child))  # type: ignore[list-item]
                else:
                    heapq.heappush(heap, (entry_dist, 0, tiebreak, child))
                    tiebreak += 1
                counters.heap_ops += 1
        return results

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def memory_bytes(self) -> int:
        if self._dims is None:
            return 0
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.payload_bytes(self._dims)
            if not node.is_leaf:
                stack.extend(child for _, _, _, child in node.entries)  # type: ignore[misc]
        return total

    # -- internals -------------------------------------------------------------------

    def _insert_recursive(self, node: CRNode, level: int, box: AABB, ref: object) -> CRNode | None:
        exact = node.exact_entries()
        if node.is_leaf:
            exact.append((box, ref))
        else:
            best_index = 0
            best_key: tuple[float, float] | None = None
            for i, (entry_box, _) in enumerate(exact):
                key = (entry_box.enlargement(box), entry_box.volume())
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = i
            entry_box, child = exact[best_index]
            split = self._insert_recursive(child, level - 1, box, ref)  # type: ignore[arg-type]
            exact[best_index] = (child.mbr(), child)  # type: ignore[union-attr]
            if split is not None:
                exact.append((split.mbr(), split))
        if len(exact) > self.max_entries:
            ordered = sorted(exact, key=lambda e: e[0].center()[0])
            half = len(ordered) // 2
            node.rebuild_quantization(ordered[:half])
            sibling = CRNode(is_leaf=node.is_leaf)
            sibling.rebuild_quantization(ordered[half:])
            return sibling
        node.rebuild_quantization(exact)
        return None

    def _delete_recursive(
        self, node: CRNode, eid: int, box: AABB, orphans: list[tuple[int, AABB]]
    ) -> bool:
        if node.is_leaf:
            exact = node.exact_entries()
            for i, (entry_box, ref) in enumerate(exact):
                if ref == eid and entry_box == box:
                    del exact[i]
                    if exact:
                        node.rebuild_quantization(exact)
                    else:
                        node.ref_box = None
                        node.entries = []
                    return True
            return False
        exact = node.exact_entries()
        for i, (entry_box, child) in enumerate(exact):
            self.counters.node_tests += 1
            if not entry_box.intersects(box):
                continue
            child_node: CRNode = child  # type: ignore[assignment]
            if self._delete_recursive(child_node, eid, box, orphans):
                if len(child_node.entries) < self.min_entries:
                    del exact[i]
                    _collect_items(child_node, orphans)
                else:
                    exact[i] = (child_node.mbr(), child_node)
                if exact:
                    node.rebuild_quantization(exact)
                else:
                    node.ref_box = None
                    node.entries = []
                return True
        return False


def _collect_items(node: CRNode, out: list[tuple[int, AABB]]) -> None:
    if node.is_leaf:
        out.extend((ref, box) for _, _, box, ref in node.entries)  # type: ignore[misc]
        return
    for _, _, _, child in node.entries:
        _collect_items(child, out)  # type: ignore[arg-type]


def _quantized_intersect(
    a_lo: tuple[int, ...],
    a_hi: tuple[int, ...],
    b_lo: tuple[int, ...],
    b_hi: tuple[int, ...],
) -> bool:
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        if al > bh or bl > ah:
            return False
    return True
