"""Sort-Tile-Recursive (STR) bulk loading for R-tree-family indexes.

The paper's experiments use "an available implementation of the STR R-Tree";
Section 4 measures rebuild-from-scratch against per-element updates, and STR
packing is the rebuild being measured.  The packer is shared: the in-memory
:class:`~repro.indexes.rtree.RTree`, the :class:`~repro.indexes.rstar.RStarTree`
and the :class:`~repro.indexes.crtree.CRTree` all build through it with their
own node factories.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.geometry.aabb import AABB, union_all

# A node factory takes (is_leaf, entries) and returns a node object.
NodeFactory = Callable[[bool, list[tuple[AABB, object]]], object]


def str_pack(
    items: Sequence[tuple[int, AABB]],
    max_entries: int,
    node_factory: NodeFactory,
) -> tuple[object, int, int]:
    """Pack ``items`` into a fully built tree.

    Returns ``(root, height, node_count)``.  ``height`` counts levels
    including the leaf level, so a single leaf root has height 1.
    """
    if not items:
        raise ValueError("str_pack needs at least one item")
    if max_entries < 2:
        raise ValueError(f"max_entries must be >= 2, got {max_entries}")

    dims = items[0][1].dims
    entries: list[tuple[AABB, object]] = [(box, eid) for eid, box in items]
    groups = _tile(entries, dims, max_entries)
    nodes = [node_factory(True, group) for group in groups]
    boxes = [union_all(box for box, _ in group) for group in groups]
    height = 1
    node_count = len(nodes)

    while len(nodes) > 1:
        level_entries: list[tuple[AABB, object]] = list(zip(boxes, nodes))
        groups = _tile(level_entries, dims, max_entries)
        nodes = [node_factory(False, group) for group in groups]
        boxes = [union_all(box for box, _ in group) for group in groups]
        height += 1
        node_count += len(nodes)

    return nodes[0], height, node_count


def _tile(
    entries: list[tuple[AABB, object]], dims: int, max_entries: int
) -> list[list[tuple[AABB, object]]]:
    """Partition entries into groups of at most ``max_entries`` by recursive
    sort-and-slice along successive dimensions."""
    groups: list[list[tuple[AABB, object]]] = []
    _tile_recursive(entries, 0, dims, max_entries, groups)
    return groups


def _tile_recursive(
    entries: list[tuple[AABB, object]],
    axis: int,
    dims: int,
    max_entries: int,
    out: list[list[tuple[AABB, object]]],
) -> None:
    if len(entries) <= max_entries:
        out.append(entries)
        return
    ordered = sorted(entries, key=lambda e: e[0].center()[axis])
    if axis == dims - 1:
        for start in range(0, len(ordered), max_entries):
            out.append(ordered[start : start + max_entries])
        return
    pages = math.ceil(len(ordered) / max_entries)
    slabs = math.ceil(pages ** (1.0 / (dims - axis)))
    slab_size = math.ceil(len(ordered) / slabs)
    for start in range(0, len(ordered), slab_size):
        _tile_recursive(ordered[start : start + slab_size], axis + 1, dims, max_entries, out)
