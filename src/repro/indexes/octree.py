"""The octree (Jackins & Tanimoto 1980): 3-d space-oriented partitioning.

A thin specialization of :class:`~repro.indexes.region_tree.RegionTree` with
``dims = 3``.  See that module for the replication semantics the paper
discusses.
"""

from __future__ import annotations

from repro.geometry.aabb import AABB
from repro.indexes.region_tree import RegionTree
from repro.instrumentation.counters import Counters


class Octree(RegionTree):
    """3-d region octree with leaf-level replication of volumetric items."""

    def __init__(
        self,
        universe: AABB | None = None,
        capacity: int = 16,
        max_depth: int = 10,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(
            dims=3,
            universe=universe,
            capacity=capacity,
            max_depth=max_depth,
            counters=counters,
        )
