"""A disk-resident R-tree over the simulated page store.

This is the "R-Tree on Disk" half of Figure 2: every node lives in a 4 KB
page; visiting a node costs a page read unless the buffer pool holds it.  The
paper's protocol runs "with an initially cold cache and the cache is cleaned
between any two queries" — call :meth:`DiskRTree.clear_cache` between queries
to reproduce it.

The tree is built with STR packing (as in the paper's Appendix A) and supports
dynamic maintenance; structure and instrumentation mirror
:class:`~repro.indexes.rtree.RTree`, with page transfers charged on top.

With ``mapped=True`` nodes are stored as fixed binary records in a real file
behind :class:`~repro.storage.pagestore.MappedPageStore`, and the read path
serves **zero-copy NumPy views** of node pages through the buffer pool
(:meth:`BufferPool.read_view`): the pool's bounded residency (capacity,
hits/misses) is unchanged, but a miss maps the page instead of copying it.
Writes go write-through with a ``pool.drop`` so no stale view frame can
answer a rewritten page.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, boxes_to_array, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.bulkload import _tile
from repro.instrumentation.counters import Counters
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagestore import MappedPageStore, PageStore

# A node payload is (is_leaf, entries); entries are (AABB, eid | page_id).
_NodePayload = tuple[bool, list[tuple[AABB, int]]]


class DiskRTree(SpatialIndex):
    """STR-packed R-tree with page-granular storage accounting.

    Parameters
    ----------
    max_entries:
        Node capacity; with the default 4 KB pages and 3-d boxes this is
        roughly ``page_size / (6 floats + pointer)`` ≈ 70, but the paper-style
        default of 64 keeps nodes page-aligned.
    buffer_pages:
        LRU buffer pool capacity in pages (0 models a poolless cold run).
    mapped:
        Store nodes as binary records in a real mapped file and serve reads
        as zero-copy views (``int64 [is_leaf, count]`` header, ``float64``
        boxes, ``int64`` refs per page).  Node capacity is then bounded by
        ``page_size``; the encoder raises if ``max_entries`` boxes of the
        data's dimensionality cannot fit one page.
    """

    def __init__(
        self,
        max_entries: int = 64,
        min_entries: int | None = None,
        page_size: int = 4096,
        buffer_pages: int = 64,
        counters: Counters | None = None,
        mapped: bool = False,
    ) -> None:
        super().__init__(counters)
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries * 2 // 5)
        self.mapped = mapped
        self.store = self._new_store(page_size)
        self.pool = BufferPool(self.store, capacity=buffer_pages)
        self._root_page: int | None = None
        self._height = 0
        self._size = 0
        self._dims: int | None = None

    # -- storage protocol -------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop the buffer pool — the paper's between-queries cache clean."""
        self.pool.clear()

    def close(self) -> None:
        """Release the backing store (mapped mode unlinks its file)."""
        self.pool.drop_all()
        if isinstance(self.store, MappedPageStore):
            self.store.close()

    def _new_store(self, page_size: int) -> PageStore:
        if not self.mapped:
            return PageStore(page_size=page_size, counters=self.counters)
        fd, path = tempfile.mkstemp(prefix="disk-rtree-", suffix=".pages")
        os.close(fd)
        return MappedPageStore(path, page_size=page_size, counters=self.counters)

    def _reset_storage(self) -> None:
        """Fresh store + pool for a rebuild; mapped files are unlinked."""
        page_size = self.store.page_size
        capacity = self.pool.capacity
        self.close()
        self.store = self._new_store(page_size)
        self.pool = BufferPool(self.store, capacity=capacity)

    def _read(self, page_id: int) -> _NodePayload:
        if self.mapped:
            return self._decode_node(self.pool.read_view(page_id))
        return self.pool.read(page_id)

    def _write(self, page_id: int, payload: _NodePayload) -> None:
        if self.mapped:
            # Write-through: a mapped frame is a read-only view of the file,
            # so write-back is meaningless and a stale frame is a hazard.
            self.store.write(page_id, self._encode_node(payload))
            self.pool.drop(page_id)
            return
        self.pool.write(page_id, payload)

    def _allocate(self, payload: _NodePayload) -> int:
        if self.mapped:
            return self.store.allocate(self._encode_node(payload))
        page_id = self.store.allocate(payload)
        return page_id

    # -- mapped node codec --------------------------------------------------

    _HEADER_BYTES = 16  # int64 [is_leaf, count]

    def _encode_node(self, payload: _NodePayload) -> bytes:
        is_leaf, entries = payload
        count = len(entries)
        header = np.array([1 if is_leaf else 0, count], dtype=np.int64)
        if not count:
            return header.tobytes()
        boxes = boxes_to_array([box for box, _ in entries])
        refs = np.fromiter((ref for _, ref in entries), dtype=np.int64, count=count)
        blob = header.tobytes() + boxes.tobytes() + refs.tobytes()
        if len(blob) > self.store.page_size:
            raise ValueError(
                f"node of {count} {boxes.shape[2]}-d entries needs {len(blob)} "
                f"bytes; page size is {self.store.page_size} — lower "
                f"max_entries for mapped mode"
            )
        return blob

    def _node_views(self, buf: np.ndarray) -> tuple[bool, np.ndarray, np.ndarray]:
        """Decode one mapped page buffer into ``(is_leaf, boxes, refs)``
        where boxes/refs are zero-copy views into the mapping."""
        header = buf[: self._HEADER_BYTES].view(np.int64)
        is_leaf, count = bool(header[0]), int(header[1])
        dims = self._dims
        if not count or dims is None:
            return is_leaf, np.empty((0, 2, dims or 0)), np.empty(0, dtype=np.int64)
        box_end = self._HEADER_BYTES + count * 2 * dims * 8
        boxes = buf[self._HEADER_BYTES : box_end].view(np.float64)
        refs = buf[box_end : box_end + count * 8].view(np.int64)
        return is_leaf, boxes.reshape(count, 2, dims), refs

    def _decode_node(self, buf: np.ndarray) -> _NodePayload:
        is_leaf, boxes, refs = self._node_views(buf)
        entries = [
            (AABB(tuple(box[0]), tuple(box[1])), int(ref))
            for box, ref in zip(boxes, refs)
        ]
        return is_leaf, entries

    def _encode_arrays(
        self, is_leaf: bool, boxes: np.ndarray, refs: np.ndarray
    ) -> bytes:
        """:meth:`_encode_node` without the object payload: arrays in,
        record out.  The scalar maintenance path feeds node views (or copies
        of them) straight back through here, so an insert or delete never
        materializes per-entry ``AABB`` objects."""
        count = int(refs.shape[0])
        header = np.array([1 if is_leaf else 0, count], dtype=np.int64)
        if not count:
            return header.tobytes()
        blob = (
            header.tobytes()
            + np.ascontiguousarray(boxes, dtype=np.float64).tobytes()
            + np.ascontiguousarray(refs, dtype=np.int64).tobytes()
        )
        if len(blob) > self.store.page_size:
            raise ValueError(
                f"node of {count} {boxes.shape[2]}-d entries needs {len(blob)} "
                f"bytes; page size is {self.store.page_size} — lower "
                f"max_entries for mapped mode"
            )
        return blob

    def _write_arrays(
        self, page_id: int, is_leaf: bool, boxes: np.ndarray, refs: np.ndarray
    ) -> None:
        # Write-through + drop, exactly like the mapped branch of _write.
        self.store.write(page_id, self._encode_arrays(is_leaf, boxes, refs))
        self.pool.drop(page_id)

    def _allocate_arrays(
        self, is_leaf: bool, boxes: np.ndarray, refs: np.ndarray
    ) -> int:
        return self.store.allocate(self._encode_arrays(is_leaf, boxes, refs))

    def _node_arrays(self, page_id: int) -> tuple[bool, np.ndarray, np.ndarray]:
        """One node as ``(is_leaf, boxes (n,2,d), refs int64)``.

        Mapped mode serves the arrays as zero-copy views of the pooled page
        view — no byte copy, no AABB materialization; object mode packs the
        payload's boxes.  Residency accounting is the pool's either way.
        """
        if self.mapped:
            return self._node_views(self.pool.read_view(page_id))
        is_leaf, entries = self.pool.read(page_id)
        boxes = boxes_to_array([box for box, _ in entries], dims=self._dims)
        refs = np.fromiter(
            (ref for _, ref in entries), dtype=np.int64, count=len(entries)
        )
        return is_leaf, boxes, refs

    # -- maintenance -------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._reset_storage()
        if not materialized:
            self._root_page = None
            self._height = 0
            self._size = 0
            return
        self._dims = materialized[0][1].dims
        entries: list[tuple[AABB, int]] = [(box, eid) for eid, box in materialized]
        groups = _tile(entries, self._dims, self.max_entries)
        pages = [self._allocate((True, group)) for group in groups]
        boxes = [union_all(box for box, _ in group) for group in groups]
        self._root_page = self._pack_upper_levels(pages, boxes)
        self._size = len(materialized)

    def _pack_upper_levels(self, pages: list[int], boxes: list[AABB]) -> int:
        """Tile ``(mbr, page)`` entries upward until one root page remains.

        Shared by both bulk loads; sets ``_height`` (1 for the leaf level)
        and returns the root page id.
        """
        self._height = 1
        while len(pages) > 1:
            level_entries = list(zip(boxes, pages))
            groups = _tile(level_entries, self._dims, self.max_entries)
            pages = [self._allocate((False, group)) for group in groups]
            boxes = [union_all(box for box, _ in group) for group in groups]
            self._height += 1
        return pages[0]

    def bulk_load_external(
        self,
        items: Iterable[Item],
        budget: object = None,
        spill_dir: str | None = None,
        workers: int | None = None,
    ) -> None:
        """STR rebuild with the build working set bounded by ``budget``.

        Leaf groups stream out of the chunked external packer
        (:mod:`repro.exec.external_build`) and are allocated straight into
        the page store one at a time — the natural fit for this index: the
        leaf level never exists in memory at all, only the one-entry-per-
        leaf skeleton the upper levels tile (``max_entries``-fold smaller
        per level).  ``items`` is consumed streaming; ``workers`` >= 2
        tiles spilled merge slabs on the serving pool.
        """
        from repro.exec.external_build import external_leaf_groups

        self._reset_storage()
        pages: list[int] = []
        boxes: list[AABB] = []
        size = 0
        for group in external_leaf_groups(
            items,
            self.max_entries,
            budget=budget,  # type: ignore[arg-type]
            spill_dir=spill_dir,
            counters=self.counters,
            workers=workers,
        ):
            if not pages:
                self._dims = group[0][0].dims
            pages.append(self._allocate((True, group)))
            boxes.append(union_all(box for box, _ in group))
            size += len(group)
        if not pages:
            self._root_page = None
            self._height = 0
            self._size = 0
            return
        self._root_page = self._pack_upper_levels(pages, boxes)
        self._size = size

    def insert(self, eid: int, box: AABB) -> None:
        if self._dims is None:
            self._dims = box.dims
        if self.mapped:
            self._insert_mapped(eid, np.array([box.lo, box.hi], dtype=np.float64))
            return
        if self._root_page is None:
            self._root_page = self._allocate((True, [(box, eid)]))
            self._height = 1
            self._size = 1
            self.counters.inserts += 1
            return
        split = self._insert_recursive(self._root_page, self._height - 1, box, eid, 0)
        if split is not None:
            left_box, right_box, right_page = split
            new_root = self._allocate(
                (False, [(left_box, self._root_page), (right_box, right_page)])
            )
            self._root_page = new_root
            self._height += 1
        self._size += 1
        self.counters.inserts += 1

    def _insert_mapped(self, eid: int, box: np.ndarray) -> None:
        """Mapped-mode scalar insert: node pages stay arrays end to end."""
        if self._root_page is None:
            self._root_page = self._allocate_arrays(
                True, box[None], np.array([eid], dtype=np.int64)
            )
            self._height = 1
            self._size = 1
            self.counters.inserts += 1
            return
        split = self._insert_recursive_arrays(
            self._root_page, self._height - 1, box, eid, 0
        )
        if split is not None:
            left_box, right_box, right_page = split
            self._root_page = self._allocate_arrays(
                False,
                np.stack([left_box, right_box]),
                np.array([self._root_page, right_page], dtype=np.int64),
            )
            self._height += 1
        self._size += 1
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if self._root_page is None:
            raise KeyError(f"element {eid} not in index")
        if self.mapped:
            arr = np.array([box.lo, box.hi], dtype=np.float64)
            orphan_arrays: list[tuple[int, np.ndarray]] = []
            found = self._delete_recursive_arrays(
                self._root_page, self._height - 1, eid, arr, orphan_arrays
            )
            if not found:
                raise KeyError(f"element {eid} with box {box} not in index")
            self._size -= 1
            self.counters.deletes += 1
            # Shrink a single-child inner root.
            while self._height > 1:
                is_leaf, _, refs = self._node_arrays(self._root_page)
                if is_leaf or refs.shape[0] != 1:
                    break
                self._root_page = int(refs[0])
                self._height -= 1
            for orphan_eid, orphan_box in orphan_arrays:
                split = self._insert_recursive_arrays(
                    self._root_page, self._height - 1, orphan_box, orphan_eid, 0
                )
                if split is not None:
                    left_box, right_box, right_page = split
                    self._root_page = self._allocate_arrays(
                        False,
                        np.stack([left_box, right_box]),
                        np.array([self._root_page, right_page], dtype=np.int64),
                    )
                    self._height += 1
            if self._size == 0:
                self._root_page = None
                self._height = 0
            return
        orphans: list[tuple[int, AABB]] = []
        found = self._delete_recursive(self._root_page, self._height - 1, eid, box, orphans)
        if not found:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._size -= 1
        self.counters.deletes += 1
        # Shrink a single-child inner root.
        while self._height > 1:
            is_leaf, entries = self._read(self._root_page)
            if is_leaf or len(entries) != 1:
                break
            self._root_page = entries[0][1]
            self._height -= 1
        for orphan_eid, orphan_box in orphans:
            split = self._insert_recursive(self._root_page, self._height - 1, orphan_box, orphan_eid, 0)
            if split is not None:
                left_box, right_box, right_page = split
                self._root_page = self._allocate(
                    (False, [(left_box, self._root_page), (right_box, right_page)])
                )
                self._height += 1
        if self._size == 0:
            self._root_page = None
            self._height = 0

    # -- queries -------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._root_page is None:
            return []
        counters = self.counters
        results: list[int] = []
        stack = [self._root_page]
        while stack:
            page_id = stack.pop()
            is_leaf, entries = self._read(page_id)
            if is_leaf:
                for entry_box, eid in entries:
                    counters.elem_tests += 1
                    if entry_box.intersects(box):
                        results.append(eid)
            else:
                for entry_box, child_page in entries:
                    counters.node_tests += 1
                    if entry_box.intersects(box):
                        counters.pointer_follows += 1
                        stack.append(child_page)
        return results

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """One traversal for the whole batch: each page is read at most once.

        Amortizing page reads over all pending queries is the disk-side win
        of batching — the per-query loop re-reads the upper levels for every
        query (every one of them on a cold cache), the batch pass charges
        each visited page a single read.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        results: list[list[int]] = [[] for _ in range(m)]
        if self._root_page is None:
            return results
        if self._dims is not None and queries.shape[2] != self._dims:
            raise ValueError(f"queries have {queries.shape[2]} dims, index has {self._dims}")
        counters = self.counters
        stack: list[tuple[int, np.ndarray]] = [(self._root_page, np.arange(m))]
        while stack:
            page_id, active = stack.pop()
            # Arrays straight from the node page: in mapped mode these are
            # zero-copy views of the pooled page view.
            is_leaf, entry_boxes, refs = self._node_arrays(page_id)
            if entry_boxes.shape[0] == 0:
                continue
            pending = queries[active]
            overlap = np.all(
                (entry_boxes[:, None, 0, :] <= pending[None, :, 1, :])
                & (pending[None, :, 0, :] <= entry_boxes[:, None, 1, :]),
                axis=-1,
            )
            if is_leaf:
                counters.elem_tests += overlap.size
                rows, cols = np.nonzero(overlap)
                for entry_i, query_i in zip(rows.tolist(), cols.tolist()):
                    results[active[query_i]].append(int(refs[entry_i]))
            else:
                counters.node_tests += overlap.size
                for entry_i in range(entry_boxes.shape[0]):
                    sub = active[overlap[entry_i]]
                    if sub.size:
                        counters.pointer_follows += 1
                        stack.append((int(refs[entry_i]), sub))
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or self._root_page is None:
            return []
        counters = self.counters
        # (distance, kind, key, ref): nodes (kind 0) pop before elements
        # (kind 1) at equal distance, tied elements pop in id order — the
        # deterministic (distance, id) contract (see indexes/base.py).
        heap: list[tuple[float, int, int, int]] = [(0.0, 0, 0, self._root_page)]
        tiebreak = 1
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                results.append((dist, ref))
                continue
            is_leaf, entries = self._read(ref)
            for entry_box, child in entries:
                if is_leaf:
                    counters.elem_tests += 1
                else:
                    counters.node_tests += 1
                entry_dist = entry_box.min_distance_to_point(point)
                if is_leaf:
                    heapq.heappush(heap, (entry_dist, 1, child, child))
                else:
                    heapq.heappush(heap, (entry_dist, 0, tiebreak, child))
                    tiebreak += 1
                counters.heap_ops += 1
        return results

    def batch_knn(self, points: np.ndarray | Sequence[Sequence[float]], k: int) -> list[KNNResult]:
        """Shared best-first traversal: each page is read at most once per
        query chunk, so the batch amortizes page transfers exactly as
        :meth:`batch_range_query` does."""
        from repro.geometry.aabb import as_point_array
        from repro.indexes.batch_knn import best_first_batch_knn

        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or self._root_page is None:
            return [[] for _ in range(m)]
        if self._dims is not None and pts.shape[1] != self._dims:
            raise ValueError(f"points have {pts.shape[1]} dims, index has {self._dims}")

        # Each page is read and packed at most once per query chunk ("read
        # once" is the disk-side win the docstring claims); the pack is
        # released after every chunk so peak unpacked state stays bounded
        # by a chunk's working set, not the tree — persisting it would
        # defeat the bounded-memory residency the BufferPool models.
        packed: dict[int, tuple[bool, np.ndarray, object]] = {}

        def expand(handle: object) -> tuple[bool, np.ndarray, object]:
            cached = packed.get(handle)  # type: ignore[arg-type]
            if cached is not None:
                return cached
            is_leaf, boxes, ref_array = self._node_arrays(handle)  # type: ignore[arg-type]
            refs: object = ref_array if is_leaf else [int(r) for r in ref_array]
            packed[handle] = (is_leaf, boxes, refs)  # type: ignore[index]
            return packed[handle]  # type: ignore[index]

        return best_first_batch_knn(
            pts, k, self._size, self._root_page, expand, self.counters,
            after_chunk=packed.clear,
        )

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def page_count(self) -> int:
        return len(self.store)

    # -- internals -------------------------------------------------------------------

    def _insert_recursive(
        self, page_id: int, level: int, box: AABB, ref: int, target_level: int
    ) -> tuple[AABB, AABB, int] | None:
        """Returns (this_node_box, sibling_box, sibling_page) after a split."""
        is_leaf, entries = self._read(page_id)
        if level == target_level:
            entries = entries + [(box, ref)]
        else:
            best_index = _least_enlargement(entries, box)
            entry_box, child_page = entries[best_index]
            child_split = self._insert_recursive(child_page, level - 1, box, ref, target_level)
            entries = list(entries)
            if child_split is None:
                entries[best_index] = (entry_box.union(box), child_page)
            else:
                child_box, sibling_box, sibling_page = child_split
                entries[best_index] = (child_box, child_page)
                entries.append((sibling_box, sibling_page))
        if len(entries) > self.max_entries:
            ordered = sorted(entries, key=lambda e: e[0].center()[0])
            half = len(ordered) // 2
            left, right = ordered[:half], ordered[half:]
            self._write(page_id, (is_leaf, left))
            sibling_page = self._allocate((is_leaf, right))
            left_box = union_all(b for b, _ in left)
            right_box = union_all(b for b, _ in right)
            return (left_box, right_box, sibling_page)
        self._write(page_id, (is_leaf, entries))
        return None

    def _delete_recursive(
        self,
        page_id: int,
        level: int,
        eid: int,
        box: AABB,
        orphans: list[tuple[int, AABB]],
    ) -> bool:
        is_leaf, entries = self._read(page_id)
        if is_leaf:
            for i, (entry_box, ref) in enumerate(entries):
                if ref == eid and entry_box == box:
                    remaining = entries[:i] + entries[i + 1 :]
                    self._write(page_id, (True, remaining))
                    return True
            return False
        for i, (entry_box, child_page) in enumerate(entries):
            self.counters.node_tests += 1
            if not entry_box.intersects(box):
                continue
            if self._delete_recursive(child_page, level - 1, eid, box, orphans):
                child_is_leaf, child_entries = self._read(child_page)
                updated = list(entries)
                if len(child_entries) < self.min_entries:
                    # Dissolve the child: collect its leaf items as orphans
                    # (the caller reinserts them; logical size is unchanged).
                    del updated[i]
                    self._collect_items(child_page, orphans)
                elif child_entries:
                    updated[i] = (union_all(b for b, _ in child_entries), child_page)
                else:
                    del updated[i]
                self._write(page_id, (False, updated))
                return True
        return False

    def _collect_items(self, page_id: int, out: list[tuple[int, AABB]]) -> None:
        is_leaf, entries = self._read(page_id)
        if is_leaf:
            out.extend((ref, entry_box) for entry_box, ref in entries)
            return
        for _, child_page in entries:
            self._collect_items(child_page, out)

    # -- mapped scalar maintenance ---------------------------------------------
    #
    # The batch query paths already serve mapped nodes as zero-copy array
    # views (`_node_arrays`); these recursions give scalar insert/delete the
    # same treatment — no per-entry AABB materialization, node records are
    # re-encoded straight from arrays.  Structure, tie-breaks and counter
    # charges mirror the object-payload recursions bit for bit (min/max
    # unions, sequential volume products and stable center sorts reproduce
    # the AABB arithmetic exactly), so both modes grow identical trees.

    def _insert_recursive_arrays(
        self, page_id: int, level: int, box: np.ndarray, ref: int, target_level: int
    ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Returns (this_node_mbr, sibling_mbr, sibling_page) after a split."""
        is_leaf, boxes, refs = self._node_arrays(page_id)
        if level == target_level:
            new_boxes = np.concatenate([boxes, box[None]])
            new_refs = np.append(refs, np.int64(ref))
        else:
            best = _least_enlargement_arrays(boxes, box)
            child_page = int(refs[best])
            child_split = self._insert_recursive_arrays(
                child_page, level - 1, box, ref, target_level
            )
            # Copy out of the mapped views before mutating: the child
            # recursion re-encoded other pages, this node's record is about
            # to be rewritten underneath any live view of it.
            new_boxes = boxes.copy()
            new_refs = refs.copy()
            if child_split is None:
                new_boxes[best, 0] = np.minimum(new_boxes[best, 0], box[0])
                new_boxes[best, 1] = np.maximum(new_boxes[best, 1], box[1])
            else:
                child_box, sibling_box, sibling_page = child_split
                new_boxes[best] = child_box
                new_boxes = np.concatenate([new_boxes, sibling_box[None]])
                new_refs = np.append(new_refs, np.int64(sibling_page))
        if new_refs.shape[0] > self.max_entries:
            centers = (new_boxes[:, 0, 0] + new_boxes[:, 1, 0]) / 2.0
            order = np.argsort(centers, kind="stable")
            half = order.shape[0] // 2
            left, right = order[:half], order[half:]
            left_boxes, left_refs = new_boxes[left], new_refs[left]
            right_boxes, right_refs = new_boxes[right], new_refs[right]
            self._write_arrays(page_id, is_leaf, left_boxes, left_refs)
            sibling_page = self._allocate_arrays(is_leaf, right_boxes, right_refs)
            left_mbr = np.stack(
                [left_boxes[:, 0].min(axis=0), left_boxes[:, 1].max(axis=0)]
            )
            right_mbr = np.stack(
                [right_boxes[:, 0].min(axis=0), right_boxes[:, 1].max(axis=0)]
            )
            return left_mbr, right_mbr, sibling_page
        self._write_arrays(page_id, is_leaf, new_boxes, new_refs)
        return None

    def _delete_recursive_arrays(
        self,
        page_id: int,
        level: int,
        eid: int,
        box: np.ndarray,
        orphans: list[tuple[int, np.ndarray]],
    ) -> bool:
        is_leaf, boxes, refs = self._node_arrays(page_id)
        if is_leaf:
            if refs.shape[0] == 0:
                return False
            match = (
                (refs == eid)
                & np.all(boxes[:, 0] == box[0], axis=1)
                & np.all(boxes[:, 1] == box[1], axis=1)
            )
            hits = np.nonzero(match)[0]
            if hits.shape[0] == 0:
                return False
            keep = np.ones(refs.shape[0], dtype=bool)
            keep[int(hits[0])] = False
            self._write_arrays(page_id, True, boxes[keep], refs[keep])
            return True
        for i in range(refs.shape[0]):
            self.counters.node_tests += 1
            if not (np.all(boxes[i, 0] <= box[1]) and np.all(box[0] <= boxes[i, 1])):
                continue
            child_page = int(refs[i])
            if self._delete_recursive_arrays(child_page, level - 1, eid, box, orphans):
                _, child_boxes, child_refs = self._node_arrays(child_page)
                if child_refs.shape[0] < self.min_entries:
                    # Dissolve the child: collect its leaf items as orphans
                    # (the caller reinserts them; logical size is unchanged).
                    keep = np.ones(refs.shape[0], dtype=bool)
                    keep[i] = False
                    self._collect_items_arrays(child_page, orphans)
                    self._write_arrays(page_id, False, boxes[keep], refs[keep])
                elif child_refs.shape[0]:
                    new_boxes = boxes.copy()
                    new_boxes[i, 0] = child_boxes[:, 0].min(axis=0)
                    new_boxes[i, 1] = child_boxes[:, 1].max(axis=0)
                    self._write_arrays(page_id, False, new_boxes, refs)
                else:
                    keep = np.ones(refs.shape[0], dtype=bool)
                    keep[i] = False
                    self._write_arrays(page_id, False, boxes[keep], refs[keep])
                return True
        return False

    def _collect_items_arrays(
        self, page_id: int, out: list[tuple[int, np.ndarray]]
    ) -> None:
        is_leaf, boxes, refs = self._node_arrays(page_id)
        if is_leaf:
            # Copy each row out of the view: reinserting an earlier orphan
            # rewrites pages, and a live view of a rewritten page is stale.
            out.extend(
                (int(ref), boxes[j].copy()) for j, ref in enumerate(refs)
            )
            return
        for ref in refs.copy():
            self._collect_items_arrays(int(ref), out)


def _least_enlargement(entries: list[tuple[AABB, int]], box: AABB) -> int:
    """Guttman's subtree choice: least volume enlargement, ties by volume."""
    best_index = 0
    best_key: tuple[float, float] | None = None
    for i, (entry_box, _) in enumerate(entries):
        key = (entry_box.enlargement(box), entry_box.volume())
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index


def _least_enlargement_arrays(boxes: np.ndarray, box: np.ndarray) -> int:
    """:func:`_least_enlargement` over a ``(n, 2, d)`` box array.

    ``multiply.reduce`` over the last axis folds left to right like the
    scalar ``volume`` loop, and the stable lexsort keeps the first index on
    ties, so the chosen subtree is identical to the object-payload walk.
    """
    extents = boxes[:, 1, :] - boxes[:, 0, :]
    volumes = np.multiply.reduce(extents, axis=1)
    joined = np.maximum(boxes[:, 1, :], box[1]) - np.minimum(boxes[:, 0, :], box[0])
    enlargements = np.multiply.reduce(joined, axis=1) - volumes
    return int(np.lexsort((volumes, enlargements))[0])
