"""A disk-resident R-tree over the simulated page store.

This is the "R-Tree on Disk" half of Figure 2: every node lives in a 4 KB
page; visiting a node costs a page read unless the buffer pool holds it.  The
paper's protocol runs "with an initially cold cache and the cache is cleaned
between any two queries" — call :meth:`DiskRTree.clear_cache` between queries
to reproduce it.

The tree is built with STR packing (as in the paper's Appendix A) and supports
dynamic maintenance; structure and instrumentation mirror
:class:`~repro.indexes.rtree.RTree`, with page transfers charged on top.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, boxes_to_array, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.bulkload import _tile
from repro.instrumentation.counters import Counters
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagestore import PageStore

# A node payload is (is_leaf, entries); entries are (AABB, eid | page_id).
_NodePayload = tuple[bool, list[tuple[AABB, int]]]


class DiskRTree(SpatialIndex):
    """STR-packed R-tree with page-granular storage accounting.

    Parameters
    ----------
    max_entries:
        Node capacity; with the default 4 KB pages and 3-d boxes this is
        roughly ``page_size / (6 floats + pointer)`` ≈ 70, but the paper-style
        default of 64 keeps nodes page-aligned.
    buffer_pages:
        LRU buffer pool capacity in pages (0 models a poolless cold run).
    """

    def __init__(
        self,
        max_entries: int = 64,
        min_entries: int | None = None,
        page_size: int = 4096,
        buffer_pages: int = 64,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries * 2 // 5)
        self.store = PageStore(page_size=page_size, counters=self.counters)
        self.pool = BufferPool(self.store, capacity=buffer_pages)
        self._root_page: int | None = None
        self._height = 0
        self._size = 0
        self._dims: int | None = None

    # -- storage protocol -------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop the buffer pool — the paper's between-queries cache clean."""
        self.pool.clear()

    def _read(self, page_id: int) -> _NodePayload:
        return self.pool.read(page_id)

    def _write(self, page_id: int, payload: _NodePayload) -> None:
        self.pool.write(page_id, payload)

    def _allocate(self, payload: _NodePayload) -> int:
        page_id = self.store.allocate(payload)
        return page_id

    # -- maintenance -------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self.store = PageStore(page_size=self.store.page_size, counters=self.counters)
        self.pool = BufferPool(self.store, capacity=self.pool.capacity)
        if not materialized:
            self._root_page = None
            self._height = 0
            self._size = 0
            return
        self._dims = materialized[0][1].dims
        entries: list[tuple[AABB, int]] = [(box, eid) for eid, box in materialized]
        groups = _tile(entries, self._dims, self.max_entries)
        pages = [self._allocate((True, group)) for group in groups]
        boxes = [union_all(box for box, _ in group) for group in groups]
        self._root_page = self._pack_upper_levels(pages, boxes)
        self._size = len(materialized)

    def _pack_upper_levels(self, pages: list[int], boxes: list[AABB]) -> int:
        """Tile ``(mbr, page)`` entries upward until one root page remains.

        Shared by both bulk loads; sets ``_height`` (1 for the leaf level)
        and returns the root page id.
        """
        self._height = 1
        while len(pages) > 1:
            level_entries = list(zip(boxes, pages))
            groups = _tile(level_entries, self._dims, self.max_entries)
            pages = [self._allocate((False, group)) for group in groups]
            boxes = [union_all(box for box, _ in group) for group in groups]
            self._height += 1
        return pages[0]

    def bulk_load_external(
        self,
        items: Iterable[Item],
        budget: object = None,
        spill_dir: str | None = None,
    ) -> None:
        """STR rebuild with the build working set bounded by ``budget``.

        Leaf groups stream out of the chunked external packer
        (:mod:`repro.exec.external_build`) and are allocated straight into
        the page store one at a time — the natural fit for this index: the
        leaf level never exists in memory at all, only the one-entry-per-
        leaf skeleton the upper levels tile (``max_entries``-fold smaller
        per level).  ``items`` is consumed streaming.
        """
        from repro.exec.external_build import external_leaf_groups

        self.store = PageStore(page_size=self.store.page_size, counters=self.counters)
        self.pool = BufferPool(self.store, capacity=self.pool.capacity)
        pages: list[int] = []
        boxes: list[AABB] = []
        size = 0
        for group in external_leaf_groups(
            items,
            self.max_entries,
            budget=budget,  # type: ignore[arg-type]
            spill_dir=spill_dir,
            counters=self.counters,
        ):
            if not pages:
                self._dims = group[0][0].dims
            pages.append(self._allocate((True, group)))
            boxes.append(union_all(box for box, _ in group))
            size += len(group)
        if not pages:
            self._root_page = None
            self._height = 0
            self._size = 0
            return
        self._root_page = self._pack_upper_levels(pages, boxes)
        self._size = size

    def insert(self, eid: int, box: AABB) -> None:
        if self._dims is None:
            self._dims = box.dims
        if self._root_page is None:
            self._root_page = self._allocate((True, [(box, eid)]))
            self._height = 1
            self._size = 1
            self.counters.inserts += 1
            return
        split = self._insert_recursive(self._root_page, self._height - 1, box, eid, 0)
        if split is not None:
            left_box, right_box, right_page = split
            new_root = self._allocate(
                (False, [(left_box, self._root_page), (right_box, right_page)])
            )
            self._root_page = new_root
            self._height += 1
        self._size += 1
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if self._root_page is None:
            raise KeyError(f"element {eid} not in index")
        orphans: list[tuple[int, AABB]] = []
        found = self._delete_recursive(self._root_page, self._height - 1, eid, box, orphans)
        if not found:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._size -= 1
        self.counters.deletes += 1
        # Shrink a single-child inner root.
        while self._height > 1:
            is_leaf, entries = self._read(self._root_page)
            if is_leaf or len(entries) != 1:
                break
            self._root_page = entries[0][1]
            self._height -= 1
        for orphan_eid, orphan_box in orphans:
            split = self._insert_recursive(self._root_page, self._height - 1, orphan_box, orphan_eid, 0)
            if split is not None:
                left_box, right_box, right_page = split
                self._root_page = self._allocate(
                    (False, [(left_box, self._root_page), (right_box, right_page)])
                )
                self._height += 1
        if self._size == 0:
            self._root_page = None
            self._height = 0

    # -- queries -------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        if self._root_page is None:
            return []
        counters = self.counters
        results: list[int] = []
        stack = [self._root_page]
        while stack:
            page_id = stack.pop()
            is_leaf, entries = self._read(page_id)
            if is_leaf:
                for entry_box, eid in entries:
                    counters.elem_tests += 1
                    if entry_box.intersects(box):
                        results.append(eid)
            else:
                for entry_box, child_page in entries:
                    counters.node_tests += 1
                    if entry_box.intersects(box):
                        counters.pointer_follows += 1
                        stack.append(child_page)
        return results

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """One traversal for the whole batch: each page is read at most once.

        Amortizing page reads over all pending queries is the disk-side win
        of batching — the per-query loop re-reads the upper levels for every
        query (every one of them on a cold cache), the batch pass charges
        each visited page a single read.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        results: list[list[int]] = [[] for _ in range(m)]
        if self._root_page is None:
            return results
        if self._dims is not None and queries.shape[2] != self._dims:
            raise ValueError(f"queries have {queries.shape[2]} dims, index has {self._dims}")
        counters = self.counters
        stack: list[tuple[int, np.ndarray]] = [(self._root_page, np.arange(m))]
        while stack:
            page_id, active = stack.pop()
            is_leaf, entries = self._read(page_id)
            if not entries:
                continue
            entry_boxes = boxes_to_array([box for box, _ in entries])
            pending = queries[active]
            overlap = np.all(
                (entry_boxes[:, None, 0, :] <= pending[None, :, 1, :])
                & (pending[None, :, 0, :] <= entry_boxes[:, None, 1, :]),
                axis=-1,
            )
            if is_leaf:
                counters.elem_tests += overlap.size
                rows, cols = np.nonzero(overlap)
                for entry_i, query_i in zip(rows.tolist(), cols.tolist()):
                    results[active[query_i]].append(entries[entry_i][1])
            else:
                counters.node_tests += overlap.size
                for entry_i, (_, child_page) in enumerate(entries):
                    sub = active[overlap[entry_i]]
                    if sub.size:
                        counters.pointer_follows += 1
                        stack.append((child_page, sub))
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0 or self._root_page is None:
            return []
        counters = self.counters
        # (distance, kind, key, ref): nodes (kind 0) pop before elements
        # (kind 1) at equal distance, tied elements pop in id order — the
        # deterministic (distance, id) contract (see indexes/base.py).
        heap: list[tuple[float, int, int, int]] = [(0.0, 0, 0, self._root_page)]
        tiebreak = 1
        results: list[tuple[float, int]] = []
        while heap and len(results) < k:
            dist, kind, _, ref = heapq.heappop(heap)
            counters.heap_ops += 1
            if kind == 1:
                results.append((dist, ref))
                continue
            is_leaf, entries = self._read(ref)
            for entry_box, child in entries:
                if is_leaf:
                    counters.elem_tests += 1
                else:
                    counters.node_tests += 1
                entry_dist = entry_box.min_distance_to_point(point)
                if is_leaf:
                    heapq.heappush(heap, (entry_dist, 1, child, child))
                else:
                    heapq.heappush(heap, (entry_dist, 0, tiebreak, child))
                    tiebreak += 1
                counters.heap_ops += 1
        return results

    def batch_knn(self, points: np.ndarray | Sequence[Sequence[float]], k: int) -> list[KNNResult]:
        """Shared best-first traversal: each page is read at most once per
        query chunk, so the batch amortizes page transfers exactly as
        :meth:`batch_range_query` does."""
        from repro.geometry.aabb import as_point_array
        from repro.indexes.batch_knn import best_first_batch_knn

        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or self._root_page is None:
            return [[] for _ in range(m)]
        if self._dims is not None and pts.shape[1] != self._dims:
            raise ValueError(f"points have {pts.shape[1]} dims, index has {self._dims}")

        # Each page is read and packed at most once per query chunk ("read
        # once" is the disk-side win the docstring claims); the pack is
        # released after every chunk so peak unpacked state stays bounded
        # by a chunk's working set, not the tree — persisting it would
        # defeat the bounded-memory residency the BufferPool models.
        packed: dict[int, tuple[bool, np.ndarray, object]] = {}

        def expand(handle: object) -> tuple[bool, np.ndarray, object]:
            cached = packed.get(handle)  # type: ignore[arg-type]
            if cached is not None:
                return cached
            is_leaf, entries = self._read(handle)  # type: ignore[arg-type]
            boxes = boxes_to_array([box for box, _ in entries], dims=pts.shape[1])
            if is_leaf:
                refs: object = np.fromiter(
                    (ref for _, ref in entries), dtype=np.int64, count=len(entries)
                )
            else:
                refs = [child for _, child in entries]
            packed[handle] = (is_leaf, boxes, refs)  # type: ignore[index]
            return packed[handle]  # type: ignore[index]

        return best_first_batch_knn(
            pts, k, self._size, self._root_page, expand, self.counters,
            after_chunk=packed.clear,
        )

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def page_count(self) -> int:
        return len(self.store)

    # -- internals -------------------------------------------------------------------

    def _insert_recursive(
        self, page_id: int, level: int, box: AABB, ref: int, target_level: int
    ) -> tuple[AABB, AABB, int] | None:
        """Returns (this_node_box, sibling_box, sibling_page) after a split."""
        is_leaf, entries = self._read(page_id)
        if level == target_level:
            entries = entries + [(box, ref)]
        else:
            best_index = _least_enlargement(entries, box)
            entry_box, child_page = entries[best_index]
            child_split = self._insert_recursive(child_page, level - 1, box, ref, target_level)
            entries = list(entries)
            if child_split is None:
                entries[best_index] = (entry_box.union(box), child_page)
            else:
                child_box, sibling_box, sibling_page = child_split
                entries[best_index] = (child_box, child_page)
                entries.append((sibling_box, sibling_page))
        if len(entries) > self.max_entries:
            ordered = sorted(entries, key=lambda e: e[0].center()[0])
            half = len(ordered) // 2
            left, right = ordered[:half], ordered[half:]
            self._write(page_id, (is_leaf, left))
            sibling_page = self._allocate((is_leaf, right))
            left_box = union_all(b for b, _ in left)
            right_box = union_all(b for b, _ in right)
            return (left_box, right_box, sibling_page)
        self._write(page_id, (is_leaf, entries))
        return None

    def _delete_recursive(
        self,
        page_id: int,
        level: int,
        eid: int,
        box: AABB,
        orphans: list[tuple[int, AABB]],
    ) -> bool:
        is_leaf, entries = self._read(page_id)
        if is_leaf:
            for i, (entry_box, ref) in enumerate(entries):
                if ref == eid and entry_box == box:
                    remaining = entries[:i] + entries[i + 1 :]
                    self._write(page_id, (True, remaining))
                    return True
            return False
        for i, (entry_box, child_page) in enumerate(entries):
            self.counters.node_tests += 1
            if not entry_box.intersects(box):
                continue
            if self._delete_recursive(child_page, level - 1, eid, box, orphans):
                child_is_leaf, child_entries = self._read(child_page)
                updated = list(entries)
                if len(child_entries) < self.min_entries:
                    # Dissolve the child: collect its leaf items as orphans
                    # (the caller reinserts them; logical size is unchanged).
                    del updated[i]
                    self._collect_items(child_page, orphans)
                elif child_entries:
                    updated[i] = (union_all(b for b, _ in child_entries), child_page)
                else:
                    del updated[i]
                self._write(page_id, (False, updated))
                return True
        return False

    def _collect_items(self, page_id: int, out: list[tuple[int, AABB]]) -> None:
        is_leaf, entries = self._read(page_id)
        if is_leaf:
            out.extend((ref, entry_box) for entry_box, ref in entries)
            return
        for _, child_page in entries:
            self._collect_items(child_page, out)


def _least_enlargement(entries: list[tuple[AABB, int]], box: AABB) -> int:
    """Guttman's subtree choice: least volume enlargement, ties by volume."""
    best_index = 0
    best_key: tuple[float, float] | None = None
    for i, (entry_box, _) in enumerate(entries):
        key = (entry_box.enlargement(box), entry_box.volume())
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index
