"""The no-index baseline: a linear scan over the dataset.

Section 4 of the paper argues that under massive updates "using no index,
i.e., a linear scan over the dataset, may be faster" than maintaining any
structure.  The scan is also the correctness oracle for every other index in
the test suite: whatever an index returns for a query must equal the scan's
answer exactly.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16  # two float64 coordinates


class LinearScan(SpatialIndex):
    """Array of ``(id, box)`` pairs; every query touches every element.

    Updates are O(1) dictionary operations — the structural cost the paper
    credits the scan with ("it has no memory overhead" and needs no
    maintenance) — while queries are O(n) with one element intersection test
    each, which is exactly what the counters report.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        super().__init__(counters)
        self._boxes: dict[int, AABB] = {}

    def bulk_load(self, items: Iterable[Item]) -> None:
        self._boxes = dict(validate_items(items))

    def insert(self, eid: int, box: AABB) -> None:
        self._boxes[eid] = box
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes:
            raise KeyError(f"element {eid} not in index")
        del self._boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        if eid not in self._boxes:
            raise KeyError(f"element {eid} not in index")
        self._boxes[eid] = new_box
        self.counters.updates += 1

    def range_query(self, box: AABB) -> list[int]:
        counters = self.counters
        results = []
        for eid, elem_box in self._boxes.items():
            counters.elem_tests += 1
            if elem_box.intersects(box):
                results.append(eid)
        counters.bytes_touched += len(self._boxes) * (box.dims * _BOX_BYTES_PER_DIM + 8)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0:
            return []
        counters = self.counters
        heap: list[tuple[float, int]] = []  # max-heap via negated distances
        for eid, elem_box in self._boxes.items():
            counters.elem_tests += 1
            dist = elem_box.min_distance_to_point(point)
            if len(heap) < k:
                heapq.heappush(heap, (-dist, eid))
                counters.heap_ops += 1
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, eid))
                counters.heap_ops += 1
        counters.bytes_touched += len(self._boxes) * (len(tuple(point)) * _BOX_BYTES_PER_DIM + 8)
        return sorted((-neg, eid) for neg, eid in heap)

    def __len__(self) -> int:
        return len(self._boxes)

    def memory_bytes(self) -> int:
        if not self._boxes:
            return 0
        dims = next(iter(self._boxes.values())).dims
        return len(self._boxes) * (dims * _BOX_BYTES_PER_DIM + 8)
