"""The no-index baseline: a linear scan over the dataset.

Section 4 of the paper argues that under massive updates "using no index,
i.e., a linear scan over the dataset, may be faster" than maintaining any
structure.  The scan is also the correctness oracle for every other index in
the test suite: whatever an index returns for a query must equal the scan's
answer exactly.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.aabb import (
    AABB,
    as_box_array,
    as_point_array,
    batch_min_distance_to_points,
    boxes_to_array,
)
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16  # two float64 coordinates

# Chunk batched query-vs-data matrices to ~16M entries (~16 MB of bools) so a
# 10k-query × 100k-item batch never materializes a gigabyte at once.
_BATCH_CHUNK_ENTRIES = 1 << 24


class LinearScan(SpatialIndex):
    """Array of ``(id, box)`` pairs; every query touches every element.

    Updates are O(1) dictionary operations — the structural cost the paper
    credits the scan with ("it has no memory overhead" and needs no
    maintenance) — while queries are O(n) with one element intersection test
    each, which is exactly what the counters report.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        super().__init__(counters)
        self._boxes: dict[int, AABB] = {}
        self._dense: tuple[np.ndarray, np.ndarray] | None = None  # (eids, boxes)

    def bulk_load(self, items: Iterable[Item]) -> None:
        self._boxes = dict(validate_items(items))
        self._dense = None

    def insert(self, eid: int, box: AABB) -> None:
        self._boxes[eid] = box
        self._dense = None
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes:
            raise KeyError(f"element {eid} not in index")
        del self._boxes[eid]
        self._dense = None
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        if eid not in self._boxes:
            raise KeyError(f"element {eid} not in index")
        self._boxes[eid] = new_box
        self._dense = None
        self.counters.updates += 1

    def range_query(self, box: AABB) -> list[int]:
        counters = self.counters
        results = []
        for eid, elem_box in self._boxes.items():
            counters.elem_tests += 1
            if elem_box.intersects(box):
                results.append(eid)
        counters.bytes_touched += len(self._boxes) * (box.dims * _BOX_BYTES_PER_DIM + 8)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        if k <= 0:
            return []
        counters = self.counters
        # Max-heap on negated (distance, id) so the worst survivor is the
        # largest (distance, id) pair — replacement is lexicographic, which
        # yields the exact (distance, id)-ordered answer the contract pins.
        heap: list[tuple[float, int]] = []
        for eid, elem_box in self._boxes.items():
            counters.elem_tests += 1
            dist = elem_box.min_distance_to_point(point)
            if len(heap) < k:
                heapq.heappush(heap, (-dist, -eid))
                counters.heap_ops += 1
            elif (dist, eid) < (-heap[0][0], -heap[0][1]):
                heapq.heapreplace(heap, (-dist, -eid))
                counters.heap_ops += 1
        counters.bytes_touched += len(self._boxes) * (len(tuple(point)) * _BOX_BYTES_PER_DIM + 8)
        return sorted((-neg_d, -neg_e) for neg_d, neg_e in heap)

    # -- batch queries (vectorized) -----------------------------------------

    def _dense_view(self) -> tuple[np.ndarray, np.ndarray]:
        """The dataset as parallel ``(n,)`` id and ``(n, 2, d)`` box arrays.

        Rebuilt lazily after any mutation; the scan is the batch oracle, so
        the packed copy pays for itself after a single batched scan.
        """
        if self._dense is None:
            eids = np.fromiter(self._boxes.keys(), dtype=np.int64, count=len(self._boxes))
            self._dense = (eids, boxes_to_array(list(self._boxes.values())))
        return self._dense

    def batch_range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        queries = as_box_array(boxes)
        m = queries.shape[0]
        results: list[list[int]] = [[] for _ in range(m)]
        n = len(self._boxes)
        if m == 0 or n == 0:
            return results
        counters = self.counters
        eids, data = self._dense_view()
        dims = data.shape[2]
        if queries.shape[2] != dims:
            raise ValueError(f"queries have {queries.shape[2]} dims, index has {dims}")
        data_lo = data[:, 0, :]
        data_hi = data[:, 1, :]
        chunk = max(1, _BATCH_CHUNK_ENTRIES // n)
        for start in range(0, m, chunk):
            q = queries[start : start + chunk]
            overlap = np.all(
                (q[:, None, 0, :] <= data_hi[None, :, :])
                & (data_lo[None, :, :] <= q[:, None, 1, :]),
                axis=-1,
            )
            q_rows, hits = np.nonzero(overlap)
            for qi, eid in zip((q_rows + start).tolist(), eids[hits].tolist()):
                results[qi].append(eid)
        counters.elem_tests += m * n
        counters.bytes_touched += m * n * (dims * _BOX_BYTES_PER_DIM + 8)
        return results

    def batch_knn(
        self, points: np.ndarray | Sequence[Sequence[float]], k: int
    ) -> list[KNNResult]:
        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        n = len(self._boxes)
        if k <= 0 or n == 0:
            return [[] for _ in range(m)]
        counters = self.counters
        eids, data = self._dense_view()
        dims = data.shape[2]
        results: list[KNNResult] = []
        chunk = max(1, _BATCH_CHUNK_ENTRIES // n)
        kk = min(k, n)
        for start in range(0, m, chunk):
            dists = batch_min_distance_to_points(data, pts[start : start + chunk])
            for row in range(dists.shape[0]):
                row_d = dists[row]
                if kk < n:
                    # argpartition splits ties at the k-th distance
                    # arbitrarily; widen to every element at or under the
                    # pivot so the (distance, id) tie-break stays exact.
                    part = np.argpartition(row_d, kk - 1)[:kk]
                    cols = np.nonzero(row_d <= row_d[part].max())[0]
                else:
                    cols = np.arange(n)
                order = np.lexsort((eids[cols], row_d[cols]))[:kk]
                chosen = cols[order]
                results.append(list(zip(row_d[chosen].tolist(), eids[chosen].tolist())))
                counters.heap_ops += kk
        counters.elem_tests += m * n
        counters.bytes_touched += m * n * (dims * _BOX_BYTES_PER_DIM + 8)
        return results

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        eids, data = self._dense_view()
        return eids.copy(), data.copy()

    def __len__(self) -> int:
        return len(self._boxes)

    def memory_bytes(self) -> int:
        if not self._boxes:
            return 0
        dims = next(iter(self._boxes.values())).dims
        return len(self._boxes) * (dims * _BOX_BYTES_PER_DIM + 8)
