"""Exact Euclidean distance computations between low-level shapes.

These are the refinement predicates of the library: indexes filter by AABB,
then call into this module to decide exactly.  All functions accept plain
coordinate sequences so they compose with tuples, lists and numpy rows alike.
"""

from __future__ import annotations

import math
from typing import Sequence

_EPS = 1e-12


def point_point_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two points of equal dimensionality."""
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(p, q)))


def point_box_distance(point: Sequence[float], lo: Sequence[float], hi: Sequence[float]) -> float:
    """Distance from a point to a box given as lo/hi corners (0 inside).

    Uses ``math.hypot`` to stay exact for sub-1e-154 gaps (squared sums
    underflow), matching :meth:`repro.geometry.AABB.min_distance_to_point`.
    """
    gaps = []
    for p, a, b in zip(point, lo, hi):
        if p < a:
            gaps.append(a - p)
        elif p > b:
            gaps.append(p - b)
    if not gaps:
        return 0.0
    return math.hypot(*gaps)


def point_segment_distance(
    point: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> float:
    """Distance from ``point`` to the segment ``a -> b``.

    Projects the point on the supporting line and clamps the parameter to
    ``[0, 1]``; degenerates gracefully to point/point distance when the
    segment has (near-)zero length.
    """
    ab = [q - p for p, q in zip(a, b)]
    ap = [q - p for p, q in zip(a, point)]
    denom = sum(d * d for d in ab)
    if denom < _EPS:
        # A (near-)degenerate segment still has two endpoints a hair
        # apart; take the nearer one so the distance never exceeds the
        # distance to either endpoint.
        return min(
            point_point_distance(point, a), point_point_distance(point, b)
        )
    t = sum(d * e for d, e in zip(ab, ap)) / denom
    t = max(0.0, min(1.0, t))
    closest = [p + t * d for p, d in zip(a, ab)]
    return point_point_distance(point, closest)


def segment_segment_distance(
    p1: Sequence[float],
    q1: Sequence[float],
    p2: Sequence[float],
    q2: Sequence[float],
) -> float:
    """Minimum distance between segments ``p1 -> q1`` and ``p2 -> q2``.

    Implements the classic clamped closed-form solution (Ericson, *Real-Time
    Collision Detection*, §5.1.9).  Works in any dimension; handles both
    segments degenerating to points.
    """
    d1 = [b - a for a, b in zip(p1, q1)]
    d2 = [b - a for a, b in zip(p2, q2)]
    r = [a - b for a, b in zip(p1, p2)]
    a = sum(x * x for x in d1)
    e = sum(x * x for x in d2)
    f = sum(x * y for x, y in zip(d2, r))

    if a < _EPS and e < _EPS:
        return point_point_distance(p1, p2)
    if a < _EPS:
        s = 0.0
        t = max(0.0, min(1.0, f / e))
    else:
        c = sum(x * y for x, y in zip(d1, r))
        if e < _EPS:
            t = 0.0
            s = max(0.0, min(1.0, -c / a))
        else:
            b = sum(x * y for x, y in zip(d1, d2))
            denom = a * e - b * b
            if denom > _EPS:
                s = max(0.0, min(1.0, (b * f - c * e) / denom))
            else:
                # Parallel segments: pick s = 0 and rely on the t clamp below.
                s = 0.0
            t = (b * s + f) / e
            if t < 0.0:
                t = 0.0
                s = max(0.0, min(1.0, -c / a))
            elif t > 1.0:
                t = 1.0
                s = max(0.0, min(1.0, (b - c) / a))

    c1 = [p + s * d for p, d in zip(p1, d1)]
    c2 = [p + t * d for p, d in zip(p2, d2)]
    return point_point_distance(c1, c2)
