"""Vectorized pair-refinement kernels.

The join subsystem's filter phase produces *candidate pairs* — element id
pairs whose bounding boxes pass a cheap test.  Refinement decides the exact
predicate on the underlying geometry.  Scalar refinement (one
``Capsule.distance_to`` call per candidate) spends more wall clock on Python
dispatch than on arithmetic once joins produce candidates by the hundred
thousand; the kernels below answer a whole candidate array at once.

Each kernel mirrors the arithmetic of its scalar counterpart in
:mod:`repro.geometry.distance` (same Ericson clamped closed form, same
degeneracy thresholds), so scalar and batched refinement agree to float
round-off — the join oracle suite relies on that.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.geometry.primitives import Capsule

_EPS = 1e-12


def pack_segments(capsules: Iterable[Capsule]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack capsules into ``(starts, ends, radii)`` arrays for the kernels."""
    materialized = capsules if isinstance(capsules, list) else list(capsules)
    n = len(materialized)
    if n == 0:
        return (
            np.empty((0, 0), dtype=np.float64),
            np.empty((0, 0), dtype=np.float64),
            np.empty(0, dtype=np.float64),
        )
    dims = materialized[0].dims
    starts = np.empty((n, dims), dtype=np.float64)
    ends = np.empty((n, dims), dtype=np.float64)
    radii = np.empty(n, dtype=np.float64)
    for row, capsule in enumerate(materialized):
        starts[row] = capsule.a
        ends[row] = capsule.b
        radii[row] = capsule.radius
    return starts, ends, radii


def batch_segment_distances(
    p1: np.ndarray, q1: np.ndarray, p2: np.ndarray, q2: np.ndarray
) -> np.ndarray:
    """Pairwise minimum distances between segments ``p1->q1`` and ``p2->q2``.

    All inputs are ``(n, d)`` arrays; row ``i`` of the result is the distance
    between segment ``p1[i]->q1[i]`` and segment ``p2[i]->q2[i]``.  This is
    the row-wise (zipped) form the join refinement needs — candidate pairs
    arrive as parallel arrays, not as a cross product.

    Vectorized Ericson §5.1.9 with the same branch structure as the scalar
    :func:`repro.geometry.distance.segment_segment_distance`: degenerate
    segments (squared length below ``1e-12``) collapse to point cases, the
    parallel-segment branch picks ``s = 0``, and out-of-range ``t`` values
    re-derive ``s`` from the clamped ``t``.
    """
    p1 = np.asarray(p1, dtype=np.float64)
    q1 = np.asarray(q1, dtype=np.float64)
    p2 = np.asarray(p2, dtype=np.float64)
    q2 = np.asarray(q2, dtype=np.float64)
    d1 = q1 - p1
    d2 = q2 - p2
    r = p1 - p2
    a = np.einsum("nd,nd->n", d1, d1)
    e = np.einsum("nd,nd->n", d2, d2)
    f = np.einsum("nd,nd->n", d2, r)
    c = np.einsum("nd,nd->n", d1, r)
    b = np.einsum("nd,nd->n", d1, d2)

    a_degenerate = a < _EPS
    e_degenerate = e < _EPS
    # Guarded divisors: the masked-out lanes never contribute to the result.
    a_safe = np.where(a_degenerate, 1.0, a)
    e_safe = np.where(e_degenerate, 1.0, e)

    # General case: clamp s on the infinite-line solution, derive t, then
    # re-derive s wherever t left [0, 1].
    denom = a * e - b * b
    s = np.where(denom > _EPS, np.clip((b * f - c * e) / np.where(denom > _EPS, denom, 1.0), 0.0, 1.0), 0.0)
    t = (b * s + f) / e_safe
    t_low = t < 0.0
    t_high = t > 1.0
    s = np.where(t_low, np.clip(-c / a_safe, 0.0, 1.0), s)
    s = np.where(t_high, np.clip((b - c) / a_safe, 0.0, 1.0), s)
    t = np.clip(t, 0.0, 1.0)

    # Degenerate overrides, in the scalar branch order.
    s = np.where(a_degenerate, 0.0, s)
    t = np.where(a_degenerate, np.clip(f / e_safe, 0.0, 1.0), t)
    t = np.where(e_degenerate, 0.0, t)
    s = np.where(e_degenerate & ~a_degenerate, np.clip(-c / a_safe, 0.0, 1.0), s)
    both = a_degenerate & e_degenerate
    s = np.where(both, 0.0, s)
    t = np.where(both, 0.0, t)

    closest1 = p1 + s[:, None] * d1
    closest2 = p2 + t[:, None] * d2
    gap = closest1 - closest2
    return np.sqrt(np.einsum("nd,nd->n", gap, gap))


def batch_capsule_gaps(
    p1: np.ndarray,
    q1: np.ndarray,
    r1: np.ndarray,
    p2: np.ndarray,
    q2: np.ndarray,
    r2: np.ndarray,
) -> np.ndarray:
    """Row-wise surface-to-surface capsule gaps (negative = overlap depth).

    The vectorized counterpart of :meth:`repro.geometry.Capsule.distance_to`:
    core segment distance minus both radii, for every candidate pair at once.
    """
    return batch_segment_distances(p1, q1, p2, q2) - np.asarray(r1) - np.asarray(r2)


def batch_box_gaps(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean gaps between box pairs (0 when intersecting).

    ``boxes_a`` and ``boxes_b`` are parallel ``(n, 2, d)`` arrays; the result
    matches :meth:`repro.geometry.AABB.min_distance_to_box` per row (up to
    the sub-1e-154 underflow the squared-sum form admits).
    """
    boxes_a = np.asarray(boxes_a, dtype=np.float64)
    boxes_b = np.asarray(boxes_b, dtype=np.float64)
    gaps = np.maximum(
        np.maximum(boxes_b[:, 0, :] - boxes_a[:, 1, :], boxes_a[:, 0, :] - boxes_b[:, 1, :]),
        0.0,
    )
    return np.sqrt(np.einsum("nd,nd->n", gaps, gaps))
