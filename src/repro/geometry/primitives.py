"""Geometric primitives used by simulation datasets.

Simulation models are built from a handful of shapes:

* :class:`Point` — n-body particles, mesh vertices;
* :class:`Sphere` — soma of a neuron, celestial bodies with a radius;
* :class:`Segment` — a bare line segment, building block of capsules;
* :class:`Capsule` — a cylinder with hemispherical caps, the standard model of
  a neuron morphology segment (the EDBT'14 dataset models each neuron with
  thousands of cylinders; capsules are the closed-form-distance variant).

Every primitive exposes ``bounds`` returning the minimum AABB, which is what
gets inserted into indexes, plus exact predicates used for refinement.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.aabb import AABB
from repro.geometry.distance import (
    point_point_distance,
    point_segment_distance,
    segment_segment_distance,
)


class Point:
    """A bare point with an identity-free value semantics."""

    __slots__ = ("coords",)

    def __init__(self, coords: Sequence[float]) -> None:
        self.coords = tuple(float(c) for c in coords)

    @property
    def dims(self) -> int:
        return len(self.coords)

    def bounds(self) -> AABB:
        return AABB.from_point(self.coords)

    def distance_to(self, other: "Point") -> float:
        return point_point_distance(self.coords, other.coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        return f"Point({self.coords})"


class Sphere:
    """A ball given by center and radius."""

    __slots__ = ("center", "radius")

    def __init__(self, center: Sequence[float], radius: float) -> None:
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        self.center = tuple(float(c) for c in center)
        self.radius = float(radius)

    @property
    def dims(self) -> int:
        return len(self.center)

    def bounds(self) -> AABB:
        return AABB.from_center(self.center, self.radius)

    def contains_point(self, point: Sequence[float]) -> bool:
        return point_point_distance(self.center, point) <= self.radius

    def intersects_sphere(self, other: "Sphere") -> bool:
        gap = point_point_distance(self.center, other.center)
        return gap <= self.radius + other.radius

    def __repr__(self) -> str:
        return f"Sphere(center={self.center}, radius={self.radius})"


class Segment:
    """A line segment between two endpoints."""

    __slots__ = ("a", "b")

    def __init__(self, a: Sequence[float], b: Sequence[float]) -> None:
        self.a = tuple(float(c) for c in a)
        self.b = tuple(float(c) for c in b)
        if len(self.a) != len(self.b):
            raise ValueError("segment endpoints have different dimensionality")

    @property
    def dims(self) -> int:
        return len(self.a)

    def length(self) -> float:
        return point_point_distance(self.a, self.b)

    def midpoint(self) -> tuple[float, ...]:
        return tuple((p + q) / 2.0 for p, q in zip(self.a, self.b))

    def bounds(self) -> AABB:
        lo = tuple(min(p, q) for p, q in zip(self.a, self.b))
        hi = tuple(max(p, q) for p, q in zip(self.a, self.b))
        return AABB(lo, hi)

    def distance_to_point(self, point: Sequence[float]) -> float:
        return point_segment_distance(point, self.a, self.b)

    def distance_to_segment(self, other: "Segment") -> float:
        return segment_segment_distance(self.a, self.b, other.a, other.b)

    def __repr__(self) -> str:
        return f"Segment({self.a} -> {self.b})"


class Capsule:
    """A cylinder with hemispherical caps: all points within ``radius`` of a
    core segment.

    Capsules model neuron morphology segments.  Unlike flat-capped cylinders
    they admit an exact closed-form pairwise distance (segment/segment
    distance minus radii), which makes them the shape of choice for synapse
    detection joins ("wherever two neurons are within a given distance of each
    other, they will form a synapse").
    """

    __slots__ = ("axis", "radius")

    def __init__(self, a: Sequence[float], b: Sequence[float], radius: float) -> None:
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        self.axis = Segment(a, b)
        self.radius = float(radius)

    @property
    def dims(self) -> int:
        return self.axis.dims

    @property
    def a(self) -> tuple[float, ...]:
        return self.axis.a

    @property
    def b(self) -> tuple[float, ...]:
        return self.axis.b

    def bounds(self) -> AABB:
        return self.axis.bounds().expanded(self.radius)

    def length(self) -> float:
        """Length of the core segment (excluding the caps)."""
        return self.axis.length()

    def volume(self) -> float:
        """Cylinder body plus the two hemispherical caps (3-d only)."""
        if self.dims != 3:
            raise ValueError("volume is defined for 3-d capsules")
        body = math.pi * self.radius**2 * self.length()
        caps = 4.0 / 3.0 * math.pi * self.radius**3
        return body + caps

    def contains_point(self, point: Sequence[float]) -> bool:
        return self.axis.distance_to_point(point) <= self.radius

    def distance_to(self, other: "Capsule") -> float:
        """Surface-to-surface distance; negative values mean overlap depth."""
        core = self.axis.distance_to_segment(other.axis)
        return core - self.radius - other.radius

    def intersects(self, other: "Capsule") -> bool:
        return self.distance_to(other) <= 0.0

    def __repr__(self) -> str:
        return f"Capsule({self.a} -> {self.b}, r={self.radius})"
