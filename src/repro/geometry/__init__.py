"""Geometry kernel: boxes, primitives, intersection and distance predicates.

Every index and join in :mod:`repro` speaks one geometric vocabulary:

* :class:`~repro.geometry.aabb.AABB` — d-dimensional axis-aligned bounding
  boxes, the unit of indexing.
* Primitives (:class:`~repro.geometry.primitives.Sphere`,
  :class:`~repro.geometry.primitives.Capsule`, ...) — the shapes simulation
  datasets are made of (neuron segments are capsules, n-body particles are
  points/spheres).
* Predicates (:mod:`~repro.geometry.intersection`,
  :mod:`~repro.geometry.distance`) — exact tests used for refinement after the
  index filter step.
"""

from repro.geometry.aabb import (
    AABB,
    array_to_boxes,
    as_box_array,
    batch_contains,
    batch_contains_points,
    batch_intersects,
    batch_min_distance_to_points,
    boxes_to_array,
    union_all,
)
from repro.geometry.primitives import Capsule, Point, Segment, Sphere
from repro.geometry.intersection import (
    boxes_intersect,
    box_contains_box,
    box_contains_point,
    capsules_intersect,
    sphere_intersects_box,
)
from repro.geometry.distance import (
    point_box_distance,
    point_point_distance,
    point_segment_distance,
    segment_segment_distance,
)
from repro.geometry.refine import (
    batch_box_gaps,
    batch_capsule_gaps,
    batch_segment_distances,
    pack_segments,
)

__all__ = [
    "AABB",
    "union_all",
    "boxes_to_array",
    "array_to_boxes",
    "as_box_array",
    "batch_intersects",
    "batch_contains",
    "batch_contains_points",
    "batch_min_distance_to_points",
    "Point",
    "Sphere",
    "Segment",
    "Capsule",
    "boxes_intersect",
    "box_contains_point",
    "box_contains_box",
    "sphere_intersects_box",
    "capsules_intersect",
    "point_point_distance",
    "point_box_distance",
    "point_segment_distance",
    "segment_segment_distance",
    "batch_segment_distances",
    "batch_capsule_gaps",
    "batch_box_gaps",
    "pack_segments",
]
