"""Boolean intersection predicates between shapes and boxes.

Function-level predicates mirror the methods on :class:`~repro.geometry.AABB`
and the primitives; indexes prefer the functional forms in hot loops because
they avoid attribute lookups on temporary wrapper objects.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.aabb import AABB
from repro.geometry.distance import point_box_distance
from repro.geometry.primitives import Capsule, Sphere


def boxes_intersect(a: AABB, b: AABB) -> bool:
    """Closed-interval AABB overlap test."""
    for a_lo, a_hi, b_lo, b_hi in zip(a.lo, a.hi, b.lo, b.hi):
        if a_lo > b_hi or b_lo > a_hi:
            return False
    return True


def box_contains_point(box: AABB, point: Sequence[float]) -> bool:
    for lo, hi, p in zip(box.lo, box.hi, point):
        if p < lo or p > hi:
            return False
    return True


def box_contains_box(outer: AABB, inner: AABB) -> bool:
    for o_lo, o_hi, i_lo, i_hi in zip(outer.lo, outer.hi, inner.lo, inner.hi):
        if i_lo < o_lo or i_hi > o_hi:
            return False
    return True


def sphere_intersects_box(sphere: Sphere, box: AABB) -> bool:
    """Exact ball/box overlap via the point-to-box distance."""
    return point_box_distance(sphere.center, box.lo, box.hi) <= sphere.radius


def capsules_intersect(a: Capsule, b: Capsule) -> bool:
    """Exact capsule/capsule overlap (segment distance vs summed radii)."""
    return a.intersects(b)


def capsules_within(a: Capsule, b: Capsule, distance: float) -> bool:
    """True when the capsule *surfaces* are within ``distance`` of each other.

    This is the synapse-formation predicate: two neuron branches form a
    synapse wherever they come within a biologically given gap of each other.
    """
    return a.distance_to(b) <= distance
