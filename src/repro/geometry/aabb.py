"""d-dimensional axis-aligned bounding boxes (AABBs).

The AABB is the unit of indexing throughout :mod:`repro`: every spatial
element is filtered via its bounding box, and exact geometry is only consulted
during refinement.  Boxes are plain immutable value objects built on tuples of
floats — deliberately *not* numpy arrays, because index inner loops touch
individual coordinates and small-tuple access is both faster and allocation
free compared to 0-d array indexing.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np


class AABB:
    """An axis-aligned box ``[lo, hi]`` in ``dims`` dimensions.

    Degenerate boxes (``lo == hi`` in some or all dimensions) are valid and
    represent points or axis-aligned segments/rectangles embedded in space.

    The class is a value type: instances compare by coordinates, hash, and are
    safe to share between indexes.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        lo = tuple(float(c) for c in lo)
        hi = tuple(float(c) for c in hi)
        if len(lo) != len(hi):
            raise ValueError(f"lo has {len(lo)} dims but hi has {len(hi)}")
        if not lo:
            raise ValueError("AABB needs at least one dimension")
        for axis, (a, b) in enumerate(zip(lo, hi)):
            if a > b:
                raise ValueError(f"lo > hi on axis {axis}: {a} > {b}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AABB is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "AABB":
        """A degenerate box covering a single point."""
        return cls(point, point)

    @classmethod
    def from_center(cls, center: Sequence[float], half_extent: float | Sequence[float]) -> "AABB":
        """A box centered at ``center`` extending ``half_extent`` per axis."""
        if isinstance(half_extent, (int, float)):
            half = [float(half_extent)] * len(center)
        else:
            half = [float(h) for h in half_extent]
        if len(half) != len(center):
            raise ValueError("half_extent dimensionality mismatch")
        lo = [c - h for c, h in zip(center, half)]
        hi = [c + h for c, h in zip(center, half)]
        return cls(lo, hi)

    # -- basic properties --------------------------------------------------

    @property
    def dims(self) -> int:
        return len(self.lo)

    def center(self) -> tuple[float, ...]:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def extents(self) -> tuple[float, ...]:
        """Side length per axis."""
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    def volume(self) -> float:
        """Product of side lengths (area in 2-d, length in 1-d)."""
        vol = 1.0
        for a, b in zip(self.lo, self.hi):
            vol *= b - a
        return vol

    def margin(self) -> float:
        """Sum of side lengths — the R*-tree 'perimeter' split criterion."""
        return sum(b - a for a, b in zip(self.lo, self.hi))

    def is_degenerate(self) -> bool:
        """True if the box has zero extent in every dimension (a point)."""
        return all(a == b for a, b in zip(self.lo, self.hi))

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "AABB") -> bool:
        """Closed-interval overlap test (shared faces count as intersecting)."""
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            if a_lo > b_hi or b_lo > a_hi:
                return False
        return True

    def contains_point(self, point: Sequence[float]) -> bool:
        for a, b, p in zip(self.lo, self.hi, point):
            if p < a or p > b:
                return False
        return True

    def contains_box(self, other: "AABB") -> bool:
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            if b_lo < a_lo or b_hi > a_hi:
                return False
        return True

    # -- combination --------------------------------------------------------

    def union(self, other: "AABB") -> "AABB":
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return AABB(lo, hi)

    def intersection(self, other: "AABB") -> "AABB | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        for a, b in zip(lo, hi):
            if a > b:
                return None
        return AABB(lo, hi)

    def overlap_volume(self, other: "AABB") -> float:
        vol = 1.0
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            side = min(a_hi, b_hi) - max(a_lo, b_lo)
            if side <= 0.0:
                return 0.0
            vol *= side
        return vol

    def enlargement(self, other: "AABB") -> float:
        """Volume growth needed to absorb ``other`` — Guttman's insert metric."""
        return self.union(other).volume() - self.volume()

    def expanded(self, amount: float) -> "AABB":
        """A copy grown by ``amount`` on every face (shrunk when negative)."""
        lo = tuple(a - amount for a in self.lo)
        hi = tuple(b + amount for b in self.hi)
        return AABB(lo, hi)

    # -- distances ----------------------------------------------------------

    def min_distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest face (0 inside).

        Uses ``math.hypot``, which is immune to the underflow/overflow of
        naive squared sums (gaps below ~1e-154 would otherwise square to 0).
        """
        gaps = []
        for a, b, p in zip(self.lo, self.hi, point):
            if p < a:
                gaps.append(a - p)
            elif p > b:
                gaps.append(p - b)
        if not gaps:
            return 0.0
        return math.hypot(*gaps)

    def max_distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the farthest corner."""
        return math.hypot(
            *(max(abs(p - a), abs(p - b)) for a, b, p in zip(self.lo, self.hi, point))
        )

    def min_distance_to_box(self, other: "AABB") -> float:
        """Euclidean gap between two boxes (0 when they intersect).

        ``math.hypot`` keeps sub-1e-154 gaps from underflowing to zero, so
        ``gap == 0`` holds exactly when the boxes intersect.
        """
        gaps = []
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            gap = max(b_lo - a_hi, a_lo - b_hi, 0.0)
            if gap > 0.0:
                gaps.append(gap)
        if not gaps:
            return 0.0
        return math.hypot(*gaps)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AABB):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __iter__(self) -> Iterator[tuple[float, ...]]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:
        return f"AABB(lo={self.lo}, hi={self.hi})"


def union_all(boxes: Iterable[AABB]) -> AABB:
    """The minimum bounding box of a non-empty collection of boxes."""
    it = iter(boxes)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("union_all of an empty collection") from None
    for box in it:
        acc = acc.union(box)
    return acc


# -- vectorized batch kernels ------------------------------------------------
#
# The batch-query engine (:mod:`repro.engine`) works on dense ndarrays of
# boxes rather than AABB objects: a collection of m boxes in d dimensions is
# an ``(m, 2, d)`` float64 array where ``[:, 0, :]`` holds the lows and
# ``[:, 1, :]`` the highs.  The kernels below are the vectorized counterparts
# of the scalar predicates above and share their closed-interval semantics.


def boxes_to_array(boxes: Iterable[AABB], dims: int | None = None) -> np.ndarray:
    """Pack AABBs into an ``(m, 2, d)`` float64 array (``m`` may be 0).

    Packs through one flat coordinate list — measurably faster than
    ``np.array`` over per-box tuple pairs, and every batch kernel's bulk
    loader funnels through here.
    """
    materialized = boxes if isinstance(boxes, list) else list(boxes)
    if not materialized:
        return np.empty((0, 2, dims if dims is not None else 0), dtype=np.float64)
    flat: list[float] = []
    extend = flat.extend
    for box in materialized:
        extend(box.lo)
        extend(box.hi)
    return np.array(flat, dtype=np.float64).reshape(len(materialized), 2, materialized[0].dims)


def array_to_boxes(arr: np.ndarray) -> list[AABB]:
    """Unpack an ``(m, 2, d)`` array back into a list of AABBs."""
    return [AABB(row[0], row[1]) for row in arr]


def as_box_array(boxes: np.ndarray | Sequence[AABB], dims: int | None = None) -> np.ndarray:
    """Coerce either an ``(m, 2, d)`` ndarray or a sequence of AABBs.

    ndarray inputs are validated for shape but not for ``lo <= hi`` — batch
    callers own that contract, exactly as AABB construction owns it for the
    scalar path.
    """
    if isinstance(boxes, np.ndarray):
        arr = np.asarray(boxes, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[1] != 2:
            raise ValueError(
                f"box array must have shape (m, 2, d), got {arr.shape}"
            )
        return arr
    return boxes_to_array(boxes, dims=dims)


def as_point_array(points: np.ndarray | Sequence[Sequence[float]]) -> np.ndarray:
    """Coerce either an ``(m, d)`` ndarray or a sequence of point sequences.

    ndarray inputs pass through without per-coordinate Python churn — batch
    kNN/point callers hand these in on the hot path.
    """
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"point array must have shape (m, d), got {arr.shape}")
        return arr
    materialized = [tuple(float(c) for c in p) for p in points]
    if not materialized:
        return np.empty((0, 0), dtype=np.float64)
    return np.array(materialized, dtype=np.float64)


def batch_intersects(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise closed-interval overlap of two box arrays.

    ``a`` is ``(m, 2, d)``, ``b`` is ``(n, 2, d)``; the result is an
    ``(m, n)`` bool matrix with ``out[i, j] == a_i.intersects(b_j)``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.all(
        (a[:, None, 0, :] <= b[None, :, 1, :]) & (b[None, :, 0, :] <= a[:, None, 1, :]),
        axis=-1,
    )


def batch_contains(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise box containment: ``out[i, j] == a_i.contains_box(b_j)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.all(
        (a[:, None, 0, :] <= b[None, :, 0, :]) & (b[None, :, 1, :] <= a[:, None, 1, :]),
        axis=-1,
    )


def batch_contains_points(a: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Pairwise point containment: ``out[i, j] == a_i.contains_point(p_j)``.

    ``points`` is ``(n, d)``.
    """
    a = np.asarray(a, dtype=np.float64)
    p = np.asarray(points, dtype=np.float64)
    return np.all(
        (a[:, None, 0, :] <= p[None, :, :]) & (p[None, :, :] <= a[:, None, 1, :]),
        axis=-1,
    )


def batch_min_distance_to_points(boxes: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean point-to-box gaps: ``out[i, j] == box_j.min_distance_to_point(p_i)``.

    ``points`` is ``(m, d)``, ``boxes`` is ``(n, 2, d)``; the result is
    ``(m, n)``.  Computed as sqrt-of-squared-gaps; unlike the scalar
    ``math.hypot`` path this can underflow for gaps below ~1e-154, which is
    far outside any simulation universe this library models.
    """
    boxes = np.asarray(boxes, dtype=np.float64)
    p = np.asarray(points, dtype=np.float64)[:, None, :]
    gaps = np.maximum(np.maximum(boxes[None, :, 0, :] - p, p - boxes[None, :, 1, :]), 0.0)
    return np.sqrt(np.einsum("mnd,mnd->mn", gaps, gaps))
