"""Approximate-kNN tier: spill trees with pluggable split rules.

Exactness past recall ~0.9 is wasted work at serving scale; this package
adds the approximate tier behind the same ``SpatialIndex`` surface the
exact indexes share.  :class:`SpillTree` duplicates boundary points into
both children of every split (overlap fraction ``tau``) so a defeatist —
no-backtrack — descent still finds the neighbourhood, and the session
planner routes ``KNNQuery(accuracy=...)`` between the exact kernels and
the defeatist sweep using the tree's measured recall.
"""

from repro.approx.spill_tree import SpillTree
from repro.approx.split_rules import (
    SPLIT_RULES,
    MaxVarianceKD,
    PCASplit,
    RandomProjection,
    SplitRule,
    TwoMeans,
    available_split_rules,
    make_split_rule,
)

__all__ = [
    "SpillTree",
    "SplitRule",
    "MaxVarianceKD",
    "RandomProjection",
    "PCASplit",
    "TwoMeans",
    "SPLIT_RULES",
    "available_split_rules",
    "make_split_rule",
]
