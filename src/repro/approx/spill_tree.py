"""SpillTree: overlap-propagating splits with defeatist (no-backtrack) kNN.

The exact kNN kernels answer every query correctly, but production serving
past recall ~0.9 is wasted work: a batch of a million probes does not need
the true k-th neighbour of every one.  The spill tree (Liu, Moore, Gray &
Yang) buys an order of magnitude by making *descent* sufficient: each split
duplicates the points within an overlap fraction ``tau`` of the boundary
into **both** children, so a query near the boundary still finds its
neighbourhood in whichever child it descends into — and the search never
backtracks ("defeatist" search).  When a node's points are so concentrated
that the overlap stops shrinking the split, the node becomes a **hybrid
leaf** that falls back to exact search over its points.

The class is a :class:`~repro.indexes.linear_scan.LinearScan` subclass on
purpose: the scan *is* the exact tier.  Every inherited query path
(``range_query`` / ``knn`` / ``batch_*``) stays bit-identical to the oracle
— ``KNNQuery(accuracy='exact')`` against a spill-tree-backed session
answers exactly like any exact index — while the tree adds the approximate
tier behind :meth:`approx_batch_knn` and an :meth:`estimated_recall`
calibration the session planner routes on.

Like the KD-tree, this is a point access method: only degenerate (point)
boxes are accepted.

The defeatist batch kernel is one vectorized root-to-leaf sweep per query
array (queries partition among children at every split; each reached leaf
answers its queries with one distance matrix and the library-wide
``(distance, id)`` tie-break), reusing the flat packed-entry idiom of
:mod:`repro.indexes.batch_knn` without the priority queue it no longer
needs.  The flat arrays are exactly what the serving tier ships through
shared memory (:meth:`export_spill`), so pool workers attach the built tree
instead of rebuilding anything.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.approx.split_rules import SplitRule, make_split_rule
from repro.geometry.aabb import AABB, as_point_array, batch_min_distance_to_points
from repro.indexes.base import Item, KNNResult, validate_items
from repro.indexes.linear_scan import LinearScan
from repro.instrumentation.counters import Counters
from repro.obs import global_registry

#: A split only stands when both children are at most this fraction of the
#: parent; past it the overlap has stopped shrinking the node (ties or a
#: point mass around the threshold) and the node defeats to an exact leaf.
_SHRINK_CAP = 0.9


class _FlatSpillTree:
    """The built tree as contiguous arrays (node 0 is the root).

    ``left[i] < 0`` marks a leaf; leaves own ``leaf_rows[leaf_start[i] :
    leaf_start[i] + leaf_count[i]]`` — row indices into the dense point
    table, with boundary rows duplicated across sibling leaves (the spill).
    This layout is shared-memory-ready: the serving payload is these arrays
    verbatim.
    """

    __slots__ = ("dirs", "thresh", "left", "right", "leaf_start", "leaf_count", "leaf_rows")

    def __init__(self, dirs, thresh, left, right, leaf_start, leaf_count, leaf_rows) -> None:
        self.dirs = dirs  # (N, d) float64; zero rows for leaves
        self.thresh = thresh  # (N,) float64
        self.left = left  # (N,) int64; -1 for leaves
        self.right = right  # (N,) int64
        self.leaf_start = leaf_start  # (N,) int64
        self.leaf_count = leaf_count  # (N,) int64
        self.leaf_rows = leaf_rows  # (L,) int64

    @property
    def leaves(self) -> int:
        return int((self.left < 0).sum())

    def arrays(self) -> dict[str, np.ndarray]:
        return {
            "node_dirs": self.dirs,
            "node_thresh": self.thresh,
            "node_left": self.left,
            "node_right": self.right,
            "leaf_start": self.leaf_start,
            "leaf_count": self.leaf_count,
            "leaf_rows": self.leaf_rows,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "_FlatSpillTree":
        return cls(
            arrays["node_dirs"],
            arrays["node_thresh"],
            arrays["node_left"],
            arrays["node_right"],
            arrays["leaf_start"],
            arrays["leaf_count"],
            arrays["leaf_rows"],
        )


def _build_flat_tree(
    pts: np.ndarray,
    leaf_size: int,
    tau: float,
    rule: SplitRule,
    rng: np.random.Generator,
) -> _FlatSpillTree:
    """One recursive pass over row-index arrays, packed into flat arrays."""
    dims = pts.shape[1]
    dirs: list[np.ndarray | None] = []
    thresh: list[float] = []
    left: list[int] = []
    right: list[int] = []
    leaf_start: list[int] = []
    leaf_count: list[int] = []
    leaf_parts: list[np.ndarray] = []
    leaf_total = 0

    def build(rows: np.ndarray) -> int:
        nonlocal leaf_total
        nid = len(left)
        dirs.append(None)
        thresh.append(0.0)
        left.append(-1)
        right.append(-1)
        leaf_start.append(0)
        leaf_count.append(0)
        count = rows.shape[0]
        split = None
        if count > leaf_size:
            direction = rule.direction(pts[rows], rng)
            proj = pts[rows] @ direction
            cut = float(np.median(proj))
            lo_q, hi_q = np.quantile(proj, (0.5 - tau / 2.0, 0.5 + tau / 2.0))
            left_mask = proj <= hi_q
            right_mask = proj >= lo_q
            biggest = max(int(left_mask.sum()), int(right_mask.sum()))
            # The hybrid condition: overlap (plus projection ties) must
            # actually shrink the node, else defeat to an exact leaf here.
            if biggest <= _SHRINK_CAP * count:
                split = (direction, cut, rows[left_mask], rows[right_mask])
        if split is None:
            leaf_start[nid] = leaf_total
            leaf_count[nid] = count
            leaf_parts.append(rows)
            leaf_total += count
            return nid
        direction, cut, left_rows, right_rows = split
        dirs[nid] = direction
        thresh[nid] = cut
        left[nid] = build(left_rows)
        right[nid] = build(right_rows)
        return nid

    build(np.arange(pts.shape[0], dtype=np.int64))
    packed_dirs = np.zeros((len(dirs), dims), dtype=np.float64)
    for i, direction in enumerate(dirs):
        if direction is not None:
            packed_dirs[i] = direction
    return _FlatSpillTree(
        dirs=packed_dirs,
        thresh=np.asarray(thresh, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_count=np.asarray(leaf_count, dtype=np.int64),
        leaf_rows=(
            np.concatenate(leaf_parts)
            if leaf_parts
            else np.empty(0, dtype=np.int64)
        ),
    )


class SpillTree(LinearScan):
    """Spill tree over points: exact scan tier plus a defeatist kNN tier.

    Parameters
    ----------
    tau:
        Overlap fraction in ``[0, 1)``: each split sends the points between
        the ``0.5 - tau/2`` and ``0.5 + tau/2`` projection quantiles to
        *both* children.  ``0`` is a plain projection tree (fast, lower
        recall); larger values trade duplicated storage and bigger leaves
        for recall.
    leaf_size:
        Points at or below which a node stops splitting.  Hybrid leaves
        (overlap stopped shrinking the split) may exceed it.
    split_rule:
        A :class:`~repro.approx.split_rules.SplitRule` name or instance
        (``"kd"``, ``"rp"``, ``"pca"``, ``"two_means"``).
    seed:
        Seeds the per-rebuild generator the split rules draw from, so
        builds (and approximate answers) reproduce.
    calibration_sample:
        Queries drawn from the data itself by :meth:`estimated_recall` to
        measure defeatist-vs-exact recall per ``k`` (cached until the next
        mutation).

    The exact surface is inherited from :class:`LinearScan` unchanged; the
    tree is built lazily on the first approximate query after a mutation.
    """

    def __init__(
        self,
        tau: float = 0.15,
        leaf_size: int = 64,
        split_rule: str | SplitRule = "kd",
        seed: int = 0,
        calibration_sample: int = 128,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if not 0.0 <= tau < 1.0:
            raise ValueError(f"tau must be in [0, 1), got {tau}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if calibration_sample < 1:
            raise ValueError(f"calibration_sample must be >= 1, got {calibration_sample}")
        self.tau = tau
        self.leaf_size = leaf_size
        self.split_rule = make_split_rule(split_rule)
        self.seed = seed
        self.calibration_sample = calibration_sample
        self._tree: _FlatSpillTree | None = None
        self._recall_cache: dict[int, float] = {}

    # -- maintenance (point-only validation + tree invalidation) ---------------

    @staticmethod
    def _require_point(box: AABB) -> None:
        if not box.is_degenerate():
            raise ValueError(
                "SpillTree is a point access method; index volumetric elements "
                "with a region tree (QuadTree/Octree) or a grid instead"
            )

    def _invalidate(self) -> None:
        self._tree = None
        self._recall_cache.clear()

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        for _, box in materialized:
            self._require_point(box)
        super().bulk_load(materialized)
        self._invalidate()

    def insert(self, eid: int, box: AABB) -> None:
        self._require_point(box)
        super().insert(eid, box)
        self._invalidate()

    def delete(self, eid: int, box: AABB) -> None:
        super().delete(eid, box)
        self._invalidate()

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        self._require_point(new_box)
        super().update(eid, old_box, new_box)
        self._invalidate()

    # -- the approximate tier ---------------------------------------------------

    def _ensure_tree(self) -> _FlatSpillTree:
        if self._tree is None:
            _, data = self._dense_view()
            self._tree = _build_flat_tree(
                data[:, 0, :],
                self.leaf_size,
                self.tau,
                self.split_rule,
                np.random.default_rng(self.seed),
            )
        return self._tree

    def approx_batch_knn(
        self, points: np.ndarray | Sequence[Sequence[float]], k: int
    ) -> list[KNNResult]:
        """Defeatist batch kNN: one root-to-leaf sweep for the whole array.

        Queries partition among children at every split (one projection per
        node over the carried rows); each reached leaf answers its queries
        brute-force over the leaf's (spilled) points under the library-wide
        ``(distance, id)`` tie-break.  No backtracking: a query's answer
        comes entirely from the single leaf it lands in, so results are a
        high-recall *approximation* of the exact top-k (a leaf smaller than
        ``k`` also returns fewer than ``k`` pairs).  Work is charged to
        ``approx_descents`` / ``leaves_scanned`` / ``elem_tests``.
        """
        pts_q = as_point_array(points)
        m = pts_q.shape[0]
        if m == 0:
            return []
        n = len(self._boxes)
        if k <= 0 or n == 0:
            return [[] for _ in range(m)]
        eids, data = self._dense_view()
        if pts_q.shape[1] != data.shape[2]:
            raise ValueError(
                f"points have {pts_q.shape[1]} dims, index has {data.shape[2]}"
            )
        tree = self._ensure_tree()
        counters = self.counters
        counters.approx_descents += m
        leaves_before = counters.leaves_scanned
        kk = min(k, n)
        results: list[KNNResult] = [[] for _ in range(m)]
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(m))]
        while stack:
            nid, rows = stack.pop()
            left = int(tree.left[nid])
            if left >= 0:
                proj = pts_q[rows] @ tree.dirs[nid]
                counters.node_tests += rows.shape[0]
                go_left = proj <= tree.thresh[nid]
                left_rows = rows[go_left]
                right_rows = rows[~go_left]
                if left_rows.size:
                    counters.pointer_follows += 1
                    stack.append((left, left_rows))
                if right_rows.size:
                    counters.pointer_follows += 1
                    stack.append((int(tree.right[nid]), right_rows))
                continue
            start = int(tree.leaf_start[nid])
            cand = tree.leaf_rows[start : start + int(tree.leaf_count[nid])]
            counters.leaves_scanned += 1
            cand_eids = eids[cand]
            cc = cand.shape[0]
            kk_leaf = min(kk, cc)
            dists = batch_min_distance_to_points(data[cand], pts_q[rows])
            counters.elem_tests += dists.size
            for i in range(rows.shape[0]):
                row_d = dists[i]
                if kk_leaf < cc:
                    # argpartition splits ties at the k-th distance
                    # arbitrarily; widen to every candidate at or under the
                    # pivot so the (distance, id) tie-break stays exact
                    # *within the leaf* (the same idiom as the exact scan).
                    part = np.argpartition(row_d, kk_leaf - 1)[:kk_leaf]
                    cols = np.nonzero(row_d <= row_d[part].max())[0]
                else:
                    cols = np.arange(cc)
                order = np.lexsort((cand_eids[cols], row_d[cols]))[:kk_leaf]
                chosen = cols[order]
                results[int(rows[i])] = list(
                    zip(row_d[chosen].tolist(), cand_eids[chosen].tolist())
                )
            counters.heap_ops += kk_leaf * rows.shape[0]
        registry = global_registry()
        registry.counter("approx.descents").inc(m)
        registry.counter("approx.leaves_scanned").inc(
            counters.leaves_scanned - leaves_before
        )
        return results

    def approx_knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Scalar defeatist kNN (the inline-executor path)."""
        return self.approx_batch_knn(
            np.asarray([tuple(point)], dtype=np.float64), k
        )[0]

    def estimated_recall(self, k: int) -> float:
        """Measured defeatist recall at ``k``, from a self-calibration pass.

        Up to ``calibration_sample`` stored points (evenly strided, so the
        sample tracks the data distribution) are asked both ways; recall is
        the fraction of exact neighbours the defeatist answers recovered.
        Cached per ``k`` until the next mutation; calibration work is
        charged to a throwaway counter object, not the index's telemetry.
        """
        n = len(self._boxes)
        if n == 0 or k <= 0:
            return 1.0
        kk = min(k, n)
        cached = self._recall_cache.get(kk)
        if cached is not None:
            return cached
        _, data = self._dense_view()
        sample = min(self.calibration_sample, n)
        rows = np.unique(np.linspace(0, n - 1, sample).astype(np.int64))
        queries = data[rows, 0, :]
        saved = self.counters
        self.counters = Counters()
        try:
            exact = LinearScan.batch_knn(self, queries, kk)
            approx = self.approx_batch_knn(queries, kk)
        finally:
            self.counters = saved
        expected = sum(len(result) for result in exact)
        found = sum(
            len({eid for _, eid in got} & {eid for _, eid in want})
            for got, want in zip(approx, exact)
        )
        recall = found / expected if expected else 1.0
        self._recall_cache[kk] = recall
        return recall

    # -- introspection ----------------------------------------------------------

    def export_spill(self) -> dict[str, np.ndarray] | None:
        """The dense tables plus the built flat tree, as one array dict.

        This is the native serving payload: a pool worker attaches these
        arrays and serves defeatist *and* exact batches with zero rebuild
        (:class:`repro.serving.snapshots.SnapshotSpillTree`).
        """
        if not self._boxes:
            return None
        eids, data = self._dense_view()
        tree = self._ensure_tree()
        return {"eids": eids, "boxes": data, **tree.arrays()}

    @property
    def leaves(self) -> int:
        """Leaf count of the built tree (builds it if needed)."""
        if not self._boxes:
            return 0
        return self._ensure_tree().leaves

    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        if self._tree is not None:
            total += sum(a.nbytes for a in self._tree.arrays().values())
        return total
