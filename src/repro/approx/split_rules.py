"""Pluggable split rules for the spill tree.

A spill tree node splits its points by *projecting* them onto a direction
and thresholding near the median; the rule only chooses the direction, so
every rule plugs into the same overlap/descent machinery.  The four classic
choices (the spatialtree lineage: metric-tree splits generalized to any
projection) trade build cost against how well one no-backtrack descent
preserves neighbourhoods:

* ``kd`` — the axis of maximum variance (a one-hot direction): the cheapest
  rule and the KD-tree's own heuristic.
* ``rp`` — a random unit direction: oblivious to the data, but repeated
  levels act like a random projection and adapt to intrinsic dimension.
* ``pca`` — the top principal component: the direction of maximum variance
  over all orientations, the best single linear view of the node.
* ``two_means`` — the direction between two Lloyd-iterated cluster centers:
  splits *between* clusters rather than through them.

Rules are deterministic given the generator handed in (the tree seeds one
per rebuild), so builds — and therefore approximate answers — reproduce
run-to-run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _unit(vector: np.ndarray) -> np.ndarray | None:
    norm = float(np.linalg.norm(vector))
    if norm <= 0.0 or not np.isfinite(norm):
        return None
    return vector / norm


def _max_variance_axis(pts: np.ndarray) -> np.ndarray:
    direction = np.zeros(pts.shape[1])
    direction[int(np.argmax(pts.var(axis=0)))] = 1.0
    return direction


class SplitRule(ABC):
    """Chooses the projection direction for one spill-tree node.

    ``direction(pts, rng)`` receives the node's ``(n, d)`` points (n >= 2)
    and must return a unit ``(d,)`` direction.  Rules fall back to the
    max-variance axis whenever their own construction degenerates (zero
    variance, coincident centers), so the tree never sees a zero direction.
    """

    name: str = "abstract"

    @abstractmethod
    def direction(self, pts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """A unit ``(d,)`` projection direction for splitting ``pts``."""


class MaxVarianceKD(SplitRule):
    """One-hot direction on the axis of maximum variance (KD-style)."""

    name = "kd"

    def direction(self, pts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return _max_variance_axis(pts)


class RandomProjection(SplitRule):
    """A uniformly random unit direction (Dasgupta–Freund RP trees)."""

    name = "rp"

    def direction(self, pts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        unit = _unit(rng.standard_normal(pts.shape[1]))
        return unit if unit is not None else _max_variance_axis(pts)


class PCASplit(SplitRule):
    """The top principal component of the node's points."""

    name = "pca"

    def direction(self, pts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        centered = pts - pts.mean(axis=0)
        cov = centered.T @ centered
        _, vectors = np.linalg.eigh(cov)
        unit = _unit(vectors[:, -1]) if np.any(cov) else None
        return unit if unit is not None else _max_variance_axis(pts)


class TwoMeans(SplitRule):
    """The direction between two k-means centers (a few Lloyd rounds).

    Centers are seeded at the extremes of the max-variance axis — a
    deterministic, well-separated start — then refined on a bounded sample
    so the rule stays O(sample) per node.
    """

    name = "two_means"

    def __init__(self, rounds: int = 4, sample: int = 256) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.sample = sample

    def direction(self, pts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        work = pts
        if pts.shape[0] > self.sample:
            work = pts[rng.choice(pts.shape[0], size=self.sample, replace=False)]
        seed_axis = _max_variance_axis(pts)
        proj = work @ seed_axis
        centers = np.stack([work[int(np.argmin(proj))], work[int(np.argmax(proj))]])
        for _ in range(self.rounds):
            d0 = np.linalg.norm(work - centers[0], axis=1)
            d1 = np.linalg.norm(work - centers[1], axis=1)
            near_one = d1 < d0
            if not near_one.any() or near_one.all():
                break
            centers = np.stack([work[~near_one].mean(axis=0), work[near_one].mean(axis=0)])
        unit = _unit(centers[1] - centers[0])
        return unit if unit is not None else seed_axis


SPLIT_RULES: dict[str, type[SplitRule]] = {
    MaxVarianceKD.name: MaxVarianceKD,
    RandomProjection.name: RandomProjection,
    PCASplit.name: PCASplit,
    TwoMeans.name: TwoMeans,
}


def available_split_rules() -> list[str]:
    """Registered split-rule names, in registry order."""
    return list(SPLIT_RULES)


def make_split_rule(rule: str | SplitRule) -> SplitRule:
    """Coerce a rule name (or pass through an instance) to a ``SplitRule``."""
    if isinstance(rule, SplitRule):
        return rule
    try:
        return SPLIT_RULES[rule]()
    except KeyError:
        raise KeyError(
            f"unknown split rule {rule!r}; available: {', '.join(SPLIT_RULES)}"
        ) from None
