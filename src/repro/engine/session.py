"""QuerySession: the declarative front door for every spatial query.

The paper's analysis phases fire "thousands of range queries ... at locations
that cannot be anticipated" (§2.2) between simulation steps.  PRs 1–2 built
the vectorized kernels for that workload, but callers still talked to three
different surfaces: scalar :class:`~repro.indexes.base.SpatialIndex` methods,
the :class:`~repro.engine.batch.BatchQueryEngine`, and ad-hoc loops inside
the sim monitors and joins.  This module unifies them:

* Queries are **first-class values** — :class:`RangeQuery`,
  :class:`KNNQuery` and :class:`PointQuery` dataclasses carrying a unique
  ``qid`` and an optional caller ``tag``.
* ``session.submit(query)`` returns a lightweight **deferred**
  :class:`ResultHandle`; nothing executes until the session flushes.
* Submissions accumulate in a :class:`QueryBuffer` which, on
  :meth:`QuerySession.flush` (or transparently on the first
  ``handle.result()`` — flush-on-read), groups them into homogeneous batches
  and hands each to a pluggable **executor**:

  - :class:`InlineExecutor` — the scalar per-query path, cheapest for tiny
    batches and for indexes without vectorized kernels;
  - :class:`BatchExecutor` — wraps the existing
    :class:`~repro.engine.batch.BatchQueryEngine` (the kernel layer);
  - :class:`ShardedExecutor` — partitions the query array across a
    ``multiprocessing`` pool of forked workers and merges the per-shard
    results and :class:`~repro.engine.batch.BatchStats`.

  The executor is chosen per batch by a small cost heuristic
  (batch size × index capability, see :meth:`QuerySession.choose_executor`)
  that is overridable per session — pin one with ``executor=...`` or supply
  a ``policy`` callable.

Every executor answers every batch with the same id sets (range/point) and
the identical ``(distance, id)`` lists (kNN) — the deterministic ordering
contract of :mod:`repro.indexes.base` makes them interchangeable, which is
what lets the heuristic switch freely.  The ROADMAP's streaming front end
and process-pool sharding both live behind this one interface now: the
former is the buffer, the latter is one executor.
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

import numpy as np

from repro.engine.batch import BatchQueryEngine, BatchStats
from repro.exec.budget import MemoryBudget
from repro.geometry.aabb import AABB, as_box_array, as_point_array
from repro.indexes.base import KNNResult, SpatialIndex
from repro.obs import MetricsRegistry, capture_worker, ingest_telemetry
from repro.obs import propagation_context as _obs_context
from repro.obs import span as _span

_QIDS = itertools.count()


def _next_qid() -> int:
    return next(_QIDS)


# -- queries as values ---------------------------------------------------------


@dataclass(frozen=True)
class RangeQuery:
    """All elements whose box intersects ``box``."""

    box: AABB
    tag: Any = None
    qid: int = field(default_factory=_next_qid, compare=False)

    kind = "range"


@dataclass(frozen=True)
class KNNQuery:
    """The ``k`` elements nearest to ``point`` by box distance.

    ``accuracy`` is the recall target the answer must meet: ``"exact"``
    (default) demands the oracle answer through the exact kernels, while a
    float in ``(0, 1]`` permits the planner to route the query through an
    approximate defeatist kernel (:mod:`repro.approx`) **when** the backing
    index offers one whose measured recall meets the target — otherwise the
    query silently runs exactly.  The result shape and ``(distance, id)``
    ordering are identical either way; only the answer *set* may differ
    under approximate routing.
    """

    point: tuple[float, ...]
    k: int
    tag: Any = None
    qid: int = field(default_factory=_next_qid, compare=False)
    accuracy: float | str = "exact"

    kind = "knn"

    def __post_init__(self) -> None:
        # k == 0 is legal (and answers []), matching the kernel engine and
        # every index's scalar knn — the session is a drop-in surface.
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        object.__setattr__(self, "point", tuple(float(c) for c in self.point))
        object.__setattr__(self, "accuracy", _validate_accuracy(self.accuracy))


def _validate_accuracy(accuracy: float | str) -> float | str:
    """Normalize an accuracy knob: ``"exact"`` or a recall target in (0, 1]."""
    if accuracy == "exact":
        return "exact"
    try:
        target = float(accuracy)
    except (TypeError, ValueError):
        raise ValueError(
            f"accuracy must be 'exact' or a recall target in (0, 1], got {accuracy!r}"
        ) from None
    if not 0.0 < target <= 1.0:
        raise ValueError(
            f"accuracy must be 'exact' or a recall target in (0, 1], got {accuracy!r}"
        )
    return target


@dataclass(frozen=True)
class PointQuery:
    """Stabbing query: all elements whose box covers ``point``."""

    point: tuple[float, ...]
    tag: Any = None
    qid: int = field(default_factory=_next_qid, compare=False)

    kind = "point"

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", tuple(float(c) for c in self.point))


Query = Union[RangeQuery, KNNQuery, PointQuery]


# -- deferred results ----------------------------------------------------------


class ResultHandle:
    """A deferred result, resolved when its session flushes.

    ``result()`` triggers the owning session's flush when still pending
    (flush-on-read), so callers can interleave submissions and reads without
    managing flush boundaries themselves.  For single-query submissions the
    value is that query's result (``list[int]`` or
    :data:`~repro.indexes.base.KNNResult`); for array submissions it is the
    per-query list of results, in submission order.

    Handles are also ``await``-able: under an
    :class:`~repro.serving.async_executor.AsyncExecutor` the executor
    attaches an asyncio waiter at submit time, and ``await handle`` parks
    the task until the executor's flush settles it.  Awaiting a handle with
    no waiter degrades to the synchronous flush-on-read path.
    """

    __slots__ = ("query", "tag", "_session", "_value", "_error", "_resolved", "_waiter")

    def __init__(self, session: "QuerySession", query: Query | None, tag: Any = None) -> None:
        self.query = query
        self.tag = tag if query is None else query.tag
        self._session = session
        self._value: Any = None
        self._error: BaseException | None = None
        self._resolved = False
        self._waiter: Any = None  # asyncio.Future, attached by AsyncExecutor

    @property
    def resolved(self) -> bool:
        return self._resolved

    def result(self) -> Any:
        if not self._resolved:
            try:
                self._session.flush()
            except Exception:
                # The flush may fail on any group (it re-raises the FIRST
                # group error); a read only reports what happened to ITS
                # OWN submission.  If this handle settled — with a value or
                # with its own error, re-raised below — swallow the flush
                # exception; explicit session.flush() is the surface where
                # cross-group errors propagate.
                if not self._resolved:
                    raise
        if not self._resolved:
            # Reachable only when a flush was torn down mid-group (e.g. a
            # KeyboardInterrupt): the buffer drained but this submission
            # never executed.
            raise RuntimeError("flush did not settle this handle")
        if self._error is not None:
            raise self._error
        return self._value

    def __await__(self):
        if not self._resolved and self._waiter is not None:
            yield from self._waiter.__await__()
        return self.result()

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._resolved = True
        self._session = None  # settled handles must not pin the session/index

    def _fail(self, error: Exception) -> None:
        """Settle the handle with the executor error that consumed its
        submission, so ``result()`` re-raises instead of hanging on a
        never-resolved handle."""
        self._error = error
        self._resolved = True
        self._session = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self._resolved else "pending"
        return f"<ResultHandle {state} query={self.query!r}>"


# -- executors -----------------------------------------------------------------


@dataclass(frozen=True)
class QueryBatch:
    """One homogeneous, normalized batch handed to an executor.

    ``payload`` is ``(m, 2, d)`` for range batches and ``(m, d)`` for kNN /
    point batches; ``k`` is set for kNN only.  ``accuracy`` is the
    session's *resolved* routing decision for a kNN batch: ``None`` means
    exact, a float means the planner verified the index's approximate
    kernel meets that recall target and the executor should use it.
    """

    kind: str
    payload: np.ndarray
    k: int | None = None
    accuracy: float | None = None

    @property
    def size(self) -> int:
        return int(self.payload.shape[0])


class Executor(ABC):
    """Executes one :class:`QueryBatch` against one index.

    Implementations must be interchangeable: same id sets per range/point
    query, identical ``(distance, id)`` lists per kNN query.  They return
    the per-query results plus the :class:`BatchStats` of the work done, so
    the session can account uniformly across strategies.
    """

    name: str = "executor"

    @abstractmethod
    def run(
        self, index: SpatialIndex, batch: QueryBatch, *, dedup: bool
    ) -> tuple[list, BatchStats]:
        """Execute ``batch``; returns ``(results, stats)``."""


class InlineExecutor(Executor):
    """The scalar path: one index method call per query.

    For tiny batches the array normalization and kernel set-up of the batch
    engine cost more than they save; the inline path keeps exactly the
    per-query behaviour (and counter accounting) of calling the index
    directly, while still honouring duplicate-query memoization so dedup
    stats stay comparable across executors.
    """

    name = "inline"

    def run(
        self, index: SpatialIndex, batch: QueryBatch, *, dedup: bool
    ) -> tuple[list, BatchStats]:
        if batch.kind == "range":
            def answer(row):
                # The kernel contract (as_box_array) admits inverted windows
                # and answers them with an empty intersection; the scalar
                # AABB constructor would reject them, so short-circuit to
                # keep the executors interchangeable.
                if np.any(row[0] > row[1]):
                    return []
                return index.range_query(AABB(row[0], row[1]))
        elif batch.kind == "point":
            answer = lambda row: index.range_query(AABB.from_point(row.tolist()))
        elif batch.kind == "knn":
            assert batch.k is not None
            k = batch.k
            approx = (
                getattr(index, "approx_knn", None)
                if batch.accuracy is not None
                else None
            )
            if approx is not None:
                answer = lambda row: approx(tuple(row.tolist()), k)
            else:
                answer = lambda row: index.knn(tuple(row.tolist()), k)
        else:  # pragma: no cover - QueryBuffer only emits the three kinds
            raise ValueError(f"unknown batch kind: {batch.kind!r}")

        stats = BatchStats(batches=1, queries=batch.size)
        counters = index.counters
        descents0 = counters.approx_descents
        leaves0 = counters.leaves_scanned
        results: list = []
        memo: dict[bytes, Any] = {}
        for row in batch.payload:
            key = row.tobytes() if dedup else None
            if key is not None and key in memo:
                stats.deduplicated += 1
                results.append(list(memo[key]))
                continue
            hits = answer(row)
            if key is not None:
                memo[key] = hits
            results.append(hits)
        stats.approx_descents = counters.approx_descents - descents0
        stats.leaves_scanned = counters.leaves_scanned - leaves0
        return results, stats


class BatchExecutor(Executor):
    """Vectorized single-process execution through the kernel-layer engine."""

    name = "batch"

    def run(
        self, index: SpatialIndex, batch: QueryBatch, *, dedup: bool
    ) -> tuple[list, BatchStats]:
        engine = BatchQueryEngine.kernel(index, dedup=dedup)
        results = _run_on_engine(engine, batch)
        return results, engine.stats


def _run_on_engine(engine: BatchQueryEngine, batch: QueryBatch) -> list:
    if batch.kind == "range":
        return engine.range_query(batch.payload)
    if batch.kind == "point":
        return engine.point_query(batch.payload)
    if batch.kind == "knn":
        assert batch.k is not None
        return engine.knn(batch.payload, batch.k, accuracy=batch.accuracy)
    raise ValueError(f"unknown batch kind: {batch.kind!r}")


# Worker-side view of (index, kind, k, dedup, accuracy, obs_ctx).  Assigned
# only inside the forked children via the pool initializer — each pool hands
# its own state object to its own workers, so concurrent sessions/threads in
# the parent never race on it.
_SHARD_STATE: tuple | None = None


def _init_shard(state: tuple) -> None:
    global _SHARD_STATE
    _SHARD_STATE = state


def _run_shard(chunk: np.ndarray) -> tuple[list, BatchStats, dict | None]:
    assert _SHARD_STATE is not None, "shard worker started without state"
    index, kind, k, dedup, accuracy, obs_ctx = _SHARD_STATE
    with capture_worker("query_shard", obs_ctx, kind=kind) as cap:
        engine = BatchQueryEngine.kernel(index, dedup=dedup)
        results = _run_on_engine(
            engine, QueryBatch(kind=kind, payload=chunk, k=k, accuracy=accuracy)
        )
        cap.set_attr("queries", int(chunk.shape[0]))
    return results, engine.stats, cap.telemetry


def _fork_is_safe() -> bool:
    """Forking a pool is only sound where fork is the sanctioned model.

    macOS lists ``fork`` as available but its system frameworks are not
    fork-safe (spawn is the platform default for exactly that reason), so
    require either Linux or an explicit user-set fork start method.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return sys.platform.startswith("linux") or (
        multiprocessing.get_start_method(allow_none=True) == "fork"
    )


class ShardedExecutor(Executor):
    """Partitions the query array across a pool of worker processes.

    The batch engine is stateless over results, so the query axis shards
    trivially: each worker answers a contiguous chunk and ships back
    ``(results, BatchStats)``; the parent concatenates results in
    submission order and merges the stats.

    By default the work runs on a **persistent**
    :class:`~repro.serving.pool.WorkerPool`: the index crosses the process
    boundary once, as a shared-memory snapshot, and each flush ships only
    probe arrays and result ids.  When the index has no shared-memory
    representation (``export_index_payload`` returns ``None``) — or
    ``pool=False`` pins the legacy behaviour — the executor forks a fresh
    ``multiprocessing.Pool`` per run, inheriting the index through fork.

    Parameters
    ----------
    workers:
        Shard count cap (default: CPU count, capped at 8).
    min_shard:
        Smallest worthwhile per-worker chunk; batches smaller than
        ``2 * min_shard`` fall back to single-process :class:`BatchExecutor`
        execution, as do platforms where no multiprocess path is viable.
    pool:
        ``None`` (default) — route through the process-wide
        :func:`~repro.serving.pool.default_pool`; a
        :class:`~repro.serving.pool.WorkerPool` — route through that pool;
        ``False`` — always use the legacy per-flush fork path (the
        benchmark baseline).

    Notes
    -----
    Worker-side :class:`~repro.instrumentation.counters.Counters` charges die
    with the workers — only the returned ``BatchStats`` merge back.
    Dedup is global: duplicate queries are collapsed in the parent *before*
    the array is partitioned, so duplicates landing in different shards are
    still executed exactly once and fanned back out on merge.
    """

    name = "sharded"

    def __init__(
        self,
        workers: int | None = None,
        min_shard: int = 512,
        pool: Any = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_shard < 1:
            raise ValueError(f"min_shard must be >= 1, got {min_shard}")
        cpus = multiprocessing.cpu_count()
        self.workers = workers if workers is not None else min(cpus, 8)
        self.min_shard = min_shard
        self.pool = pool
        self._fallback = BatchExecutor()

    def _resolve_pool(self):
        if self.pool is False:
            return None
        if self.pool is not None:
            return self.pool
        from repro.serving.pool import default_pool

        return default_pool()

    def run(
        self, index: SpatialIndex, batch: QueryBatch, *, dedup: bool
    ) -> tuple[list, BatchStats]:
        # Cross-shard dedup: collapse duplicates over the WHOLE batch before
        # partitioning.  Per-shard dedup (the engine's own) would execute a
        # duplicate once per shard it lands in; deduplicating here executes
        # it exactly once, then fans the result back out on merge.
        inverse: np.ndarray | None = None
        dropped = 0
        if dedup and batch.size > 1:
            flat = np.ascontiguousarray(batch.payload.reshape(batch.size, -1))
            unique, inverse = np.unique(flat, axis=0, return_inverse=True)
            if unique.shape[0] < batch.size:
                dropped = batch.size - unique.shape[0]
                batch = QueryBatch(
                    kind=batch.kind,
                    payload=unique.reshape(unique.shape[0], *batch.payload.shape[1:]),
                    k=batch.k,
                    accuracy=batch.accuracy,
                )
            else:
                inverse = None

        shards = min(self.workers, batch.size // self.min_shard)
        if shards >= 2:
            pool = self._resolve_pool()
            if pool is not None:
                try:
                    entry = pool.ensure_index(index)
                    if entry is not None:
                        results, stats = pool.run_query_shards(
                            entry,
                            batch.kind,
                            batch.payload,
                            batch.k,
                            dedup,
                            shards,
                            accuracy=batch.accuracy,
                        )
                        return self._fan_out(results, stats, inverse, dropped)
                except Exception:
                    # Pool-infrastructure failure: fall through to the
                    # fork/in-process paths, which reproduce any genuine
                    # query error on the same inputs.
                    pass
        if shards < 2 or not _fork_is_safe():
            results, stats = self._fallback.run(index, batch, dedup=dedup)
            return self._fan_out(results, stats, inverse, dropped)
        bounds = np.linspace(0, batch.size, shards + 1).astype(int)
        chunks = [batch.payload[a:b] for a, b in zip(bounds[:-1], bounds[1:])]

        # The initializer's state rides into each child through fork (no
        # pickling of the index), and is assigned only worker-side.
        state = (index, batch.kind, batch.k, dedup, batch.accuracy, _obs_context())
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=shards, initializer=_init_shard, initargs=(state,)) as pool:
            parts = pool.map(_run_shard, chunks)

        results: list = []
        stats = BatchStats()
        for shard_results, shard_stats, telemetry in parts:
            results.extend(shard_results)
            stats.merge(shard_stats)
            ingest_telemetry(telemetry)
        # The shards executed one logical batch between them.
        stats.batches = 1
        return self._fan_out(results, stats, inverse, dropped)

    @staticmethod
    def _fan_out(
        results: list, stats: BatchStats, inverse: np.ndarray | None, dropped: int
    ) -> tuple[list, BatchStats]:
        """Scatter unique-query results back to the original batch order."""
        if inverse is None:
            return results, stats
        stats.queries += dropped
        stats.deduplicated += dropped
        # Independent copies, matching the engine's dedup fan-out contract.
        return [list(results[i]) for i in inverse], stats


# -- the buffer ----------------------------------------------------------------


@dataclass
class _Submission:
    """One submit() call's worth of pending work: a payload slice plus the
    handle(s) awaiting it.  ``vector`` submissions resolve their single
    handle with the whole result list; scalar ones resolve one handle with
    one result."""

    kind: str
    payload: np.ndarray  # (n, 2, d) for range, (n, d) for knn/point
    k: int | None
    handle: ResultHandle
    vector: bool
    accuracy: float | None = None  # kNN recall target; None = exact


class QueryBuffer:
    """Accumulates submissions until the session flushes.

    The buffer preserves submission order inside each (kind, k, accuracy)
    group — that order is the contract handles rely on — while letting the
    flush concatenate each group into one contiguous payload per executor
    run.  Accuracy is part of the grouping key so exact and approximate
    kNN submissions at the same ``k`` never share a kernel run.
    """

    def __init__(self) -> None:
        self._submissions: list[_Submission] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, submission: _Submission) -> None:
        self._submissions.append(submission)
        self._count += submission.payload.shape[0]

    def drain(self) -> list[tuple[tuple[str, int | None, float | None], list[_Submission]]]:
        """Empty the buffer, grouped by (kind, k, accuracy) in first-seen order."""
        groups: dict[tuple[str, int | None, float | None], list[_Submission]] = {}
        for sub in self._submissions:
            groups.setdefault((sub.kind, sub.k, sub.accuracy), []).append(sub)
        self._submissions = []
        self._count = 0
        return list(groups.items())


# -- session stats -------------------------------------------------------------


@dataclass
class SessionStats:
    """Session-level accounting: kernel tallies plus executor mix.

    ``batch`` accumulates the merged :class:`BatchStats` of every executor
    run; ``executor_runs`` counts batches per executor name, which is the
    telemetry the cost heuristic is judged by
    (:func:`repro.analysis.session_report`).

    The serving tier adds queue/flush telemetry: ``queue_high_water`` is
    the deepest the buffer got before a flush (a gauge), ``flush_triggers``
    counts flushes per cause (``"full"`` / ``"deadline"`` / ``"idle"`` —
    recorded by :class:`~repro.serving.async_executor.AsyncExecutor`; plain
    synchronous flushes don't tag themselves), and ``flush_seconds`` is the
    total wall-clock spent inside :meth:`QuerySession.flush`."""

    batch: BatchStats = field(default_factory=BatchStats)
    flushes: int = 0
    submitted: int = 0
    executor_runs: dict[str, int] = field(default_factory=dict)
    queue_high_water: int = 0
    flush_triggers: dict[str, int] = field(default_factory=dict)
    flush_seconds: float = 0.0

    def record_run(self, executor_name: str, stats: BatchStats) -> None:
        self.batch.merge(stats)
        self.executor_runs[executor_name] = self.executor_runs.get(executor_name, 0) + 1

    def record_trigger(self, cause: str) -> None:
        self.flush_triggers[cause] = self.flush_triggers.get(cause, 0) + 1


# -- the session ---------------------------------------------------------------

#: Batches at or below this size run inline by default: the per-query Python
#: dispatch is cheaper than array normalization + kernel set-up.
INLINE_CUTOFF = 4

Policy = Callable[[SpatialIndex, QueryBatch], Executor]


class QuerySession:
    """The single public entry point for queries against any index.

    Parameters
    ----------
    index:
        Any :class:`~repro.indexes.base.SpatialIndex`.
    executor:
        Pin every batch to one executor, bypassing the cost heuristic
        (e.g. ``ShardedExecutor(workers=4)`` for large analysis phases).
    policy:
        Override the heuristic with a callable
        ``(index, batch) -> Executor``; ignored when ``executor`` is set.
    dedup:
        Collapse duplicate queries inside each batch (default True, as in
        the kernel engine).
    inline_cutoff:
        Largest batch the default heuristic routes to the scalar path.
    budget:
        A :class:`~repro.exec.budget.MemoryBudget` (or raw byte limit)
        bounding each executor run's working set.  Flushed groups whose
        estimated kernel working set exceeds the limit are executed in
        budget-sized row chunks (results are identical — queries are
        independent); ``stats.batch.budget_chunks`` counts the splits and
        ``stats.batch.budget_high_water`` the reserved peak.

    Two usage styles, freely mixable:

    Deferred — submit query values, read handles later (the buffer flushes
    as one batch on the first read)::

        session = QuerySession(index)
        handles = [session.submit(RangeQuery(box)) for box in boxes]
        counts = [len(h.result()) for h in handles]     # one flush

    Immediate — array-in / array-out, the drop-in replacement for the old
    ``BatchQueryEngine`` surface::

        hits      = session.range_query(boxes)           # (m, 2, d) or AABBs
        neighbours = session.knn(points, k=8)            # (m, d)
        stabs     = session.point_query(points)
    """

    def __init__(
        self,
        index: SpatialIndex,
        *,
        executor: Executor | None = None,
        policy: Policy | None = None,
        dedup: bool = True,
        inline_cutoff: int = INLINE_CUTOFF,
        budget: MemoryBudget | int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.index = index
        self.dedup = dedup
        self.inline_cutoff = inline_cutoff
        self.budget = MemoryBudget.coerce(budget)
        self._pinned = executor
        self._policy = policy
        self._buffer = QueryBuffer()
        self.stats = SessionStats()
        self._inline = InlineExecutor()
        self._batch = BatchExecutor()
        # Registry mirrors of the stats fields, cached once so the submit
        # hot path pays one attribute bump, not a name lookup.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_submitted = self.metrics.counter("query.submitted")
        self._m_high_water = self.metrics.gauge("query.queue.high_water")
        self._m_flushes = self.metrics.counter("query.flushes")
        self._m_flush_seconds = self.metrics.histogram("query.flush.seconds")
        # Concurrency: `_lock` guards the buffer and submission tallies;
        # `_flush_lock` serializes whole flushes (drain → execute → resolve),
        # so a competing flush-on-read blocks until every drained handle has
        # settled instead of observing drained-but-unresolved handles.
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()

    # -- executor choice ------------------------------------------------------

    def choose_executor(self, batch: QueryBatch) -> Executor:
        """The cost heuristic: batch size × index capability.

        Tiny batches (≤ ``inline_cutoff``) and indexes without a vectorized
        kernel for the batch's kind (see
        :meth:`~repro.indexes.base.SpatialIndex.supports_batch_kind`) run
        inline — the kernel set-up would outweigh the work.  Everything
        else runs through the batch engine.  A pinned ``executor`` or a
        session ``policy`` overrides this entirely.
        """
        if self._pinned is not None:
            return self._pinned
        if self._policy is not None:
            return self._policy(self.index, batch)
        capability = (
            "approx_knn"
            if batch.kind == "knn" and batch.accuracy is not None
            else batch.kind
        )
        if batch.size <= self.inline_cutoff or not self.index.supports_batch_kind(capability):
            return self._inline
        return self._batch

    def _resolve_accuracy(self, k: int | None, accuracy: float | None) -> float | None:
        """Route the accuracy knob for one kNN group.

        A recall target may only be honoured approximately when the index
        offers a defeatist kernel (``supports_batch_kind("approx_knn")``)
        *and* its self-calibrated :meth:`estimated_recall` meets the target;
        otherwise the group falls back to the exact kernels — accuracy is a
        floor, never a licence to degrade.  The calibrated recall of every
        approximately-routed group flows into
        ``stats.batch.recall_estimate`` (a min-gauge)."""
        if accuracy is None or k is None or k <= 0:
            return None
        if not self.index.supports_batch_kind("approx_knn"):
            return None
        estimate = getattr(self.index, "estimated_recall", None)
        if estimate is None:
            return None
        measured = estimate(k)
        if measured < accuracy:
            return None
        self.stats.batch.recall_estimate = min(
            self.stats.batch.recall_estimate, measured
        )
        return accuracy

    # -- submission (deferred) ------------------------------------------------

    def _enqueue(self, submission: _Submission, count: int) -> None:
        with self._lock:
            self._buffer.add(submission)
            self.stats.submitted += count
            depth = len(self._buffer)
            if depth > self.stats.queue_high_water:
                self.stats.queue_high_water = depth
            self._m_submitted.inc(count)
            self._m_high_water.track_max(depth)

    def submit(self, query: Query) -> ResultHandle:
        """Buffer one query value; returns its deferred handle."""
        handle = ResultHandle(self, query)
        if isinstance(query, RangeQuery):
            payload = as_box_array([query.box])
            kind, k = "range", None
        elif isinstance(query, KNNQuery):
            payload = as_point_array([query.point])
            kind, k = "knn", query.k
            accuracy = None if query.accuracy == "exact" else query.accuracy
            self._enqueue(
                _Submission(kind, payload, k, handle, vector=False, accuracy=accuracy), 1
            )
            return handle
        elif isinstance(query, PointQuery):
            payload = as_point_array([query.point])
            kind, k = "point", None
        else:
            raise TypeError(f"not a query value: {query!r}")
        self._enqueue(_Submission(kind, payload, k, handle, vector=False), 1)
        return handle

    def submit_all(self, queries: Sequence[Query]) -> list[ResultHandle]:
        return [self.submit(q) for q in queries]

    def submit_ranges(
        self, boxes: np.ndarray | Sequence[AABB], tag: Any = None
    ) -> ResultHandle:
        """Buffer a whole range-query array; one handle for all results.

        The array path skips per-query value construction, so analysis
        loops keep kernel-speed submission; the handle resolves to the
        per-query list of id lists.
        """
        payload = as_box_array(boxes)
        handle = ResultHandle(self, None, tag)
        self._enqueue(_Submission("range", payload, None, handle, vector=True), payload.shape[0])
        return handle

    def submit_knns(
        self,
        points: np.ndarray | Sequence[Sequence[float]],
        k: int,
        tag: Any = None,
        accuracy: float | str = "exact",
    ) -> ResultHandle:
        """Buffer a kNN point array; the handle resolves to one
        ``(distance, id)`` list per point (empty when ``k == 0``).

        ``accuracy`` follows the :class:`KNNQuery` knob: ``"exact"``
        (default) or a recall target in ``(0, 1]`` the planner may honour
        with an approximate kernel."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        target = _validate_accuracy(accuracy)
        payload = as_point_array(points)
        handle = ResultHandle(self, None, tag)
        self._enqueue(
            _Submission(
                "knn",
                payload,
                k,
                handle,
                vector=True,
                accuracy=None if target == "exact" else target,
            ),
            payload.shape[0],
        )
        return handle

    def submit_points(
        self, points: np.ndarray | Sequence[Sequence[float]], tag: Any = None
    ) -> ResultHandle:
        """Buffer a stabbing-query point array."""
        payload = as_point_array(points)
        handle = ResultHandle(self, None, tag)
        self._enqueue(_Submission("point", payload, None, handle, vector=True), payload.shape[0])
        return handle

    @property
    def pending(self) -> int:
        """Queries buffered and not yet flushed."""
        return len(self._buffer)

    # -- flushing -------------------------------------------------------------

    def flush(self) -> None:
        """Execute everything buffered and resolve the handles.

        Submissions are grouped by (kind, k), each group concatenated into
        one contiguous payload, run through the chosen executor, and the
        results scattered back to the group's handles in submission order.

        A group whose execution raises settles its handles with that error
        (``result()`` re-raises it) instead of orphaning them; the other
        groups still run, and the first error propagates once the buffer is
        fully settled.

        Flushes are serialized: concurrent callers (threads, or an async
        executor racing a flush-on-read) queue on the flush lock, and each
        sees either a fully settled buffer or runs its own complete flush.
        """
        with self._flush_lock:
            with self._lock:
                groups = self._buffer.drain()
            if not groups:
                return
            self.stats.flushes += 1
            start = time.perf_counter()
            first_error: Exception | None = None
            try:
                with _span("query.flush", groups=len(groups)):
                    for (kind, k, accuracy), submissions in groups:
                        try:
                            self._run_group(kind, k, accuracy, submissions)
                        except Exception as error:
                            # Confine ordinary errors to the group that raised
                            # them; BaseExceptions (KeyboardInterrupt,
                            # SystemExit) propagate immediately — unexecuted
                            # submissions stay unsettled and their reads raise
                            # RuntimeError.
                            for sub in submissions:
                                if not sub.handle.resolved:
                                    sub.handle._fail(error)
                            if first_error is None:
                                first_error = error
            finally:
                elapsed = time.perf_counter() - start
                self.stats.flush_seconds += elapsed
                self._m_flushes.inc()
                self._m_flush_seconds.observe(elapsed)
            if first_error is not None:
                raise first_error

    def _run_group(
        self,
        kind: str,
        k: int | None,
        accuracy: float | None,
        submissions: list[_Submission],
    ) -> None:
        # Zero-row payloads contribute nothing (and may carry a placeholder
        # dim of 0 that would poison concatenation).
        parts = [sub.payload for sub in submissions if sub.payload.shape[0]]
        if not parts:
            for sub in submissions:
                sub.handle._resolve([] if sub.vector else None)
            return
        payload = parts[0] if len(parts) == 1 else np.concatenate(parts)
        batch = QueryBatch(
            kind=kind, payload=payload, k=k, accuracy=self._resolve_accuracy(k, accuracy)
        )
        executor = self.choose_executor(batch)
        # Zero-copy storage telemetry lives on the index's counters (the
        # mapped page store charges them); diff around the batch so views
        # served for *these* queries land in this batch's stats.
        counters = getattr(self.index, "counters", None)
        before = counters.snapshot() if counters is not None else None
        with _span(
            "query.group",
            counters=counters,
            kind=kind,
            size=batch.size,
            executor=executor.name,
        ):
            results, stats = self._run_batch(executor, batch)
        if before is not None:
            delta = counters.diff(before)
            stats.zero_copy_reads += delta.zero_copy_reads
            stats.mapped_bytes += delta.mapped_bytes
            stats.tile_runs_dispatched += delta.tile_runs_dispatched
        self.stats.record_run(executor.name, stats)
        self.metrics.counter(f"query.executor.{executor.name}").inc()
        self.metrics.counter("query.queries").inc(batch.size)
        offset = 0
        for sub in submissions:
            n = sub.payload.shape[0]
            chunk = results[offset : offset + n]
            offset += n
            sub.handle._resolve(chunk if sub.vector else chunk[0])

    #: Kernel working-set bytes per payload byte: overlap masks, gather
    #: indices and per-query result lists dominate the raw query array.
    _KERNEL_OVERHEAD = 16

    def _run_batch(self, executor: Executor, batch: QueryBatch) -> tuple[list, BatchStats]:
        """Run one batch, split into budget-sized row chunks when governed.

        Queries are independent, so chunking never changes results — it
        only bounds the kernels' transient working set (dedup scope shrinks
        to the chunk, which alters ``deduplicated`` tallies, not answers).
        """
        limit = self.budget.limit
        estimate = batch.payload.nbytes * self._KERNEL_OVERHEAD
        if limit is None or estimate <= limit or batch.size <= 1:
            return executor.run(self.index, batch, dedup=self.dedup)
        row_bytes = max(estimate // batch.size, 1)
        chunk_rows = max(int(limit // row_bytes), 1)
        results: list = []
        stats = BatchStats()
        for start in range(0, batch.size, chunk_rows):
            chunk = QueryBatch(
                kind=batch.kind,
                payload=batch.payload[start : start + chunk_rows],
                k=batch.k,
                accuracy=batch.accuracy,
            )
            with self.budget.reserving(chunk.payload.nbytes * self._KERNEL_OVERHEAD, force=True):
                part, part_stats = executor.run(self.index, chunk, dedup=self.dedup)
            results.extend(part)
            stats.merge(part_stats)
            stats.budget_chunks += 1
        # The chunks answered one logical batch between them.
        stats.batches = 1
        stats.budget_high_water = max(stats.budget_high_water, self.budget.high_water)
        return results, stats

    # -- immediate convenience surface ---------------------------------------
    #
    # The drop-in replacement for the old public BatchQueryEngine methods:
    # same signatures, same results, one flush per call (plus whatever was
    # already buffered — submissions never reorder across a flush).

    def range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """Submit + flush + read: one id list per query box."""
        return self.submit_ranges(boxes).result()

    def knn(
        self,
        points: np.ndarray | Sequence[Sequence[float]],
        k: int,
        accuracy: float | str = "exact",
    ) -> list[KNNResult]:
        """Submit + flush + read: one ``(distance, id)`` list per point."""
        return self.submit_knns(points, k, accuracy=accuracy).result()

    def point_query(
        self, points: np.ndarray | Sequence[Sequence[float]]
    ) -> list[list[int]]:
        """Submit + flush + read: covering-element ids per point."""
        return self.submit_points(points).result()
