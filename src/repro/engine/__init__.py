"""Batch query execution layer (see :mod:`repro.engine.batch`)."""

from repro.engine.batch import BatchQueryEngine, BatchStats

__all__ = ["BatchQueryEngine", "BatchStats"]
