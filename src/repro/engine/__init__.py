"""Query execution layer.

:mod:`repro.engine.session` is the public surface — declarative
:class:`QuerySession` with deferred :class:`ResultHandle` results and
pluggable executors.  :mod:`repro.engine.batch` is the kernel layer the
session's :class:`BatchExecutor` (and the sharded executor's workers) run
on.
"""

from repro.engine.batch import BatchQueryEngine, BatchStats
from repro.engine.session import (
    BatchExecutor,
    Executor,
    InlineExecutor,
    KNNQuery,
    PointQuery,
    Query,
    QueryBatch,
    QueryBuffer,
    QuerySession,
    RangeQuery,
    ResultHandle,
    SessionStats,
    ShardedExecutor,
)

__all__ = [
    "BatchQueryEngine",
    "BatchStats",
    "QuerySession",
    "QueryBuffer",
    "QueryBatch",
    "SessionStats",
    "Query",
    "RangeQuery",
    "KNNQuery",
    "PointQuery",
    "ResultHandle",
    "Executor",
    "InlineExecutor",
    "BatchExecutor",
    "ShardedExecutor",
]
