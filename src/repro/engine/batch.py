"""The batch query engine: array-in, array-out query execution.

Simulation analyses are batch-shaped: synapse detection probes every neuron
branch, in-situ visualization samples a whole grid of windows, and monitoring
fires "thousands of range queries ... at locations that cannot be
anticipated" between any two steps (§2.2).  Issuing those queries one
``range_query`` call at a time spends more wall clock on Python dispatch than
on index work.  :class:`BatchQueryEngine` is the front door for the batched
alternative: it normalizes query batches (ndarrays or object sequences),
optionally collapses duplicate queries, and hands the whole batch to the
index's vectorized ``batch_range_query`` / ``batch_knn`` kernels.

The engine is deliberately stateless with respect to results — it owns
normalization, dedup and accounting, while the indexes own the kernels —
so future sharding/async layers can wrap the same interface.

Since the :class:`~repro.engine.session.QuerySession` redesign the engine is
the **kernel layer**, not the public entry point: sessions (and their
executors) construct engines through :meth:`BatchQueryEngine.kernel`, and
direct ``BatchQueryEngine(index)`` construction emits a
``DeprecationWarning`` steering callers to ``QuerySession``.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry.aabb import AABB, as_box_array, as_point_array
from repro.indexes.base import KNNResult, SpatialIndex


@dataclass
class BatchStats:
    """Tallies of the engine's work, for benchmarks and capacity planning.

    The out-of-core fields mirror :class:`~repro.joins.spec.JoinStats`:
    ``budget_chunks`` counts batches the session split to honour its
    :class:`~repro.exec.budget.MemoryBudget`, ``tiles_spilled`` /
    ``spill_bytes_written`` / ``spill_bytes_read`` any spill traffic charged
    while serving batches, ``zero_copy_reads`` / ``mapped_bytes`` /
    ``tile_runs_dispatched`` the zero-copy storage telemetry (reads served
    as mmap views and mapped work units dispatched to workers), and
    ``budget_high_water`` is a gauge (merges take the max).

    The approximate-kNN fields (:mod:`repro.approx`) follow the same split:
    ``approx_descents`` / ``leaves_scanned`` count defeatist work served
    through the engine, and ``recall_estimate`` is a gauge — the *lowest*
    calibrated recall any approximate batch was routed with (merges take the
    min; it stays 1.0 while every answer is exact).
    """

    batches: int = 0
    queries: int = 0
    deduplicated: int = 0  # queries answered by copying another query's result
    budget_chunks: int = 0
    tiles_spilled: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    zero_copy_reads: int = 0
    mapped_bytes: int = 0
    tile_runs_dispatched: int = 0
    budget_high_water: int = 0
    approx_descents: int = 0
    leaves_scanned: int = 0
    recall_estimate: float = 1.0

    def merge(self, other: "BatchStats") -> None:
        self.batches += other.batches
        self.queries += other.queries
        self.deduplicated += other.deduplicated
        self.budget_chunks += other.budget_chunks
        self.tiles_spilled += other.tiles_spilled
        self.spill_bytes_written += other.spill_bytes_written
        self.spill_bytes_read += other.spill_bytes_read
        self.zero_copy_reads += other.zero_copy_reads
        self.mapped_bytes += other.mapped_bytes
        self.tile_runs_dispatched += other.tile_runs_dispatched
        self.budget_high_water = max(self.budget_high_water, other.budget_high_water)
        self.approx_descents += other.approx_descents
        self.leaves_scanned += other.leaves_scanned
        self.recall_estimate = min(self.recall_estimate, other.recall_estimate)


@dataclass
class BatchQueryEngine:
    """Executes arrays of range / kNN / point queries against one index.

    Parameters
    ----------
    index:
        Any :class:`~repro.indexes.base.SpatialIndex`.  Indexes with
        vectorized batch kernels run at array speed — LinearScan, the grids
        and the R-tree family for both query kinds, plus the KD-tree for
        batch kNN — everything else falls back to the base class's
        per-query loop, so the engine works uniformly across the library.
    dedup:
        When True (default), duplicate queries inside a batch are executed
        once and their results fanned back out.  Analysis workloads repeat
        probes heavily (every branch of a neuron probes near-identical
        windows), so this is usually a pure win; disable it for workloads
        of known-distinct queries to skip the sort.
    """

    index: SpatialIndex
    dedup: bool = True
    stats: BatchStats = field(default_factory=BatchStats)
    # Construction provenance, not state: set by .kernel() to mark a
    # kernel-layer construction that should skip the deprecation nudge.
    _kernel: InitVar[bool] = False

    def __post_init__(self, _kernel: bool) -> None:
        if not _kernel:
            warnings.warn(
                "Constructing BatchQueryEngine directly is deprecated; create a "
                "repro.engine.QuerySession instead (the engine remains the "
                "kernel layer behind its BatchExecutor, reachable via "
                "BatchQueryEngine.kernel for kernel-level plumbing).",
                DeprecationWarning,
                stacklevel=3,
            )

    @classmethod
    def kernel(cls, index: SpatialIndex, dedup: bool = True) -> "BatchQueryEngine":
        """Construct an engine as kernel-layer plumbing (no deprecation nudge).

        Sessions, executors, benchmarks of the kernels themselves and tests
        of engine internals use this; application code should talk to
        :class:`~repro.engine.session.QuerySession`.
        """
        return cls(index, dedup=dedup, _kernel=True)

    # -- range ---------------------------------------------------------------

    def range_query(self, boxes: np.ndarray | Sequence[AABB]) -> list[list[int]]:
        """One result list of element ids per query box.

        ``boxes`` is an ``(m, 2, d)`` array or a sequence of AABBs.  Result
        lists are independent copies even for deduplicated queries.
        """
        queries = as_box_array(boxes)
        m = queries.shape[0]
        self.stats.batches += 1
        self.stats.queries += m
        if m == 0:
            return []
        if self.dedup and m > 1:
            flat = np.ascontiguousarray(queries.reshape(m, -1))
            unique, inverse = np.unique(flat, axis=0, return_inverse=True)
            if unique.shape[0] < m:
                self.stats.deduplicated += m - unique.shape[0]
                unique_results = self.index.batch_range_query(
                    unique.reshape(unique.shape[0], 2, -1)
                )
                return [list(unique_results[i]) for i in inverse]
        return self.index.batch_range_query(queries)

    # -- kNN -----------------------------------------------------------------

    def knn(
        self,
        points: np.ndarray | Sequence[Sequence[float]],
        k: int,
        accuracy: float | None = None,
    ) -> list[KNNResult]:
        """One ``(distance, id)`` list per query point.

        Each list is sorted ascending by ``(distance, id)`` — the
        deterministic tie-break every index kernel implements (see
        :mod:`repro.indexes.base`) — so deduplicated fan-out and direct
        execution are indistinguishable.

        ``accuracy`` is the session planner's *routing decision*, not a
        target to resolve: ``None`` (default) runs the exact kernel, while a
        float means the planner already established the index's defeatist
        kernel meets that recall — the batch runs through
        ``approx_batch_knn`` and the defeatist work is diffed from the
        index's counters into :class:`BatchStats`.  If the index has no
        approximate kernel the engine quietly serves the batch exactly.
        """
        pts = as_point_array(points)
        m = pts.shape[0]
        self.stats.batches += 1
        self.stats.queries += m
        if m == 0:
            return []
        run = self.index.batch_knn
        if accuracy is not None:
            approx_kernel = getattr(self.index, "approx_batch_knn", None)
            if approx_kernel is not None:
                run = self._approx_knn_kernel(approx_kernel)
        if self.dedup and m > 1:
            unique, inverse = np.unique(pts, axis=0, return_inverse=True)
            if unique.shape[0] < m:
                self.stats.deduplicated += m - unique.shape[0]
                unique_results = run(unique, k)
                return [list(unique_results[i]) for i in inverse]
        return run(pts, k)

    def _approx_knn_kernel(self, approx_kernel):
        """Wrap the defeatist kernel to diff its work into the stats."""

        def run(pts: np.ndarray, k: int) -> list[KNNResult]:
            counters = self.index.counters
            descents0 = counters.approx_descents
            leaves0 = counters.leaves_scanned
            results = approx_kernel(pts, k)
            self.stats.approx_descents += counters.approx_descents - descents0
            self.stats.leaves_scanned += counters.leaves_scanned - leaves0
            return results

        return run

    # -- point ---------------------------------------------------------------

    def point_query(self, points: np.ndarray | Sequence[Sequence[float]]) -> list[list[int]]:
        """Stabbing queries: ids of all elements whose box covers each point.

        Executed as degenerate (zero-extent) range queries, which every
        batch kernel supports.
        """
        pts = as_point_array(points)
        if pts.shape[0] == 0:
            self.stats.batches += 1
            return []
        boxes = np.stack([pts, pts], axis=1)  # (m, 2, d) with lo == hi
        return self.range_query(boxes)
