"""The curated index registry: name → class for every shipped index.

Examples, benchmarks and tests used to deep-import module paths
(``from repro.core.uniform_grid import UniformGrid``) to enumerate the
library; the registry gives them one stable surface::

    from repro import INDEX_REGISTRY, make_index

    for name in available_indexes():
        index = make_index(name)
        index.bulk_load(items)

Keys are short kebab-free snake_case names; values are the classes
themselves, so ``INDEX_REGISTRY["rtree"](max_entries=32)`` and
``make_index("rtree", max_entries=32)`` are equivalent.
"""

from __future__ import annotations

from repro.approx.spill_tree import SpillTree
from repro.core.multires_grid import MultiResolutionGrid
from repro.core.spatial_lsh import SpatialLSH
from repro.core.uniform_grid import UniformGrid
from repro.indexes.base import SpatialIndex
from repro.indexes.crtree import CRTree
from repro.indexes.disk_rtree import DiskRTree
from repro.indexes.kdtree import KDTree
from repro.indexes.linear_scan import LinearScan
from repro.indexes.loose_octree import LooseOctree
from repro.indexes.octree import Octree
from repro.indexes.quadtree import QuadTree
from repro.indexes.rplus import RPlusTree
from repro.indexes.rstar import RStarTree
from repro.indexes.rtree import RTree

INDEX_REGISTRY: dict[str, type[SpatialIndex]] = {
    "linear_scan": LinearScan,
    "rtree": RTree,
    "rstar": RStarTree,
    "rplus": RPlusTree,
    "disk_rtree": DiskRTree,
    "crtree": CRTree,
    "kdtree": KDTree,
    "quadtree": QuadTree,
    "octree": Octree,
    "loose_octree": LooseOctree,
    "uniform_grid": UniformGrid,
    "multires_grid": MultiResolutionGrid,
    "spatial_lsh": SpatialLSH,
    "spill_tree": SpillTree,
}


def available_indexes() -> list[str]:
    """Registered index names, in registry order."""
    return list(INDEX_REGISTRY)


def make_index(name: str, **kwargs) -> SpatialIndex:
    """Instantiate a registered index by name.

    ``kwargs`` are forwarded to the class constructor.  Unknown names raise
    ``KeyError`` listing the registry, so typos fail loudly.
    """
    try:
        cls = INDEX_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown index {name!r}; available: {', '.join(INDEX_REGISTRY)}"
        ) from None
    return cls(**kwargs)
