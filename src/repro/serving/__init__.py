"""The serving tier: event-loop front ends over a persistent worker pool.

The paper's motivating workload — neuroscientists interactively probing an
indexed brain model — is a *serving* problem: many concurrent range / kNN /
join requests against a shared index, not one scripted batch.  The session
layer (PRs 3-5) already decouples submission from execution; this package
adds the two missing pieces:

* :class:`~repro.serving.pool.WorkerPool` — a **long-lived** process pool
  whose workers attach index snapshots through
  ``multiprocessing.shared_memory``.  A snapshot is exported exactly once
  per (index, pool); after that, only probe arrays and result id arrays
  cross process boundaries.  ``ShardedExecutor`` and
  ``ShardedJoinExecutor`` route through it instead of forking a fresh pool
  per flush.
* :class:`~repro.serving.async_executor.AsyncExecutor` — an event-loop
  flush policy over one :class:`~repro.engine.QuerySession` or
  :class:`~repro.joins.session.JoinSession`: batch under load, flush on
  submit when the loop goes idle, and never hold a request past the
  latency budget.  Handles become ``await``-able.

:class:`~repro.serving.async_executor.ServingSession` bundles both into the
"heavy traffic" front door used by ``benchmarks/bench_serving.py`` and
``examples/serving.py``.

Continuous queries get the push-based counterpart
(:mod:`repro.serving.push`): :class:`~repro.serving.push.ContinuousServing`
wraps a :class:`~repro.continuous.ContinuousSession` so clients
``subscribe()`` once and consume an async
:class:`~repro.serving.push.DeltaStream` of exact per-tick deltas while the
producer ``await tick(updates)``-s maintenance off-loop.
"""

from repro.serving.async_executor import AsyncExecutor, FlushPolicy, ServingSession
from repro.serving.pool import WorkerPool, default_pool, shutdown_default_pool
from repro.serving.push import ContinuousServing, DeltaStream

__all__ = [
    "AsyncExecutor",
    "FlushPolicy",
    "ServingSession",
    "WorkerPool",
    "default_pool",
    "shutdown_default_pool",
    "ContinuousServing",
    "DeltaStream",
]
