"""Event-loop executors: asyncio front ends over the session layer.

A session batches best when many requests land between flushes; an event
loop interleaves many client tasks naturally.  :class:`AsyncExecutor`
connects the two with a *flush policy*:

* **batch under load** — submissions buffer in the session exactly as in
  synchronous use; concurrent client tasks coalesce into one flush;
* **flush on idle** — when the event loop goes quiet (a scheduling pass
  adds no new submissions), pending work flushes immediately instead of
  waiting out a timer;
* **latency budget** — no request waits longer than
  :attr:`FlushPolicy.max_delay` for stragglers, and a queue reaching
  :attr:`FlushPolicy.max_batch` flushes at once.

Each flush runs in a worker thread (``asyncio.to_thread``), so the loop
keeps accepting submissions while the kernels execute.  Handles submitted
through the executor become awaitable: ``await handle`` parks the client
task until its flush settles it.  Flush causes and latencies feed the
session stats (``flush_triggers`` / ``flush_seconds`` / per-flush
latencies), which :func:`repro.analysis.session_report.session_report`
renders as the serving telemetry line.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.session import KNNQuery, PointQuery, Query, QuerySession, RangeQuery, ResultHandle
from repro.geometry.aabb import AABB
from repro.indexes.base import KNNResult, SpatialIndex
from repro.joins.session import JoinHandle, JoinSession
from repro.joins.spec import JoinSpec
from repro.obs import (
    MetricsServer,
    get_tracer,
    global_registry,
    render_json,
    render_prometheus,
)
from repro.obs import span as _span


@dataclass(frozen=True)
class FlushPolicy:
    """When the event-loop flusher commits the buffered queue.

    ``max_batch`` bounds queue depth (reaching it flushes with cause
    ``"full"``); ``max_delay`` is the latency budget in seconds (cause
    ``"deadline"``); ``idle_flush`` flushes as soon as a scheduling pass
    adds nothing new (cause ``"idle"`` — the flush-on-submit-when-idle
    behaviour).  Disable ``idle_flush`` to maximize batch size under a
    pure latency budget.
    """

    max_batch: int = 1024
    max_delay: float = 0.002
    idle_flush: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")


class AsyncExecutor:
    """Drives one session's flushes from the event loop.

    Wraps a :class:`~repro.engine.session.QuerySession` or
    :class:`~repro.joins.session.JoinSession`; ``submit*`` mirrors the
    session's surface but returns handles that are safe to ``await``.  One
    flusher task owns flush timing; submissions never flush inline, so a
    client task's latency is (time to next flush) + (its share of one
    batched execution) rather than one full execution per request.
    """

    def __init__(self, session: QuerySession | JoinSession, policy: FlushPolicy | None = None) -> None:
        self.session = session
        self.policy = policy if policy is not None else FlushPolicy()
        self.flush_latencies: list[float] = []
        self._pending: list[Any] = []  # handles whose waiters we complete
        self._seq = 0
        self._wake: asyncio.Event | None = None
        self._flusher: asyncio.Task | None = None
        self._closed = False

    # -- submission ------------------------------------------------------------

    def _register(self, handle):
        loop = asyncio.get_running_loop()
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._flusher is None or self._flusher.done():
            if self._closed:
                raise RuntimeError("AsyncExecutor is closed")
            self._flusher = loop.create_task(self._run_flusher())
        handle._waiter = loop.create_future()
        self._pending.append(handle)
        self._seq += 1
        self._wake.set()
        return handle

    async def submit(self, request: Query | JoinSpec, *args: Any, **kwargs: Any):
        """Buffer one query value or join spec; returns an awaitable handle."""
        return self._register(self.session.submit(request, *args, **kwargs))

    async def submit_ranges(self, boxes, tag: Any = None) -> ResultHandle:
        return self._register(self.session.submit_ranges(boxes, tag))

    async def submit_knns(self, points, k: int, tag: Any = None) -> ResultHandle:
        return self._register(self.session.submit_knns(points, k, tag))

    async def submit_points(self, points, tag: Any = None) -> ResultHandle:
        return self._register(self.session.submit_points(points, tag))

    @property
    def pending(self) -> int:
        """Requests submitted through this executor and not yet settled."""
        return len(self._pending)

    # -- the flusher -----------------------------------------------------------

    async def _run_flusher(self) -> None:
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        while not self._closed:
            await self._wake.wait()
            self._wake.clear()
            if self._closed:
                break
            if not self._pending:
                continue
            deadline = loop.time() + self.policy.max_delay
            trigger = "deadline"
            while True:
                if self.session.pending >= self.policy.max_batch:
                    trigger = "full"
                    break
                seq_before = self._seq
                # One scheduling pass: every runnable client task gets to
                # submit.  If none did, the loop is idle — flush now.
                await asyncio.sleep(0)
                if self.policy.idle_flush and self._seq == seq_before:
                    trigger = "idle"
                    break
                remaining = deadline - loop.time()
                if remaining <= 0:
                    trigger = "deadline"
                    break
                if self._seq == seq_before:
                    # Not idle-flushing: nothing new this pass, so yield for
                    # a real slice of the budget instead of spinning.
                    await asyncio.sleep(min(remaining, self.policy.max_delay / 4))
            await self._flush_once(trigger)

    async def _flush_once(self, trigger: str) -> None:
        pending, self._pending = self._pending, []
        if not pending and not self.session.pending:
            return
        start = time.perf_counter()
        try:
            with _span("serving.flush", trigger=trigger, requests=len(pending)):
                # The thread hop keeps the loop responsive during execution —
                # new submissions buffer for the next flush meanwhile.
                await asyncio.to_thread(self.session.flush)
        except Exception:
            # The session already settled each affected handle with its
            # error; per-request `await handle` re-raises it.  The flush-
            # level exception has no other consumer here.
            pass
        elapsed = time.perf_counter() - start
        self.flush_latencies.append(elapsed)
        self.session.stats.record_trigger(trigger)
        metrics = getattr(self.session, "metrics", None)
        if metrics is not None:
            metrics.counter(f"serving.flush.trigger.{trigger}").inc()
            metrics.histogram("serving.flush.seconds").observe(elapsed)
        for handle in pending:
            waiter = handle._waiter
            if waiter is not None and not waiter.done():
                waiter.set_result(None)

    # -- telemetry -------------------------------------------------------------

    def latency_summary(self) -> dict[str, float]:
        """p50/p99/max of per-flush wall-clock latencies, in seconds."""
        if not self.flush_latencies:
            return {"flushes": 0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        lat = np.sort(np.asarray(self.flush_latencies))
        return {
            "flushes": float(lat.shape[0]),
            "p50": float(np.percentile(lat, 50)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat[-1]),
        }

    # -- lifecycle -------------------------------------------------------------

    async def aclose(self) -> None:
        """Flush stragglers and stop the flusher (idempotent)."""
        if self._closed:
            if self._flusher is not None:
                await self._flusher
                self._flusher = None
            return
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._flusher is not None:
            await self._flusher
            self._flusher = None
        await self._flush_once("close")

    async def __aenter__(self) -> "AsyncExecutor":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


class ServingSession:
    """The "heavy traffic" front door: async queries + joins over one pool.

    Bundles a :class:`~repro.engine.session.QuerySession` and a
    :class:`~repro.joins.session.JoinSession` — both routed through one
    persistent :class:`~repro.serving.pool.WorkerPool` — behind awaitable
    convenience methods.  N client tasks share the two flushers, so
    concurrent requests batch into few executor runs while each client
    just awaits its own answer::

        async with ServingSession(index) as serving:
            ids = await serving.range_query(box)
            nn = await serving.knn((1.0, 2.0, 3.0), k=8)
            pairs = await serving.join(SelfJoinSpec(items))

    The pool is shared (the process-wide default unless one is passed) and
    is therefore *not* closed with the session.
    """

    def __init__(
        self,
        index: SpatialIndex,
        *,
        pool=None,
        policy: FlushPolicy | None = None,
        workers: int | None = None,
        min_shard: int = 512,
        join_min_shard: int = 2048,
    ) -> None:
        from repro.engine.session import ShardedExecutor
        from repro.joins.session import ShardedJoinExecutor
        from repro.serving.pool import default_pool

        self.pool = pool if pool is not None else default_pool()
        self.index = index
        # Shard as wide as the pool actually is — not as wide as the CPU
        # count the executors would otherwise assume.
        workers = workers if workers is not None else self.pool.workers
        self.queries = QuerySession(
            index, executor=ShardedExecutor(workers=workers, min_shard=min_shard, pool=self.pool)
        )
        self.joins = JoinSession(
            executor=ShardedJoinExecutor(workers=workers, min_shard=join_min_shard, pool=self.pool)
        )
        self.query_executor = AsyncExecutor(self.queries, policy)
        self.join_executor = AsyncExecutor(self.joins, policy)

    # -- awaitable request surface --------------------------------------------

    async def range_query(self, box: AABB) -> list[int]:
        handle = await self.query_executor.submit(RangeQuery(box))
        return await handle

    async def knn(self, point: Sequence[float], k: int) -> KNNResult:
        handle = await self.query_executor.submit(KNNQuery(tuple(point), k=k))
        return await handle

    async def point_query(self, point: Sequence[float]) -> list[int]:
        handle = await self.query_executor.submit(PointQuery(tuple(point)))
        return await handle

    async def join(self, spec: JoinSpec, strategy: Any = None) -> Any:
        handle = await self.join_executor.submit(spec, strategy)
        return await handle

    async def submit(self, request: Query | JoinSpec) -> ResultHandle | JoinHandle:
        """Route a query value or join spec to the right executor."""
        if isinstance(request, (RangeQuery, KNNQuery, PointQuery)):
            return await self.query_executor.submit(request)
        return await self.join_executor.submit(request)

    # -- observability ---------------------------------------------------------

    def dump_metrics(self) -> dict[str, dict]:
        """One merged snapshot of everything this session can see: the
        query session's registry, the join session's registry, and the
        process-global registry (storage/spill/approx layers plus the
        worker-side deltas the pool merged back).  Counters and histogram
        buckets add; gauges keep their max."""
        from repro.obs import MetricsRegistry

        merged = MetricsRegistry()
        merged.merge_snapshot(self.queries.metrics.snapshot())
        merged.merge_snapshot(self.joins.metrics.snapshot())
        merged.merge_snapshot(global_registry().snapshot())
        return merged.snapshot()

    def metrics_text(self) -> str:
        """The merged snapshot in Prometheus text exposition format."""
        return render_prometheus(self.dump_metrics())

    def metrics_json(self, indent: int | None = None) -> str:
        """The merged snapshot as JSON (histograms keep p50/p95/p99)."""
        return render_json(self.dump_metrics(), indent=indent)

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
        """Start a live scrape endpoint over :meth:`dump_metrics`.

        ``GET /metrics`` serves Prometheus text, ``GET /metrics.json`` the
        JSON snapshot; ``port=0`` binds an ephemeral port (``server.port``).
        The caller owns the returned server (``server.close()``)."""
        return MetricsServer(self.dump_metrics, host=host, port=port)

    def export_trace(self, path: str | None = None) -> list[dict]:
        """This process's collected spans as Chrome ``trace_event`` JSON
        (worker spans arrive here via the pool's telemetry merge)."""
        return get_tracer().export_chrome(path)

    # -- lifecycle -------------------------------------------------------------

    async def aclose(self) -> None:
        await self.query_executor.aclose()
        await self.join_executor.aclose()
        self.joins.close()  # spill files; the shared pool stays up

    async def __aenter__(self) -> "ServingSession":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
