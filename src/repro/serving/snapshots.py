"""Index snapshots as plain arrays: export, staleness, worker rehydration.

The worker pool never pickles an index.  The parent exports a *payload* —
a dict of contiguous arrays describing the index contents — publishes it
through :class:`~repro.serving.shm.SegmentGroup`, and each worker rebuilds a
query-equivalent engine from the attached views:

* ``"grid"`` payloads carry the :class:`~repro.core.uniform_grid._GridSnapshot`
  arrays (compacted, so no overlay replay is needed) and rehydrate into a
  read-only :class:`SnapshotGridIndex` — the worker probes the *same* bucket
  tables the parent built, through the same vectorized kernels.
* ``"packed"`` payloads carry the ``(eids, boxes)`` element tables of any
  index implementing :meth:`~repro.indexes.base.SpatialIndex.export_items`
  and rehydrate into an STR-packed R-tree.  This is query-equivalent by the
  library-wide contract: range/point results are id *sets* and kNN lists
  follow the deterministic ``(distance, id)`` order, so every exact index
  over the same elements answers identically.

Exports are cached per (index, pool); :func:`index_fingerprint` detects
mutations (maintenance counters plus the identity of the structures every
``bulk_load`` replaces) so stale payloads are re-exported instead of served.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.uniform_grid import UniformGrid, _GridSnapshot
from repro.geometry.aabb import AABB, array_to_boxes
from repro.indexes.base import Item, KNNResult, SpatialIndex
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

#: Payload kinds a worker knows how to rehydrate.
PAYLOAD_KINDS = ("grid", "packed")


# -- parent side: export + staleness -------------------------------------------


def export_index_payload(
    index: SpatialIndex,
) -> tuple[str, dict[str, np.ndarray], dict[str, float]] | None:
    """``(kind, arrays, scalars)`` describing ``index``, or ``None``.

    ``None`` means the index cannot be served from shared memory (no
    exportable representation, or it is empty — fan-out would be pure
    overhead); callers fall back to single-process execution.
    """
    if isinstance(index, UniformGrid):
        exported = index.snapshot_export()
        if exported is not None:
            arrays, cell = exported
            return "grid", arrays, {"cell": cell}
    packed = index.export_items()
    if packed is None:
        return None
    eids, boxes = packed
    if eids.shape[0] == 0:
        return None
    return "packed", {"eids": eids, "boxes": boxes}, {}


def index_fingerprint(index: SpatialIndex) -> tuple:
    """A cheap staleness stamp: equal fingerprints ⇒ identical contents.

    Maintenance operations bump ``counters.inserts/deletes/updates`` in
    every index, and ``bulk_load`` replaces the container objects listed
    below, so any mutation path moves the fingerprint.  Benign events (a
    counter reset, a snapshot rebuild) may also move it — that only costs
    one redundant export, never a stale answer.
    """
    c = index.counters
    parts: list = [
        type(index).__name__,
        len(index),
        c.inserts,
        c.deletes,
        c.updates,
    ]
    for attr in ("_boxes", "_root", "_grids"):
        obj = getattr(index, attr, None)
        if obj is not None:
            parts.append(id(obj))
    snap = getattr(index, "_snapshot", None)
    if snap is not None:
        parts.extend((id(snap), snap.dirty, len(snap.extra_eids)))
    return tuple(parts)


def items_fingerprint(items: Sequence[Item]) -> tuple:
    """Staleness stamp for a join-side item sequence.

    Join specs carry materialized ``(eid, AABB)`` sequences; tuples/lists
    are treated as immutable once submitted (the spec dataclasses are
    frozen), so identity plus length suffices.
    """
    return (id(items), len(items))


def export_items_payload(items: Sequence[Item]) -> dict[str, np.ndarray]:
    """Pack an item sequence into ``{"eids", "boxes"}`` arrays."""
    from repro.geometry.aabb import boxes_to_array

    eids = np.fromiter((eid for eid, _ in items), dtype=np.int64, count=len(items))
    boxes = boxes_to_array([box for _, box in items])
    return {"eids": eids, "boxes": boxes}


# -- worker side: rehydration --------------------------------------------------


class _Population:
    """Stands in for the grid's ``_boxes`` dict in the read-only shell:
    the batch kernels only ask it for truthiness and length."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n > 0


class SnapshotGridIndex(UniformGrid):
    """A read-only :class:`UniformGrid` rebuilt from exported snapshot arrays.

    The dense ``_GridSnapshot`` tables are adopted directly (typically as
    views over shared memory), so the vectorized ``batch_range_query`` /
    ``batch_knn`` paths run unchanged.  The scalar paths — which the batch
    kernels fall back to on oversized cell windows — cannot walk the absent
    bucket dicts, so they delegate to a lazily built
    :class:`~repro.indexes.linear_scan.LinearScan` oracle over the same
    tables (identical answers by the ordering contract).  Mutations raise.
    """

    def __init__(self, arrays: dict[str, np.ndarray], cell: float) -> None:
        corners = arrays["universe"]
        universe = AABB(corners[0].tolist(), corners[1].tolist())
        super().__init__(universe=universe, cell_size=float(cell))
        self._snapshot = _GridSnapshot(
            keys=arrays["keys"],
            starts=arrays["starts"],
            counts=arrays["counts"],
            entry_rows=arrays["entry_rows"],
            eids=arrays["eids"],
            boxes=arrays["boxes"],
            strides=arrays["strides"],
            tops=arrays["tops"],
            origin=arrays["origin"],
            cell=float(cell),
        )
        self._boxes = _Population(int(arrays["eids"].shape[0]))  # type: ignore[assignment]
        self._oracle: LinearScan | None = None

    # -- read-only --------------------------------------------------------

    def bulk_load(self, items) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def insert(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def delete(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    # -- scalar paths through the oracle ----------------------------------

    def _scan(self) -> LinearScan:
        if self._oracle is None:
            snap = self._snapshot
            assert snap is not None
            oracle = LinearScan(counters=self.counters)
            oracle._boxes = dict(zip(snap.eids.tolist(), array_to_boxes(snap.boxes)))
            oracle._dense = (snap.eids, snap.boxes)
            self._oracle = oracle
        return self._oracle

    def range_query(self, box: AABB) -> list[int]:
        return self._scan().range_query(box)

    def knn(self, point, k: int) -> KNNResult:
        return self._scan().knn(point, k)

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        snap = self._snapshot
        assert snap is not None
        return snap.eids.copy(), snap.boxes.copy()


def items_from_arrays(eids: np.ndarray, boxes: np.ndarray) -> list[Item]:
    """Rebuild the ``(eid, AABB)`` list a join strategy consumes.

    Row order is preserved — the parent ships self-join payloads sorted by
    id, and prefix sharding depends on that order surviving the round trip.
    """
    return list(zip(eids.tolist(), array_to_boxes(boxes)))


def build_worker_index(
    kind: str, arrays: dict[str, np.ndarray], scalars: dict[str, float]
) -> SpatialIndex:
    """Rehydrate one payload into a query-serving index (worker side)."""
    if kind == "grid":
        return SnapshotGridIndex(arrays, scalars["cell"])
    if kind == "packed":
        tree = RTree(max_entries=16)
        tree.bulk_load(items_from_arrays(arrays["eids"], arrays["boxes"]))
        return tree
    raise ValueError(f"unknown payload kind: {kind!r}")
