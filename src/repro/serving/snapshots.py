"""Index snapshots as plain arrays: export, staleness, worker rehydration.

The worker pool never pickles an index.  The parent exports a *payload* —
a dict of contiguous arrays describing the index contents — publishes it
through :class:`~repro.serving.shm.SegmentGroup`, and each worker rebuilds a
query-equivalent engine from the attached views:

* ``"grid"`` payloads carry the :class:`~repro.core.uniform_grid._GridSnapshot`
  arrays (compacted, so no overlay replay is needed) and rehydrate into a
  read-only :class:`SnapshotGridIndex` — the worker probes the *same* bucket
  tables the parent built, through the same vectorized kernels.
* ``"tree"`` payloads carry an R-tree family index's own structure — the
  packed-entry node tables of :meth:`~repro.indexes.rtree.RTree.export_tree`
  — and rehydrate into a read-only :class:`SnapshotTreeIndex` that traverses
  the *parent's* tree directly, instead of paying an STR rebuild per
  (index, pool).
* ``"spill"`` payloads carry a :class:`~repro.approx.spill_tree.SpillTree`'s
  dense tables plus its built flat tree and rehydrate into a
  :class:`SnapshotSpillTree`, so workers serve both the exact and the
  defeatist (approximate) kNN kernels with zero rebuild.
* ``"packed"`` payloads carry the ``(eids, boxes)`` element tables of any
  other index implementing
  :meth:`~repro.indexes.base.SpatialIndex.export_items` and rehydrate into
  an STR-packed R-tree.  This is query-equivalent by the library-wide
  contract: range/point results are id *sets* and kNN lists follow the
  deterministic ``(distance, id)`` order, so every exact index over the
  same elements answers identically.

Exports are cached per (index, pool); :func:`index_fingerprint` detects
mutations (maintenance counters plus the identity of the structures every
``bulk_load`` replaces) so stale payloads are re-exported instead of served.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.approx.spill_tree import SpillTree, _FlatSpillTree
from repro.core.uniform_grid import UniformGrid, _GridSnapshot
from repro.geometry.aabb import AABB, array_to_boxes, as_box_array
from repro.indexes.base import Item, KNNResult, SpatialIndex
from repro.indexes.linear_scan import LinearScan
from repro.indexes.rtree import RTree

#: Payload kinds a worker knows how to rehydrate.
PAYLOAD_KINDS = ("grid", "tree", "spill", "packed")


# -- parent side: export + staleness -------------------------------------------


def export_index_payload(
    index: SpatialIndex,
) -> tuple[str, dict[str, np.ndarray], dict[str, float]] | None:
    """``(kind, arrays, scalars)`` describing ``index``, or ``None``.

    ``None`` means the index cannot be served from shared memory (no
    exportable representation, or it is empty — fan-out would be pure
    overhead); callers fall back to single-process execution.
    """
    if isinstance(index, UniformGrid):
        exported = index.snapshot_export()
        if exported is not None:
            arrays, cell = exported
            return "grid", arrays, {"cell": cell}
    if isinstance(index, SpillTree):
        spill = index.export_spill()
        if spill is not None:
            return "spill", spill, {}
    if isinstance(index, RTree):
        tree = index.export_tree()
        if tree is not None:
            return "tree", tree, {}
    packed = index.export_items()
    if packed is None:
        return None
    eids, boxes = packed
    if eids.shape[0] == 0:
        return None
    return "packed", {"eids": eids, "boxes": boxes}, {}


def index_fingerprint(index: SpatialIndex) -> tuple:
    """A cheap staleness stamp: equal fingerprints ⇒ identical contents.

    Maintenance operations bump ``counters.inserts/deletes/updates`` in
    every index, and ``bulk_load`` replaces the container objects listed
    below, so any mutation path moves the fingerprint.  Benign events (a
    counter reset, a snapshot rebuild) may also move it — that only costs
    one redundant export, never a stale answer.
    """
    c = index.counters
    parts: list = [
        type(index).__name__,
        len(index),
        c.inserts,
        c.deletes,
        c.updates,
    ]
    for attr in ("_boxes", "_root", "_grids"):
        obj = getattr(index, attr, None)
        if obj is not None:
            parts.append(id(obj))
    snap = getattr(index, "_snapshot", None)
    if snap is not None:
        parts.extend((id(snap), snap.dirty, len(snap.extra_eids)))
    return tuple(parts)


def items_fingerprint(items: Sequence[Item]) -> tuple:
    """Staleness stamp for a join-side item sequence.

    Join specs carry materialized ``(eid, AABB)`` sequences; tuples/lists
    are treated as immutable once submitted (the spec dataclasses are
    frozen), so identity plus length suffices.
    """
    return (id(items), len(items))


def export_items_payload(items: Sequence[Item]) -> dict[str, np.ndarray]:
    """Pack an item sequence into ``{"eids", "boxes"}`` arrays."""
    from repro.geometry.aabb import boxes_to_array

    eids = np.fromiter((eid for eid, _ in items), dtype=np.int64, count=len(items))
    boxes = boxes_to_array([box for _, box in items])
    return {"eids": eids, "boxes": boxes}


# -- worker side: rehydration --------------------------------------------------


class _Population:
    """Stands in for the grid's ``_boxes`` dict in the read-only shell:
    the batch kernels only ask it for truthiness and length."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n > 0


class SnapshotGridIndex(UniformGrid):
    """A read-only :class:`UniformGrid` rebuilt from exported snapshot arrays.

    The dense ``_GridSnapshot`` tables are adopted directly (typically as
    views over shared memory), so the vectorized ``batch_range_query`` /
    ``batch_knn`` paths run unchanged.  The scalar paths — which the batch
    kernels fall back to on oversized cell windows — cannot walk the absent
    bucket dicts, so they delegate to a lazily built
    :class:`~repro.indexes.linear_scan.LinearScan` oracle over the same
    tables (identical answers by the ordering contract).  Mutations raise.
    """

    def __init__(self, arrays: dict[str, np.ndarray], cell: float) -> None:
        corners = arrays["universe"]
        universe = AABB(corners[0].tolist(), corners[1].tolist())
        super().__init__(universe=universe, cell_size=float(cell))
        self._snapshot = _GridSnapshot(
            keys=arrays["keys"],
            starts=arrays["starts"],
            counts=arrays["counts"],
            entry_rows=arrays["entry_rows"],
            eids=arrays["eids"],
            boxes=arrays["boxes"],
            strides=arrays["strides"],
            tops=arrays["tops"],
            origin=arrays["origin"],
            cell=float(cell),
        )
        self._boxes = _Population(int(arrays["eids"].shape[0]))  # type: ignore[assignment]
        self._oracle: LinearScan | None = None

    # -- read-only --------------------------------------------------------

    def bulk_load(self, items) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def insert(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def delete(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        raise TypeError("SnapshotGridIndex is read-only")

    # -- scalar paths through the oracle ----------------------------------

    def _scan(self) -> LinearScan:
        if self._oracle is None:
            snap = self._snapshot
            assert snap is not None
            oracle = LinearScan(counters=self.counters)
            oracle._boxes = dict(zip(snap.eids.tolist(), array_to_boxes(snap.boxes)))
            oracle._dense = (snap.eids, snap.boxes)
            self._oracle = oracle
        return self._oracle

    def range_query(self, box: AABB) -> list[int]:
        return self._scan().range_query(box)

    def knn(self, point, k: int) -> KNNResult:
        return self._scan().knn(point, k)

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        snap = self._snapshot
        assert snap is not None
        return snap.eids.copy(), snap.boxes.copy()


class SnapshotTreeIndex(SpatialIndex):
    """A read-only R-tree served straight from exported node tables.

    The parent's :meth:`~repro.indexes.rtree.RTree.export_tree` arrays are
    adopted as-is (typically views over shared memory): ``batch_range_query``
    runs the same carried-query traversal as the live R-tree and
    ``batch_knn`` the shared best-first kernel, with node handles being flat
    indices into the tables — the per-node entry arrays the live tree packs
    lazily are already packed here, so a worker *attaches* the parent's tree
    instead of STR-rebuilding one.  Scalar paths delegate to a lazily built
    :class:`~repro.indexes.linear_scan.LinearScan` oracle over the leaf
    entries (identical answers by the ordering contract).  Mutations raise.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        super().__init__()
        self._starts = arrays["node_starts"]
        self._is_leaf = arrays["node_is_leaf"].astype(bool)
        self._entry_boxes = arrays["entry_boxes"]
        self._entry_refs = arrays["entry_refs"]
        leaves = np.nonzero(self._is_leaf)[0]
        self._size = int((self._starts[leaves + 1] - self._starts[leaves]).sum())
        self._dims = int(self._entry_boxes.shape[2])
        self._packed: dict[int, tuple[bool, np.ndarray, object]] = {}
        self._oracle: LinearScan | None = None

    # -- read-only --------------------------------------------------------

    def bulk_load(self, items) -> None:
        raise TypeError("SnapshotTreeIndex is read-only")

    def insert(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotTreeIndex is read-only")

    def delete(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotTreeIndex is read-only")

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        raise TypeError("SnapshotTreeIndex is read-only")

    # -- batch kernels over the flat tables --------------------------------

    def batch_range_query(self, boxes) -> list[list[int]]:
        queries = as_box_array(boxes)
        m = queries.shape[0]
        if m == 0:
            return []
        results: list[list[int]] = [[] for _ in range(m)]
        if self._size == 0:
            return results
        if queries.shape[2] != self._dims:
            raise ValueError(
                f"queries have {queries.shape[2]} dims, index has {self._dims}"
            )
        counters = self.counters
        starts = self._starts
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(m))]
        while stack:
            nid, active = stack.pop()
            lo, hi = int(starts[nid]), int(starts[nid + 1])
            if hi == lo:
                continue
            entry_boxes = self._entry_boxes[lo:hi]
            refs = self._entry_refs[lo:hi]
            counters.bytes_touched += entry_boxes.nbytes + refs.nbytes
            pending = queries[active]
            overlap = np.all(
                (entry_boxes[:, None, 0, :] <= pending[None, :, 1, :])
                & (pending[None, :, 0, :] <= entry_boxes[:, None, 1, :]),
                axis=-1,
            )  # (entries, active queries)
            if self._is_leaf[nid]:
                counters.elem_tests += overlap.size
                rows, cols = np.nonzero(overlap)
                eids = refs.tolist()
                for entry_i, query_i in zip(rows.tolist(), cols.tolist()):
                    results[active[query_i]].append(eids[entry_i])
            else:
                counters.node_tests += overlap.size
                for entry_i in range(hi - lo):
                    sub = active[overlap[entry_i]]
                    if sub.size:
                        counters.pointer_follows += 1
                        stack.append((int(refs[entry_i]), sub))
        return results

    def _expand(self, handle: object) -> tuple[bool, np.ndarray, object]:
        nid = int(handle)  # type: ignore[arg-type]
        cached = self._packed.get(nid)
        if cached is not None:
            return cached
        lo, hi = int(self._starts[nid]), int(self._starts[nid + 1])
        entry_boxes = self._entry_boxes[lo:hi]
        refs = self._entry_refs[lo:hi]
        self.counters.bytes_touched += entry_boxes.nbytes + refs.nbytes
        is_leaf = bool(self._is_leaf[nid])
        packed = (is_leaf, entry_boxes, refs if is_leaf else refs.tolist())
        self._packed[nid] = packed
        return packed

    def batch_knn(self, points, k: int) -> list[KNNResult]:
        from repro.geometry.aabb import as_point_array
        from repro.indexes.batch_knn import best_first_batch_knn

        pts = as_point_array(points)
        m = pts.shape[0]
        if m == 0:
            return []
        if k <= 0 or self._size == 0:
            return [[] for _ in range(m)]
        if pts.shape[1] != self._dims:
            raise ValueError(
                f"points have {pts.shape[1]} dims, index has {self._dims}"
            )
        return best_first_batch_knn(
            pts, k, self._size, 0, self._expand, self.counters
        )

    # -- scalar paths through the oracle ----------------------------------

    def _leaf_items(self) -> tuple[np.ndarray, np.ndarray]:
        leaves = np.nonzero(self._is_leaf)[0]
        rows = np.concatenate(
            [
                np.arange(int(self._starts[nid]), int(self._starts[nid + 1]))
                for nid in leaves
            ]
        )
        return self._entry_refs[rows], self._entry_boxes[rows]

    def _scan(self) -> LinearScan:
        if self._oracle is None:
            eids, boxes = self._leaf_items()
            oracle = LinearScan(counters=self.counters)
            oracle._boxes = dict(zip(eids.tolist(), array_to_boxes(boxes)))
            oracle._dense = (eids, boxes)
            self._oracle = oracle
        return self._oracle

    def range_query(self, box: AABB) -> list[int]:
        return self._scan().range_query(box)

    def knn(self, point, k: int) -> KNNResult:
        return self._scan().knn(point, k)

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        eids, boxes = self._leaf_items()
        order = np.argsort(eids, kind="stable")
        return eids[order].copy(), boxes[order].copy()

    def __len__(self) -> int:
        return self._size

    def memory_bytes(self) -> int:
        return int(
            self._starts.nbytes
            + self._is_leaf.nbytes
            + self._entry_boxes.nbytes
            + self._entry_refs.nbytes
        )


class SnapshotSpillTree(SpillTree):
    """A read-only :class:`~repro.approx.spill_tree.SpillTree` over exported
    arrays: the dense ``(eids, boxes)`` tables plus the parent's *built*
    flat tree, so both the exact batch kernels and the defeatist
    ``approx_batch_knn`` sweep run with zero rebuild.  Scalar paths
    delegate to a lazily built LinearScan oracle (the population dict never
    crossed the process boundary).  Mutations raise.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        SpatialIndex.__init__(self)
        eids = arrays["eids"]
        self.tau = 0.0  # introspection only; the tree is prebuilt
        self.leaf_size = 0
        self.split_rule = None  # type: ignore[assignment]
        self.seed = 0
        self.calibration_sample = 128
        self._boxes = _Population(int(eids.shape[0]))  # type: ignore[assignment]
        self._dense = (eids, arrays["boxes"])
        self._tree = _FlatSpillTree.from_arrays(arrays)
        self._recall_cache: dict[int, float] = {}
        self._oracle: LinearScan | None = None

    # -- read-only --------------------------------------------------------

    def bulk_load(self, items) -> None:
        raise TypeError("SnapshotSpillTree is read-only")

    def insert(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotSpillTree is read-only")

    def delete(self, eid: int, box: AABB) -> None:
        raise TypeError("SnapshotSpillTree is read-only")

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        raise TypeError("SnapshotSpillTree is read-only")

    # -- scalar paths through the oracle ----------------------------------

    def _scan(self) -> LinearScan:
        if self._oracle is None:
            eids, boxes = self._dense  # type: ignore[misc]
            oracle = LinearScan(counters=self.counters)
            oracle._boxes = dict(zip(eids.tolist(), array_to_boxes(boxes)))
            oracle._dense = (eids, boxes)
            self._oracle = oracle
        return self._oracle

    def range_query(self, box: AABB) -> list[int]:
        return self._scan().range_query(box)

    def knn(self, point, k: int) -> KNNResult:
        return self._scan().knn(point, k)

    def export_items(self) -> tuple[np.ndarray, np.ndarray] | None:
        eids, boxes = self._dense  # type: ignore[misc]
        return eids.copy(), boxes.copy()

    def memory_bytes(self) -> int:
        eids, boxes = self._dense  # type: ignore[misc]
        tree = self._tree
        assert tree is not None
        return int(
            eids.nbytes + boxes.nbytes + sum(a.nbytes for a in tree.arrays().values())
        )


def items_from_arrays(eids: np.ndarray, boxes: np.ndarray) -> list[Item]:
    """Rebuild the ``(eid, AABB)`` list a join strategy consumes.

    Row order is preserved — the parent ships self-join payloads sorted by
    id, and prefix sharding depends on that order surviving the round trip.
    """
    return list(zip(eids.tolist(), array_to_boxes(boxes)))


def build_worker_index(
    kind: str, arrays: dict[str, np.ndarray], scalars: dict[str, float]
) -> SpatialIndex:
    """Rehydrate one payload into a query-serving index (worker side)."""
    if kind == "grid":
        return SnapshotGridIndex(arrays, scalars["cell"])
    if kind == "tree":
        return SnapshotTreeIndex(arrays)
    if kind == "spill":
        return SnapshotSpillTree(arrays)
    if kind == "packed":
        tree = RTree(max_entries=16)
        tree.bulk_load(items_from_arrays(arrays["eids"], arrays["boxes"]))
        return tree
    raise ValueError(f"unknown payload kind: {kind!r}")
