"""Worker-process entry points of the serving pool.

Everything here runs inside pool workers.  A worker receives a *task*: the
shared-memory metadata of a registered payload plus the probe slice to
execute.  The payload is attached and rehydrated **once per worker** and
cached under the parent-issued token — subsequent tasks against the same
token skip straight to the kernels, so steady-state traffic ships only
probe arrays in and result arrays out.

The parent issues a fresh token whenever an index mutates, so a token is an
immutable name for one exported snapshot; the small LRU here releases the
mappings of superseded tokens.

Spilled data takes the same shape with files instead of shm: the parent
ships picklable :class:`~repro.exec.spill.MappedRun` descriptors, and the
worker maps the spill file read-only **once per file** (cached by path, like
the token cache) and serves every segment as a zero-copy view.  Workers
never hold a writable descriptor to the spill file — the parent owns its
lifetime — so a worker crash leaks nothing and a pool retry just remaps.
"""

from __future__ import annotations

import mmap
import os
from collections import OrderedDict

import numpy as np

from repro.engine.batch import BatchQueryEngine, BatchStats
from repro.indexes.base import Item, SpatialIndex
from repro.instrumentation.counters import Counters
from repro.obs import capture_worker, global_registry
from repro.serving.shm import AttachedArrays
from repro.serving.snapshots import build_worker_index, items_from_arrays

#: Superseded payloads kept attached per worker before eviction.  Small: a
#: steady-state serving worker uses one or two live payloads; anything past
#: the cap is a stale snapshot whose mappings should be released.
_CACHE_CAP = 8

Meta = dict[str, tuple[str, str, tuple[int, ...]]]


class _CacheEntry:
    __slots__ = ("attached", "index", "items")

    def __init__(self, attached: AttachedArrays) -> None:
        self.attached = attached
        self.index: SpatialIndex | None = None
        self.items: list[Item] | None = None


_CACHE: OrderedDict[str, _CacheEntry] = OrderedDict()


def _entry_for(token: str, meta: Meta) -> _CacheEntry:
    entry = _CACHE.get(token)
    if entry is None:
        entry = _CacheEntry(AttachedArrays(meta))
        _CACHE[token] = entry
        while len(_CACHE) > _CACHE_CAP:
            _, evicted = _CACHE.popitem(last=False)
            evicted.attached.release()
    _CACHE.move_to_end(token)
    return entry


def _reset_cache() -> None:
    """Release every cached payload (tests only)."""
    while _CACHE:
        _, entry = _CACHE.popitem()
        entry.attached.release()
    _reset_maps()


# -- mapped spill files --------------------------------------------------------

#: Read-only mappings of parent spill files, one live mapping per path.
_MAPS: dict[str, tuple[mmap.mmap, int]] = {}
#: Superseded mappings that zero-copy views may still pin (a closed-on-GC
#: mapping mirrors MappedPageStore's retire-don't-close policy).
_RETIRED_MAPS: list[mmap.mmap] = []


def _reset_maps() -> None:
    """Drop every cached spill-file mapping (tests only)."""
    while _MAPS:
        _, (mapping, _) = _MAPS.popitem()
        try:
            mapping.close()
        except BufferError:  # a live view still exports the buffer
            _RETIRED_MAPS.append(mapping)


def _mapping_for(path: str, min_size: int) -> mmap.mmap:
    """The worker's read-only mapping of one spill file.

    Cached per path; when the file has grown past the cached mapping, a
    larger mapping replaces it and the old one is retired (views served
    earlier keep their buffer).  The parent flushed its writes before
    describing the runs, so the bytes are visible here through the kernel's
    page cache.
    """
    entry = _MAPS.get(path)
    if entry is not None and entry[1] >= min_size:
        return entry[0]
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size < min_size:
            raise ValueError(
                f"spill file {path!r} is {size} bytes; task needs {min_size}"
            )
        mapping = mmap.mmap(handle.fileno(), size, access=mmap.ACCESS_READ)
    if entry is not None:
        _RETIRED_MAPS.append(entry[0])
    _MAPS[path] = (mapping, size)
    return mapping


def _run_extent(run) -> int:
    """Last byte offset (exclusive) a :class:`MappedRun`'s pages reach."""
    page_size = run.page_size
    return max(
        page * page_size + min(page_size, run.nbytes - index * page_size)
        for index, page in enumerate(run.pages)
    )


def _attach_run(run, counters: Counters) -> np.ndarray:
    """One spilled array out of the mapped file (zero-copy when contiguous)."""
    from repro.exec.spill import mapped_run_rows

    mapping = _mapping_for(run.path, _run_extent(run))
    counters.spill_bytes_read += run.nbytes
    global_registry().counter("spill.bytes_read").inc(run.nbytes)
    return mapped_run_rows(mapping, run, 0, run.rows, counters)


def merge_run_task(layout, segments_a, segments_b, obs_ctx=None):
    """Merge one spilled PBSM tile run into result id pairs.

    The sharded executor's ``tile_runs`` protocol: ``segments_a`` /
    ``segments_b`` are lists of ``(eids, boxes, keys)``
    :class:`~repro.exec.spill.MappedRun` triples in the parent's gather
    order, so concatenation — and therefore the stable key sort and the
    kernel's pair order — is bit-identical to the inline merge loop.
    """
    from repro.exec.external_join import concat_segments, merge_run_arrays

    counters = Counters()
    with capture_worker("merge_run", obs_ctx, counters=counters) as cap:
        sides = []
        for segments in (segments_a, segments_b):
            parts = [
                tuple(_attach_run(run, counters) for run in seg) for seg in segments
            ]
            sides.append(concat_segments(parts, layout.dims))
        ids_a, ids_b = merge_run_arrays(layout, sides[0], sides[1], counters)
        cap.set_attr("pairs", int(ids_a.shape[0]))
    return ids_a, ids_b, counters, cap.telemetry


def str_slab_task(dims: int, max_entries: int, segments, obs_ctx=None):
    """Tile one STR slab of an external build into leaf groups.

    ``segments`` is ``[(eids_run, boxes_run, lo, hi), ...]`` in run order —
    the same gather order as the inline slab loop, so the recursive tiler
    sees an identical entry list.  Returns ``(groups, counters)`` where each
    group is an ``(boxes_array, eids_array)`` pair (arrays, not AABBs, to
    keep result pickling cheap).
    """
    from repro.geometry.aabb import AABB, boxes_to_array
    from repro.indexes.bulkload import _tile_recursive

    counters = Counters()
    with capture_worker("str_slab", obs_ctx, counters=counters) as cap:
        entries = []
        for eids_run, boxes_run, lo, hi in segments:
            boxes = _attach_slice(boxes_run, lo, hi, counters)
            eids = _attach_slice(eids_run, lo, hi, counters)
            entries.extend(
                (AABB(box[0], box[1]), int(eid)) for box, eid in zip(boxes, eids)
            )
        groups: list[list] = []
        _tile_recursive(entries, min(1, dims - 1), dims, max_entries, groups)
        packed = [
            (
                boxes_to_array([box for box, _ in group]),
                np.fromiter((eid for _, eid in group), dtype=np.int64, count=len(group)),
            )
            for group in groups
        ]
        cap.set_attr("entries", len(entries))
    return packed, counters, cap.telemetry


def _attach_slice(run, lo: int, hi: int, counters: Counters) -> np.ndarray:
    """Rows ``[lo, hi)`` of a mapped run (zero-copy when contiguous)."""
    from repro.exec.spill import mapped_run_rows

    mapping = _mapping_for(run.path, _run_extent(run))
    counters.spill_bytes_read += (hi - lo) * run.row_bytes
    global_registry().counter("spill.bytes_read").inc((hi - lo) * run.row_bytes)
    return mapped_run_rows(mapping, run, lo, hi, counters)


def query_shard_task(
    token: str,
    kind: str,
    meta: Meta,
    scalars: dict[str, float],
    batch_kind: str,
    chunk: np.ndarray,
    k: int | None,
    dedup: bool,
    accuracy: float | None = None,
    obs_ctx: tuple[str, str] | None = None,
) -> tuple[list, BatchStats, dict | None]:
    """Answer one probe chunk against a rehydrated index snapshot.

    ``accuracy`` is the parent planner's resolved routing decision: a float
    routes a kNN chunk through the snapshot's defeatist kernel (spill
    payloads); ``None`` — and any snapshot without an approximate kernel —
    serves exactly."""
    from repro.engine.session import QueryBatch, _run_on_engine

    with capture_worker("query_shard", obs_ctx, kind=batch_kind) as cap:
        entry = _entry_for(token, meta)
        if entry.index is None:
            entry.index = build_worker_index(kind, entry.attached.arrays, scalars)
        engine = BatchQueryEngine.kernel(entry.index, dedup=dedup)
        results = _run_on_engine(
            engine, QueryBatch(kind=batch_kind, payload=chunk, k=k, accuracy=accuracy)
        )
        cap.set_attr("queries", int(chunk.shape[0]))
    return results, engine.stats, cap.telemetry


def _items_for(token: str, meta: Meta) -> list[Item]:
    entry = _entry_for(token, meta)
    if entry.items is None:
        arrays = entry.attached.arrays
        entry.items = items_from_arrays(arrays["eids"], arrays["boxes"])
    return entry.items


def join_shard_task(
    strategy,
    mode: str,
    token_a: str,
    meta_a: Meta,
    token_b: str,
    meta_b: Meta,
    bounds: tuple[int, int],
    epsilon: float,
    obs_ctx: tuple[str, str] | None = None,
):
    """Join the build side against one probe chunk.

    Shard semantics are identical to the fork path
    (:func:`repro.joins.session._run_join_shard`): binary modes join the
    full build side against the chunk; self modes exploit the id-sorted
    payload order — the chunk joins only the prefix ending at the chunk,
    and the shard holding a pair's larger id reports it, so every pair
    lands in exactly one shard with no cross-shard dedup pass.
    """
    counters = Counters()
    with capture_worker("join_shard", obs_ctx, mode=mode, counters=counters) as cap:
        items_a = _items_for(token_a, meta_a)
        probes = items_a if token_b == token_a else _items_for(token_b, meta_b)
        chunk = probes[bounds[0] : bounds[1]]
        if mode == "pair":
            pairs = strategy.join(items_a, chunk, counters)
        elif mode == "self":
            pairs = [(a, b) for a, b in strategy.join(items_a[: bounds[1]], chunk, counters) if a < b]
        elif mode == "distance_pair":
            pairs = strategy.distance_candidates(items_a, chunk, epsilon, counters)
        elif mode == "distance_self":
            pairs = [
                (a, b)
                for a, b in strategy.distance_candidates(
                    items_a[: bounds[1]], chunk, epsilon, counters
                )
                if a < b
            ]
        else:  # pragma: no cover - the pool only emits the four modes
            raise ValueError(f"unknown join shard mode: {mode!r}")
        cap.set_attr("pairs", len(pairs))
    return pairs, counters, cap.telemetry
