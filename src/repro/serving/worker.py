"""Worker-process entry points of the serving pool.

Everything here runs inside pool workers.  A worker receives a *task*: the
shared-memory metadata of a registered payload plus the probe slice to
execute.  The payload is attached and rehydrated **once per worker** and
cached under the parent-issued token — subsequent tasks against the same
token skip straight to the kernels, so steady-state traffic ships only
probe arrays in and result arrays out.

The parent issues a fresh token whenever an index mutates, so a token is an
immutable name for one exported snapshot; the small LRU here releases the
mappings of superseded tokens.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.engine.batch import BatchQueryEngine, BatchStats
from repro.indexes.base import Item, SpatialIndex
from repro.instrumentation.counters import Counters
from repro.serving.shm import AttachedArrays
from repro.serving.snapshots import build_worker_index, items_from_arrays

#: Superseded payloads kept attached per worker before eviction.  Small: a
#: steady-state serving worker uses one or two live payloads; anything past
#: the cap is a stale snapshot whose mappings should be released.
_CACHE_CAP = 8

Meta = dict[str, tuple[str, str, tuple[int, ...]]]


class _CacheEntry:
    __slots__ = ("attached", "index", "items")

    def __init__(self, attached: AttachedArrays) -> None:
        self.attached = attached
        self.index: SpatialIndex | None = None
        self.items: list[Item] | None = None


_CACHE: OrderedDict[str, _CacheEntry] = OrderedDict()


def _entry_for(token: str, meta: Meta) -> _CacheEntry:
    entry = _CACHE.get(token)
    if entry is None:
        entry = _CacheEntry(AttachedArrays(meta))
        _CACHE[token] = entry
        while len(_CACHE) > _CACHE_CAP:
            _, evicted = _CACHE.popitem(last=False)
            evicted.attached.release()
    _CACHE.move_to_end(token)
    return entry


def _reset_cache() -> None:
    """Release every cached payload (tests only)."""
    while _CACHE:
        _, entry = _CACHE.popitem()
        entry.attached.release()


def query_shard_task(
    token: str,
    kind: str,
    meta: Meta,
    scalars: dict[str, float],
    batch_kind: str,
    chunk: np.ndarray,
    k: int | None,
    dedup: bool,
    accuracy: float | None = None,
) -> tuple[list, BatchStats]:
    """Answer one probe chunk against a rehydrated index snapshot.

    ``accuracy`` is the parent planner's resolved routing decision: a float
    routes a kNN chunk through the snapshot's defeatist kernel (spill
    payloads); ``None`` — and any snapshot without an approximate kernel —
    serves exactly."""
    from repro.engine.session import QueryBatch, _run_on_engine

    entry = _entry_for(token, meta)
    if entry.index is None:
        entry.index = build_worker_index(kind, entry.attached.arrays, scalars)
    engine = BatchQueryEngine.kernel(entry.index, dedup=dedup)
    results = _run_on_engine(
        engine, QueryBatch(kind=batch_kind, payload=chunk, k=k, accuracy=accuracy)
    )
    return results, engine.stats


def _items_for(token: str, meta: Meta) -> list[Item]:
    entry = _entry_for(token, meta)
    if entry.items is None:
        arrays = entry.attached.arrays
        entry.items = items_from_arrays(arrays["eids"], arrays["boxes"])
    return entry.items


def join_shard_task(
    strategy,
    mode: str,
    token_a: str,
    meta_a: Meta,
    token_b: str,
    meta_b: Meta,
    bounds: tuple[int, int],
    epsilon: float,
):
    """Join the build side against one probe chunk.

    Shard semantics are identical to the fork path
    (:func:`repro.joins.session._run_join_shard`): binary modes join the
    full build side against the chunk; self modes exploit the id-sorted
    payload order — the chunk joins only the prefix ending at the chunk,
    and the shard holding a pair's larger id reports it, so every pair
    lands in exactly one shard with no cross-shard dedup pass.
    """
    items_a = _items_for(token_a, meta_a)
    probes = items_a if token_b == token_a else _items_for(token_b, meta_b)
    chunk = probes[bounds[0] : bounds[1]]
    counters = Counters()
    if mode == "pair":
        pairs = strategy.join(items_a, chunk, counters)
    elif mode == "self":
        pairs = [(a, b) for a, b in strategy.join(items_a[: bounds[1]], chunk, counters) if a < b]
    elif mode == "distance_pair":
        pairs = strategy.distance_candidates(items_a, chunk, epsilon, counters)
    elif mode == "distance_self":
        pairs = [
            (a, b)
            for a, b in strategy.distance_candidates(
                items_a[: bounds[1]], chunk, epsilon, counters
            )
            if a < b
        ]
    else:  # pragma: no cover - the pool only emits the four modes
        raise ValueError(f"unknown join shard mode: {mode!r}")
    return pairs, counters
