"""Push-based serving: async subscriptions yielding per-tick deltas.

The serving tier built in PR 6 is pull-based — a client awaits one answer
per request.  Continuous queries invert that: a client subscribes once and
the *server* pushes each tick's exact delta.  :class:`ContinuousServing`
wraps a :class:`~repro.continuous.ContinuousSession` for the event loop:

* ``subscribe(spec)`` returns a :class:`DeltaStream`, an async iterator a
  client task consumes with ``async for delta in stream``;
* ``await serving.tick(updates)`` runs the session's maintenance in a
  worker thread (``asyncio.to_thread`` — the loop keeps serving while
  kernels run) and fans each subscription's delta out to its streams.

Backpressure is explicit: each stream buffers at most ``max_queue`` deltas;
a slower consumer loses nothing because deltas are *merged*, not dropped —
a merged delta of ticks t..t+j is exactly the accumulated change, the same
contract the oracle suite proves per tick (``dropped`` counts merges for
telemetry).  Closing a stream (or the serving wrapper) detaches it from the
session cleanly.
"""

from __future__ import annotations

import asyncio
from typing import Iterable

from repro.continuous.session import ContinuousSession, Subscription
from repro.continuous.spec import ContinuousSpec, Delta, Update

_CLOSED = object()


class DeltaStream:
    """One client's async view of a subscription's delta stream.

    Async-iterate to receive every tick's delta (empty deltas included —
    they carry the tick heartbeat).  When the producer outruns the
    consumer past ``max_queue`` buffered deltas, the newest delta is merged
    into the queue tail, so the stream stays exact while bounded.
    """

    def __init__(self, serving: "ContinuousServing", sub: Subscription, max_queue: int) -> None:
        self._serving = serving
        self.subscription = sub
        self._queue: asyncio.Queue = asyncio.Queue()
        self._max_queue = max_queue
        self._closed = False
        self.delivered = 0
        self.merged = 0

    @property
    def spec(self) -> ContinuousSpec:
        return self.subscription.spec

    @property
    def current(self):
        """The subscription's current exact result (set / kNN list / pairs)."""
        return self.subscription.result

    # -- producer side (called on the event loop via call_soon_threadsafe) -----

    def _push(self, delta: Delta) -> None:
        if self._closed:
            return
        if self._queue.qsize() >= self._max_queue:
            tail: Delta = self._queue._queue[-1]  # type: ignore[attr-defined]
            # Delta composition: an element re-added after a removal (or
            # removed after an addition) nets out of the merged delta.
            merged_added = (set(tail.added) - set(delta.removed)) | (
                set(delta.added) - set(tail.removed)
            )
            merged_removed = (set(tail.removed) - set(delta.added)) | (
                set(delta.removed) - set(tail.added)
            )
            self._queue._queue[-1] = Delta(  # type: ignore[attr-defined]
                tick=delta.tick,
                added=frozenset(merged_added),
                removed=frozenset(merged_removed),
            )
            self.merged += 1
            return
        self._queue.put_nowait(delta)

    # -- consumer side ----------------------------------------------------------

    def __aiter__(self) -> "DeltaStream":
        return self

    async def __anext__(self) -> Delta:
        if self._closed and self._queue.empty():
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is _CLOSED:
            raise StopAsyncIteration
        self.delivered += 1
        return item

    async def get(self) -> Delta:
        """Await the next delta (one-shot form of the iterator)."""
        return await self.__anext__()

    def close(self) -> None:
        """Stop receiving; pending deltas still drain, then iteration ends."""
        if self._closed:
            return
        self._closed = True
        self._serving._detach(self)
        self._queue.put_nowait(_CLOSED)


class ContinuousServing:
    """Async front end over one :class:`~repro.continuous.ContinuousSession`.

    The session stays the single-writer: only :meth:`tick` mutates it, and
    ticks are serialized by an internal lock, so N subscriber tasks and one
    ticking producer coexist without touching session internals
    concurrently::

        serving = ContinuousServing(session)
        stream = serving.subscribe(ContinuousRangeQuery(box))
        ...
        await serving.tick(moves)       # pushes a delta to every stream
        delta = await stream.get()
    """

    def __init__(self, session: ContinuousSession, *, max_queue: int = 256) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.session = session
        self.max_queue = max_queue
        self._streams: dict[int, list[DeltaStream]] = {}
        self._tick_lock = asyncio.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False

    # -- subscription management ------------------------------------------------

    def subscribe(self, spec: ContinuousSpec, policy: str | None = None) -> DeltaStream:
        """Register a standing query and return its push stream.  Multiple
        streams over the same live subscription share one maintenance."""
        if self._closed:
            raise RuntimeError("ContinuousServing is closed")
        sub = self.session.subscribe(spec, policy=policy)
        return self._attach(sub)

    def stream(self, sub: Subscription) -> DeltaStream:
        """A push stream over an already-subscribed query."""
        if self._closed:
            raise RuntimeError("ContinuousServing is closed")
        return self._attach(sub)

    def _attach(self, sub: Subscription) -> DeltaStream:
        stream = DeltaStream(self, sub, self.max_queue)
        first = sub.cqid not in self._streams
        self._streams.setdefault(sub.cqid, []).append(stream)
        if first:
            sub.listeners.append(self._fanout)
        return stream

    def _detach(self, stream: DeltaStream) -> None:
        cqid = stream.subscription.cqid
        streams = self._streams.get(cqid, [])
        if stream in streams:
            streams.remove(stream)
        if not streams and cqid in self._streams:
            del self._streams[cqid]
            listeners = stream.subscription.listeners
            if self._fanout in listeners:
                listeners.remove(self._fanout)

    def _fanout(self, sub: Subscription, delta: Delta) -> None:
        # Runs inside the tick — in the worker thread when ticked through
        # this wrapper (the thread-safe hop keeps queue state loop-owned),
        # or synchronously when the session is ticked directly.
        loop = self._loop
        for stream in list(self._streams.get(sub.cqid, ())):
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(stream._push, delta)
            else:
                stream._push(delta)

    # -- the producer surface ----------------------------------------------------

    async def tick(self, updates: Iterable[Update] = ()) -> dict[int, Delta]:
        """Run one maintenance tick off-loop and push every delta."""
        if self._closed:
            raise RuntimeError("ContinuousServing is closed")
        self._loop = asyncio.get_running_loop()
        async with self._tick_lock:
            updates = list(updates)
            deltas = await asyncio.to_thread(self.session.tick, updates)
        # Let the fan-out callbacks scheduled by the tick run before the
        # producer observes completion, so `await tick()` happens-after
        # every stream received its delta.
        await asyncio.sleep(0)
        return deltas

    # -- lifecycle ---------------------------------------------------------------

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        for streams in list(self._streams.values()):
            for stream in list(streams):
                stream.close()

    async def __aenter__(self) -> "ContinuousServing":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
