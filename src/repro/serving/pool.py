"""The long-lived worker pool behind the sharded executors.

Before this module, ``ShardedExecutor``/``ShardedJoinExecutor`` forked a
fresh ``multiprocessing.Pool`` on *every flush*: each flush paid pool
start-up plus a full copy-on-write (or re-pickle) of the index.  A
:class:`WorkerPool` amortizes both: its ``ProcessPoolExecutor`` workers
persist across flushes, and the index crosses the process boundary **once**
per (index, pool) as a shared-memory snapshot
(:mod:`repro.serving.snapshots`).  Steady-state flushes ship probe arrays
out and result arrays back — nothing else.

Registration is keyed by object identity with a mutation fingerprint: when
an index mutates, the next flush re-exports a fresh snapshot (and retires
the old segments); when it doesn't, the export count stays put — the
zero-re-pickle property the serving tests pin.

The pool is crash-tolerant: a task batch that dies with the worker
(``BrokenProcessPool``) recreates the executor and retries once; the shared
segments survive because the *parent* owns them.  :meth:`close` (or ``with``
exit, or the ``atexit`` hook of the :func:`default_pool` singleton) unlinks
every segment.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

import numpy as np

from repro.engine.batch import BatchStats
from repro.indexes.base import Item, SpatialIndex
from repro.instrumentation.counters import Counters
from repro.obs import ingest_telemetry, propagation_context
from repro.serving import worker as _worker
from repro.serving.shm import SegmentGroup
from repro.serving.snapshots import (
    export_index_payload,
    export_items_payload,
    index_fingerprint,
)

_TOKENS = itertools.count()


class _Export:
    """Parent-side record of one published payload."""

    __slots__ = ("source", "token", "kind", "scalars", "group", "fingerprint", "size")

    def __init__(self, source, token, kind, scalars, group, fingerprint, size) -> None:
        self.source = source  # strong ref: keeps id() keys valid
        self.token = token
        self.kind = kind
        self.scalars = scalars
        self.group = group
        self.fingerprint = fingerprint
        self.size = size


def _items_fingerprint(items: Sequence[Item]) -> tuple:
    if not items:
        return (0,)
    return (len(items), items[0][0], items[-1][0])


class WorkerPool:
    """A persistent process pool serving shared-memory index snapshots.

    Parameters
    ----------
    workers:
        Worker count (default: CPU count, capped at 8).
    context:
        ``multiprocessing`` start-method name; default ``"fork"`` where
        :func:`~repro.engine.session._fork_is_safe` allows it, else
        ``"spawn"``.  Unlike the legacy per-flush fork path, spawn is
        serviceable here: workers start once and never pickle an index.

    Thread-safe: concurrent sessions may register and run through one pool.
    """

    def __init__(self, workers: int | None = None, context: str | None = None) -> None:
        from repro.engine.session import _fork_is_safe

        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cpus = multiprocessing.cpu_count()
        self.workers = workers if workers is not None else min(cpus, 8)
        if context is None:
            context = "fork" if _fork_is_safe() else "spawn"
        self._context = context
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.RLock()
        self._index_exports: dict[int, _Export] = {}
        self._item_exports: dict[tuple[int, bool], _Export] = {}
        #: Lifetime count of index snapshot exports — the telemetry the
        #: export-exactly-once tests assert on.
        self.exports = 0
        self.shards_run = 0
        self.closed = False

    # -- lifecycle ------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is None:
            ctx = multiprocessing.get_context(self._context)
            self._executor = ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)
        return self._executor

    def _recreate_executor(self) -> ProcessPoolExecutor:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        return self._ensure_executor()

    def close(self) -> None:
        """Shut the workers down and unlink every shared segment.

        Idempotent, and unconditional about reclamation: segments are
        unlinked even when workers already crashed.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            for exports in (self._index_exports, self._item_exports):
                for entry in exports.values():
                    entry.group.close()
                exports.clear()
            self.closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def segment_bytes(self) -> int:
        """Total bytes currently published through shared memory."""
        with self._lock:
            return sum(
                entry.group.nbytes
                for exports in (self._index_exports, self._item_exports)
                for entry in exports.values()
            )

    # -- registration ----------------------------------------------------------

    def ensure_index(self, index: SpatialIndex) -> _Export | None:
        """The live export of ``index``, (re)publishing if absent or stale.

        Returns ``None`` when the index has no shared-memory representation
        (callers fall back to single-process execution).
        """
        with self._lock:
            if self.closed:
                raise RuntimeError("WorkerPool is closed")
            key = id(index)
            entry = self._index_exports.get(key)
            if (
                entry is not None
                and entry.source is index
                and entry.fingerprint == index_fingerprint(index)
            ):
                return entry
            payload = export_index_payload(index)
            if payload is None:
                if entry is not None:
                    entry.group.close()
                    del self._index_exports[key]
                return None
            kind, arrays, scalars = payload
            group = SegmentGroup(arrays)
            if entry is not None:
                entry.group.close()
            entry = _Export(
                source=index,
                token=f"idx-{key}-{next(_TOKENS)}",
                kind=kind,
                scalars=scalars,
                group=group,
                # Stamped *after* export: exporting may itself (re)build the
                # index's snapshot, which is part of the fingerprint.
                fingerprint=index_fingerprint(index),
                size=len(index),
            )
            self._index_exports[key] = entry
            self.exports += 1
            return entry

    def ensure_items(self, items: Sequence[Item], *, sort_by_id: bool = False) -> _Export:
        """The live export of a join-side item sequence.

        ``sort_by_id=True`` publishes the id-sorted permutation (cached
        separately) — the order prefix-sharded self joins require.
        """
        with self._lock:
            if self.closed:
                raise RuntimeError("WorkerPool is closed")
            key = (id(items), sort_by_id)
            fingerprint = _items_fingerprint(items)
            entry = self._item_exports.get(key)
            if entry is not None and entry.source is items and entry.fingerprint == fingerprint:
                return entry
            seq = sorted(items, key=lambda item: item[0]) if sort_by_id else items
            group = SegmentGroup(export_items_payload(list(seq)))
            if entry is not None:
                entry.group.close()
            entry = _Export(
                source=items,
                token=f"items-{key[0]}-{next(_TOKENS)}",
                kind="items",
                scalars={},
                group=group,
                fingerprint=fingerprint,
                size=len(items),
            )
            self._item_exports[key] = entry
            return entry

    # -- execution -------------------------------------------------------------

    def _map(self, fn, tasks: list[tuple]) -> list[Any]:
        """Run ``fn(*task)`` for every task, retrying once on a dead pool.

        Exactly-once per completed task: results that landed before the
        pool broke are kept, and only the tasks that died are resubmitted
        to the recreated executor.  (The old retry-everything path re-ran
        completed shards, double-counting their merged stats.)  A second
        ``BrokenProcessPool`` propagates.
        """
        with self._lock:
            executor = self._ensure_executor()
        results: list[Any] = [None] * len(tasks)
        done = [False] * len(tasks)
        futures: list = []
        try:
            for task in tasks:
                futures.append(executor.submit(fn, *task))
        except BrokenProcessPool:
            pass  # unsubmitted tasks join the retry set below
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
                done[index] = True
            except BrokenProcessPool:
                pass
        failed = [index for index, ok in enumerate(done) if not ok]
        if not failed:
            return results
        with self._lock:
            executor = self._recreate_executor()
        futures = {index: executor.submit(fn, *tasks[index]) for index in failed}
        for index, future in futures.items():
            results[index] = future.result()
        return results

    def _map_telemetry(self, fn, tasks: list[tuple]) -> list[tuple]:
        """:meth:`_map` for obs-aware worker tasks: appends the propagated
        trace context to every task, strips the trailing telemetry element
        from every part and folds it into this process's tracer/registry
        (exactly once — retried tasks report only their surviving run)."""
        ctx = propagation_context()
        parts = self._map(fn, [(*task, ctx) for task in tasks])
        stripped = []
        for part in parts:
            ingest_telemetry(part[-1])
            stripped.append(part[:-1])
        return stripped

    def run_query_shards(
        self,
        entry: _Export,
        batch_kind: str,
        payload: np.ndarray,
        k: int | None,
        dedup: bool,
        shards: int,
        accuracy: float | None = None,
    ) -> tuple[list, BatchStats]:
        """Partition ``payload`` row-wise across the workers and merge.

        ``accuracy`` rides along for kNN batches the session planner
        resolved to approximate routing: each worker then answers its shard
        through the snapshot's defeatist kernel."""
        bounds = np.linspace(0, payload.shape[0], shards + 1).astype(int)
        tasks = [
            (
                entry.token,
                entry.kind,
                entry.group.meta,
                entry.scalars,
                batch_kind,
                payload[a:b],
                k,
                dedup,
                accuracy,
            )
            for a, b in zip(bounds[:-1], bounds[1:])
            if b > a
        ]
        parts = self._map_telemetry(_worker.query_shard_task, tasks)
        results: list = []
        stats = BatchStats()
        for shard_results, shard_stats in parts:
            results.extend(shard_results)
            stats.merge(shard_stats)
        stats.batches = 1  # the shards answered one logical batch
        self.shards_run += len(tasks)
        return results, stats

    def run_join_shards(
        self,
        strategy,
        mode: str,
        build: _Export,
        probes: _Export,
        epsilon: float,
        shards: int,
    ) -> list[tuple[Any, Counters]]:
        """Partition the probe side across the workers; returns raw parts."""
        edges = np.linspace(0, probes.size, shards + 1).astype(int)
        tasks = [
            (
                strategy,
                mode,
                build.token,
                build.group.meta,
                probes.token,
                probes.group.meta,
                (int(a), int(b)),
                epsilon,
            )
            for a, b in zip(edges[:-1], edges[1:])
            if b > a
        ]
        parts = self._map_telemetry(_worker.join_shard_task, tasks)
        self.shards_run += len(tasks)
        return parts

    def run_tile_runs(self, tasks: list[tuple]) -> list[tuple]:
        """Merge spilled PBSM tile runs in the workers.

        Each task is ``(layout, segments_a, segments_b)`` with the segments
        as :class:`~repro.exec.spill.MappedRun` descriptor triples (see
        :meth:`repro.exec.external_join.SpillPlan.run_tasks`); workers map
        the spill file read-only and return ``(ids_a, ids_b, counters)``.
        The caller must keep the described handles live until this returns —
        a crash retry remaps the same descriptors.
        """
        parts = self._map_telemetry(_worker.merge_run_task, tasks)
        self.shards_run += len(tasks)
        return parts

    def run_slab_tasks(self, tasks: list[tuple]) -> list[tuple]:
        """Tile external-build STR slabs in the workers.

        Each task is ``(dims, max_entries, [(eids_run, boxes_run, lo, hi),
        ...])``; workers gather their slab rows from the mapped spill file
        and return ``(groups, counters)`` with each group packed as
        ``(boxes_array, eids_array)``.
        """
        parts = self._map_telemetry(_worker.str_slab_task, tasks)
        self.shards_run += len(tasks)
        return parts


# -- the shared default pool ---------------------------------------------------

_DEFAULT: WorkerPool | None = None
_DEFAULT_LOCK = threading.Lock()


def default_pool() -> WorkerPool:
    """The process-wide shared pool (created on first use).

    Sessions that don't pass an explicit pool land here, so every index in
    the process shares one set of workers — the serving-tier analogue of a
    database's one background worker fleet.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None or _DEFAULT.closed:
            _DEFAULT = WorkerPool()
        return _DEFAULT


def shutdown_default_pool() -> None:
    """Close the shared pool (idempotent; also runs at interpreter exit)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.close()
            _DEFAULT = None


atexit.register(shutdown_default_pool)
