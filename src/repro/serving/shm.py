"""Shared-memory array segments: the zero-copy payload channel of the pool.

A :class:`SegmentGroup` owns one ``multiprocessing.shared_memory`` segment
per exported array.  The parent writes each array into its segment once; a
worker :func:`attach`-es by name and gets back NumPy views over the same
physical pages — nothing is pickled, nothing is copied, and repeated
flushes reuse the mapping.  The parent side is the single owner: only it
unlinks, and :meth:`SegmentGroup.close` is idempotent so pool teardown (and
error paths) can always reclaim ``/dev/shm``.

Segment names carry a recognizable prefix (``repro-srv-<pid>-``) so tests
and operators can audit for leaks by listing ``/dev/shm``.
"""

from __future__ import annotations

import itertools
import os
import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Prefix of every segment this process creates (pid-scoped so concurrent
#: processes never collide and leak audits can attribute segments).
SEGMENT_PREFIX = f"repro-srv-{os.getpid()}"

_SEGMENT_IDS = itertools.count()


def _segment_name(field: str) -> str:
    # A random component guards against pid reuse across host processes
    # racing on /dev/shm; the counter keeps names unique within a process.
    return f"{SEGMENT_PREFIX}-{next(_SEGMENT_IDS)}-{secrets.token_hex(4)}-{field}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without the resource tracker adopting it.

    Only the creating process owns (and unlinks) a segment.  Before Python
    3.13 (``track=False``), attaching also registers the segment with the
    resource tracker, which breaks single-owner semantics both ways: a
    spawn worker's own tracker unlinks the parent's live segments at worker
    exit, and a fork worker *shares* the parent's tracker, so
    unregister-after-attach would erase the parent's registration instead.
    Suppressing registration for the duration of the attach is the only
    variant that is correct under both start methods.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SegmentGroup:
    """Parent-side owner of one payload's shared-memory segments.

    ``meta`` is the picklable description a worker needs to attach: for
    every array, ``(segment name, dtype string, shape)``.  It is small —
    sending it with each task costs nothing next to the probe arrays.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self.segments: dict[str, shared_memory.SharedMemory] = {}
        self.meta: dict[str, tuple[str, str, tuple[int, ...]]] = {}
        self.nbytes = 0
        try:
            for field, array in arrays.items():
                data = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    name=_segment_name(field), create=True, size=max(int(data.nbytes), 1)
                )
                if data.nbytes:
                    view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
                    view[...] = data
                self.segments[field] = segment
                self.meta[field] = (segment.name, data.dtype.str, tuple(data.shape))
                self.nbytes += int(data.nbytes)
        except Exception:
            self.close()
            raise
        self.closed = False

    def close(self) -> None:
        """Unlink every segment.  Idempotent; safe mid-``__init__``."""
        for segment in self.segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
        self.segments = {}
        self.closed = True

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


class AttachedArrays:
    """Worker-side view of a :class:`SegmentGroup`: arrays + their mappings.

    The ``SharedMemory`` objects must outlive every array view built over
    their buffers, so the cache entry keeps both together; :meth:`release`
    closes the mappings (never unlinks — the parent owns the segments).
    """

    def __init__(self, meta: dict[str, tuple[str, str, tuple[int, ...]]]) -> None:
        self.arrays: dict[str, np.ndarray] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        for field, (name, dtype, shape) in meta.items():
            segment = _attach_untracked(name)
            self._segments.append(segment)
            self.arrays[field] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)

    def release(self) -> None:
        self.arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view still alive
                pass
        self._segments = []


def live_segment_names(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of this process's live segments (Linux: a /dev/shm listing).

    The leak-audit primitive the lifecycle tests assert on; returns ``[]``
    where /dev/shm does not exist (non-Linux).
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(entry for entry in os.listdir(root) if entry.startswith(prefix))
