"""Short-lived throwaway indexes (Dittrich, Blunschi, Vaz Salles, SSTD'09).

The MOVIES idea: never update — rebuild a cheap, read-only index every step
(or every few thousand updates), answer queries from the latest finished
build, throw it away.  It concedes the paper's Section 4 point up front:
when everything moves, building fast beats updating.

Our throwaway structure is a flat uniform grid snapshot (bulk-building a grid
is one pass), matching the spirit of the original's simple throwaway
structures.  :meth:`refresh` is the per-step rebuild; updates merely record
into the live dictionary the next refresh will snapshot.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.uniform_grid import UniformGrid
from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters


class ThrowawayIndex(SpatialIndex):
    """Per-step snapshot grid over a live element dictionary.

    Parameters
    ----------
    universe:
        Simulation universe handed to each snapshot grid.
    cell_size:
        Snapshot grid resolution (analytical-model optimum recommended).
    auto_refresh:
        When True (default), queries transparently rebuild if any update
        arrived since the last snapshot — the "query the latest finished
        index" contract.  When False the caller controls :meth:`refresh`
        and queries may observe the stale snapshot (the original's
        frame-of-reference semantics); correctness-critical users keep the
        default.
    """

    def __init__(
        self,
        universe: AABB | None = None,
        cell_size: float | None = None,
        auto_refresh: bool = True,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        self.universe = universe
        self.cell_size = cell_size
        self.auto_refresh = auto_refresh
        self._current: dict[int, AABB] = {}
        self._snapshot: UniformGrid | None = None
        self._dirty = True
        self.rebuilds = 0

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        self._current = dict(validate_items(items))
        self._dirty = True
        self.refresh()

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._current:
            raise ValueError(f"element {eid} already present")
        self._current[eid] = box
        self._dirty = True
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._current or self._current[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        del self._current[eid]
        self._dirty = True
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """O(1): only the live dictionary changes; no structure is touched."""
        if eid not in self._current or self._current[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        self._current[eid] = new_box
        self._dirty = True
        self.counters.updates += 1

    def refresh(self) -> None:
        """Build a fresh snapshot grid over the live dictionary."""
        grid = UniformGrid(
            universe=self.universe, cell_size=self.cell_size, counters=self.counters
        )
        grid.bulk_load(list(self._current.items()))
        self._snapshot = grid
        self._dirty = False
        self.rebuilds += 1

    # -- queries -------------------------------------------------------------------

    def _live_snapshot(self) -> UniformGrid:
        if self._snapshot is None or (self._dirty and self.auto_refresh):
            self.refresh()
        assert self._snapshot is not None
        return self._snapshot

    def range_query(self, box: AABB) -> list[int]:
        return self._live_snapshot().range_query(box)

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        return self._live_snapshot().knn(point, k)

    def __len__(self) -> int:
        return len(self._current)

    @property
    def is_stale(self) -> bool:
        return self._dirty

    def memory_bytes(self) -> int:
        if self._snapshot is None:
            return 0
        return self._snapshot.memory_bytes()
