"""Update-buffering R-tree (Biveinis et al., VLDB'07 style).

Updates are memoed in a side buffer instead of touching the tree; the tree is
patched wholesale when the buffer fills (one batched rebuild absorbs many
single-element operations).  The paper's verdict, which the counters expose:
"when computing the query result, buffer and index need to be checked,
thereby increasing the overhead" — every query pays an extra pass over the
buffer, and stale tree hits must be masked.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.rtree import RTree
from repro.instrumentation.counters import Counters


class BufferedRTree(SpatialIndex):
    """R-tree with a bounded update memo and batch flushing.

    Parameters
    ----------
    buffer_capacity:
        Pending operations tolerated before a flush rebuild.  The classic
        trade-off: bigger buffers amortize better but make queries slower.
    """

    def __init__(
        self,
        buffer_capacity: int = 1024,
        max_entries: int = 16,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1, got {buffer_capacity}")
        self.buffer_capacity = buffer_capacity
        self._tree = RTree(max_entries=max_entries, counters=self.counters)
        # Ground truth: id -> current box.
        self._current: dict[int, AABB] = {}
        # Pending ops not yet reflected in the tree: id -> box-or-None (None =
        # deleted); the tree may hold a stale box for these ids.
        self._pending: dict[int, AABB | None] = {}
        self._in_tree: dict[int, AABB] = {}
        self.flushes = 0

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._current = dict(materialized)
        self._in_tree = dict(materialized)
        self._pending = {}
        self._tree.bulk_load(materialized)
        self.flushes = 0

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._current:
            raise ValueError(f"element {eid} already present")
        self._current[eid] = box
        self._pending[eid] = box
        self.counters.inserts += 1
        self._maybe_flush()

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._current or self._current[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        del self._current[eid]
        if eid in self._in_tree:
            self._pending[eid] = None
        else:
            self._pending.pop(eid, None)
        self.counters.deletes += 1
        self._maybe_flush()

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        if eid not in self._current or self._current[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        self._current[eid] = new_box
        self._pending[eid] = new_box
        self.counters.updates += 1
        self._maybe_flush()

    def flush(self) -> None:
        """Apply every pending operation in one batch rebuild."""
        if not self._pending:
            return
        self._tree.bulk_load(list(self._current.items()))
        self._in_tree = dict(self._current)
        self._pending = {}
        self.flushes += 1

    def _maybe_flush(self) -> None:
        if len(self._pending) >= self.buffer_capacity:
            self.flush()

    # -- queries ------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        """Tree pass (masking stale ids) plus a full buffer pass."""
        counters = self.counters
        results = []
        for eid in self._tree.range_query(box):
            if eid in self._pending:
                continue  # stale or deleted; the buffer pass decides
            results.append(eid)
        for eid, pending_box in self._pending.items():
            counters.elem_tests += 1
            if pending_box is not None and pending_box.intersects(box):
                results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Merge tree kNN (over-fetched to survive masking) with the buffer."""
        if k <= 0 or not self._current:
            return []
        counters = self.counters
        fetch = k + len(self._pending)
        tree_results = self._tree.knn(point, min(fetch, len(self._in_tree)))
        merged: list[tuple[float, int]] = []
        for dist, eid in tree_results:
            if eid in self._pending:
                continue
            merged.append((dist, eid))
        for eid, pending_box in self._pending.items():
            counters.elem_tests += 1
            if pending_box is not None:
                merged.append((pending_box.min_distance_to_point(point), eid))
        return heapq.nsmallest(k, merged)

    def __len__(self) -> int:
        return len(self._current)

    @property
    def pending_operations(self) -> int:
        return len(self._pending)

    def memory_bytes(self) -> int:
        return self._tree.memory_bytes()
