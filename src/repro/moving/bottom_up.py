"""Bottom-up R-tree updates (§4.2: "with a bottom up approach").

Classic top-down updating re-descends the whole tree per element
(delete + insert).  The bottom-up family (Lee et al.) instead keeps a direct
element → leaf map and tries to patch the leaf in place:

* **in-place** — the element is verifiably still in the mapped leaf and the
  new box lies inside the leaf's *current* MBR: swap the entry, touch
  nothing else.  The condition is self-maintaining: in-place patches never
  grow the leaf's content union, so every ancestor entry (which contained
  that union when it was last written) stays valid;
* **escape** — the move leaves the leaf MBR, or the map entry went stale
  (splits/condenses relocate entries): fall back to a classic
  delete + insert.

Staleness is handled by *verification, not invalidation*: the fast path
checks that ``(old_box, eid)`` is actually present in the cached leaf, so a
stale pointer can only cause a slow-path detour, never a lost element
(detached leaves are emptied by the R-tree on condensation).  When escapes
accumulate past ``refresh_threshold`` the map is rebuilt wholesale, restoring
the fast path — the same amortization real bottom-up trees get from parent
pointers.

Under simulation motion almost every move is tiny, so the in-place path
dominates — :attr:`BottomUpRTree.in_place_updates` vs
:attr:`BottomUpRTree.structural_updates` quantifies the paper's §4.2
discussion on any workload.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.rtree import Node, RTree
from repro.instrumentation.counters import Counters


class BottomUpRTree(SpatialIndex):
    """R-tree wrapper with a verified leaf map enabling in-place updates."""

    def __init__(
        self,
        max_entries: int = 16,
        refresh_fraction: float = 0.1,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if not 0.0 < refresh_fraction <= 1.0:
            raise ValueError(f"refresh_fraction must be in (0,1], got {refresh_fraction}")
        self._tree = RTree(max_entries=max_entries, counters=self.counters)
        self.refresh_fraction = refresh_fraction
        # eid -> owning leaf node (verified before every use)
        self._leaf_of: dict[int, Node] = {}
        self._boxes: dict[int, AABB] = {}
        self._escapes_since_refresh = 0
        self.in_place_updates = 0
        self.structural_updates = 0

    # -- leaf map ------------------------------------------------------------------

    def refresh_map(self) -> None:
        """Rebuild the element → leaf map from the live tree."""
        self._leaf_of = {}
        stack = [self._tree._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for _box, ref in node.entries:
                    self._leaf_of[ref] = node  # type: ignore[index]
            else:
                stack.extend(child for _, child in node.entries)  # type: ignore[misc]
        self._escapes_since_refresh = 0

    def _note_escape(self) -> None:
        self._escapes_since_refresh += 1
        threshold = max(32, int(len(self._boxes) * self.refresh_fraction))
        if self._escapes_since_refresh >= threshold:
            self.refresh_map()

    # -- maintenance ------------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._boxes = dict(materialized)
        self._tree.bulk_load(materialized)
        self.refresh_map()
        self.in_place_updates = 0
        self.structural_updates = 0

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._tree.insert(eid, box)
        self._boxes[eid] = box
        self._note_escape()  # splits may have relocated mapped entries

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._tree.delete(eid, box)
        del self._boxes[eid]
        self._leaf_of.pop(eid, None)
        self._note_escape()

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Patch the owning leaf in place when the leaf MBR still covers."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        leaf = self._leaf_of.get(eid)
        if leaf is not None and leaf.entries:
            slot = None
            for i, (entry_box, ref) in enumerate(leaf.entries):
                if ref == eid and entry_box == old_box:
                    slot = i
                    break
            if slot is not None and leaf.mbr().contains_box(new_box):
                leaf.entries[slot] = (new_box, eid)
                self._boxes[eid] = new_box
                self.in_place_updates += 1
                self.counters.updates += 1
                return
        # Escaped the leaf MBR, or the map entry went stale: classic path.
        self._tree.delete(eid, old_box)
        self._tree.insert(eid, new_box)
        self._boxes[eid] = new_box
        self._leaf_of.pop(eid, None)
        self.structural_updates += 1
        self.counters.updates += 1
        self._note_escape()

    # -- queries -------------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        return self._tree.range_query(box)

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        return self._tree.knn(point, k)

    def __len__(self) -> int:
        return len(self._boxes)

    def memory_bytes(self) -> int:
        return self._tree.memory_bytes()
