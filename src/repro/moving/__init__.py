"""Moving-object update strategies surveyed in Section 4.2.

Each class here implements one of the paper's surveyed mechanisms for
absorbing updates, and each carries exactly the cost-shift the paper
predicts, measurable through the shared counters:

* :class:`~repro.moving.lur_tree.LURTree` — lazy updates via grace (loose)
  bounding boxes; "by introducing an imprecision in the index structure, the
  burden is shifted to the query execution".
* :class:`~repro.moving.buffered_rtree.BufferedRTree` — update memoing;
  "when computing the query result, buffer and index need to be checked,
  thereby increasing the overhead".
* :class:`~repro.moving.throwaway.ThrowawayIndex` — short-lived per-step
  index (Dittrich et al.): rebuild a cheap structure every step, query it,
  discard it.
* :class:`~repro.moving.bottom_up.BottomUpRTree` — bottom-up updating via a
  direct element→leaf map ("through reinsertion of elements like the R*-Tree
  or with a bottom up approach"); in-place patches when motion stays inside
  the leaf.
* :class:`~repro.moving.tpr.TPRIndex` — trajectory prediction
  (TPR/TPR*/STRIPES family): assumes near-constant velocity; included to
  demonstrate quantitatively why prediction fails on simulation motion
  ("the movement of objects is ultimately what the simulation determines").
"""

from repro.moving.lur_tree import LURTree
from repro.moving.buffered_rtree import BufferedRTree
from repro.moving.throwaway import ThrowawayIndex
from repro.moving.tpr import TPRIndex
from repro.moving.bottom_up import BottomUpRTree

__all__ = ["LURTree", "BufferedRTree", "ThrowawayIndex", "TPRIndex", "BottomUpRTree"]
