"""Lazy-Update R-tree (Kwon et al., MDM'02) — grace/loose bounding boxes.

Every element is indexed under a *grace box*: its bounding box expanded by a
margin ε.  As long as a move keeps the element inside its grace box the tree
is untouched (an O(1) dictionary write updates the exact box); only escapes
pay the classic delete+insert.  The price is the paper's predicted shift of
cost into queries: the tree over-approximates, so every candidate must be
refined against its exact box (counted as ``refine_tests``), and kNN must
search with slack ε.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.rtree import RTree
from repro.instrumentation.counters import Counters


class LURTree(SpatialIndex):
    """R-tree wrapper with grace-window updates.

    Parameters
    ----------
    grace:
        The expansion margin ε per face.  Larger values absorb more motion
        per rebuild but degrade query precision; a good default for
        plasticity-style jitter is a few steps' worth of expected
        displacement.
    """

    def __init__(
        self,
        grace: float = 0.5,
        max_entries: int = 16,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if grace < 0:
            raise ValueError(f"grace must be >= 0, got {grace}")
        self.grace = grace
        self._tree = RTree(max_entries=max_entries, counters=self.counters)
        self._exact: dict[int, AABB] = {}
        self._grace_boxes: dict[int, AABB] = {}
        self.lazy_updates = 0
        self.structural_updates = 0

    # -- maintenance -----------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._exact = dict(materialized)
        self._grace_boxes = {eid: box.expanded(self.grace) for eid, box in materialized}
        self._tree.bulk_load(list(self._grace_boxes.items()))
        self.lazy_updates = 0
        self.structural_updates = 0

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._exact:
            raise ValueError(f"element {eid} already present")
        grace_box = box.expanded(self.grace)
        self._exact[eid] = box
        self._grace_boxes[eid] = grace_box
        self._tree.insert(eid, grace_box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._exact or self._exact[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._tree.delete(eid, self._grace_boxes[eid])
        del self._exact[eid]
        del self._grace_boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Lazy when the move stays inside the grace box, structural else."""
        if eid not in self._exact or self._exact[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        grace_box = self._grace_boxes[eid]
        if grace_box.contains_box(new_box):
            self._exact[eid] = new_box
            self.lazy_updates += 1
        else:
            new_grace = new_box.expanded(self.grace)
            self._tree.delete(eid, grace_box)
            self._tree.insert(eid, new_grace)
            self._exact[eid] = new_box
            self._grace_boxes[eid] = new_grace
            self.structural_updates += 1
        self.counters.updates += 1

    # -- queries ----------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        """Filter on grace boxes, refine on exact boxes (the shifted cost)."""
        counters = self.counters
        results = []
        for eid in self._tree.range_query(box):
            counters.refine_tests += 1
            if self._exact[eid].intersects(box):
                results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Exact kNN despite loose boxes.

        A grace box contains the exact box, so grace-box distance is a lower
        bound on exact distance.  Fetch a widening candidate set from the
        tree until the kth *exact* distance among fetched candidates is no
        larger than the worst fetched *grace* distance — every unfetched
        element is then provably farther.
        """
        if k <= 0 or not self._exact:
            return []
        counters = self.counters
        fetch = max(k * 2, k + 8)
        while True:
            loose = self._tree.knn(point, min(fetch, len(self._exact)))
            scored = []
            for _, eid in loose:
                counters.refine_tests += 1
                scored.append((self._exact[eid].min_distance_to_point(point), eid))
            scored.sort()
            exact_top = scored[:k]
            if len(loose) >= len(self._exact):
                return exact_top
            worst_loose = loose[-1][0]
            # Every unfetched element has grace-distance >= worst_loose, hence
            # exact distance >= worst_loose - 0 >= worst_loose; compare with
            # slack-adjusted kth exact distance.
            if len(exact_top) == k and exact_top[-1][0] <= worst_loose:
                return exact_top
            fetch *= 2

    def __len__(self) -> int:
        return len(self._exact)

    def memory_bytes(self) -> int:
        return self._tree.memory_bytes()
