"""A TPR-style predictive index — and a measurement of why it fails here.

The TPR/TPR*/STRIPES family indexes *trajectories*: each element is stored as
a position anchor plus a velocity, and its bounding box at query time ``t`` is
the anchor box translated by ``v·(t − t_anchor)`` and inflated by a velocity
uncertainty bound.  "Updates are only needed if speed or trajectory change."

The paper's objection — "these approaches do not work well for simulations
because the movement of objects cannot be predicted" — becomes quantitative
here:

* on :class:`~repro.datasets.trajectories.LinearMotion` the index answers
  queries for many steps with **zero** structural updates;
* on plasticity-style Brownian motion the velocity estimates are noise, the
  uncertainty inflation balloons the effective boxes, and
  :attr:`re_anchors` (forced corrections) climbs toward one per element per
  few steps — the benchmark in ``bench_moving_objects.py`` prints both.

Correctness is preserved regardless of motion: queries refine against exact
current boxes supplied through :meth:`advance`, so mispredictions cost time
(inflated candidate sets, re-anchors), never wrong answers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.aabb import AABB
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.indexes.rtree import RTree
from repro.instrumentation.counters import Counters


class TPRIndex(SpatialIndex):
    """Anchor + velocity index with bounded-uncertainty predicted boxes.

    Parameters
    ----------
    max_speed:
        Per-axis velocity bound used to inflate predicted boxes (the TPR
        conservative bound).  For honest comparisons set it near the true
        per-step displacement scale.
    horizon:
        Steps an anchor may age before a forced re-anchor; prediction error
        also forces re-anchors whenever the true box escapes the predicted
        one.
    """

    def __init__(
        self,
        max_speed: float = 0.1,
        horizon: int = 10,
        max_entries: int = 16,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if max_speed < 0:
            raise ValueError(f"max_speed must be >= 0, got {max_speed}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.max_speed = max_speed
        self.horizon = horizon
        self._tree = RTree(max_entries=max_entries, counters=self.counters)
        self._now = 0
        # Per element: (anchor_box, velocity per axis, anchor_time).
        self._anchors: dict[int, tuple[AABB, tuple[float, ...], int]] = {}
        self._tree_boxes: dict[int, AABB] = {}
        self._exact: dict[int, AABB] = {}
        self.re_anchors = 0

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self._now

    def _predicted_box(self, eid: int, at_time: int) -> AABB:
        anchor_box, velocity, anchor_time = self._anchors[eid]
        dt = at_time - anchor_time
        shift_lo = [v * dt - self.max_speed * dt for v in velocity]
        shift_hi = [v * dt + self.max_speed * dt for v in velocity]
        lo = [a + s for a, s in zip(anchor_box.lo, shift_lo)]
        hi = [a + s for a, s in zip(anchor_box.hi, shift_hi)]
        return AABB(lo, hi)

    def _swept_box(self, eid: int) -> AABB:
        """Box covering the element from anchor time through the horizon —
        what actually gets stored in the tree."""
        anchor_box, _, anchor_time = self._anchors[eid]
        end = self._predicted_box(eid, anchor_time + self.horizon)
        return anchor_box.union(end)

    # -- maintenance ----------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._now = 0
        self._exact = dict(materialized)
        zero = (0.0,) * (materialized[0][1].dims if materialized else 3)
        self._anchors = {eid: (box, zero, 0) for eid, box in materialized}
        self._tree_boxes = {eid: self._swept_box(eid) for eid, _ in materialized}
        self._tree.bulk_load(list(self._tree_boxes.items()))
        self.re_anchors = 0

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._exact:
            raise ValueError(f"element {eid} already present")
        self._exact[eid] = box
        self._anchors[eid] = (box, (0.0,) * box.dims, self._now)
        swept = self._swept_box(eid)
        self._tree_boxes[eid] = swept
        self._tree.insert(eid, swept)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._exact or self._exact[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._tree.delete(eid, self._tree_boxes[eid])
        del self._exact[eid]
        del self._anchors[eid]
        del self._tree_boxes[eid]
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """A position report: cheap if prediction still covers, else re-anchor."""
        if eid not in self._exact or self._exact[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        self._exact[eid] = new_box
        anchor_box, velocity, anchor_time = self._anchors[eid]
        aged_out = (self._now - anchor_time) >= self.horizon
        if self._tree_boxes[eid].contains_box(new_box) and not aged_out:
            self.counters.updates += 1
            return
        # Re-anchor: estimate velocity from the observed displacement.
        dt = max(self._now - anchor_time, 1)
        observed = tuple(
            (n - o) / dt for n, o in zip(new_box.center(), anchor_box.center())
        )
        self._tree.delete(eid, self._tree_boxes[eid])
        self._anchors[eid] = (new_box, observed, self._now)
        swept = self._swept_box(eid)
        self._tree_boxes[eid] = swept
        self._tree.insert(eid, swept)
        self.re_anchors += 1
        self.counters.updates += 1

    def advance(self, moves: Sequence[tuple[int, AABB, AABB]]) -> None:
        """Advance the clock one step and ingest the step's true motion."""
        self._now += 1
        for eid, old_box, new_box in moves:
            self.update(eid, old_box, new_box)

    # -- queries ---------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        """Filter on swept/predicted boxes, refine on exact current boxes."""
        counters = self.counters
        results = []
        for eid in self._tree.range_query(box):
            counters.refine_tests += 1
            if self._exact[eid].intersects(box):
                results.append(eid)
        return results

    def time_slice_query(self, box: AABB, at_time: int) -> list[int]:
        """The TPR family's signature query: who *will* intersect ``box``
        at the (future) time ``at_time``?

        Candidates come from the tree's swept boxes, refined against each
        element's predicted box at ``at_time``.  The answer is conservative
        in exactly the TPR sense: as long as every element's true per-step
        center displacement stays within ``max_speed`` per axis and its
        extents do not grow, its predicted box contains its true box, so
        the returned ids are a superset of the true intersecting set at
        ``at_time`` (never a wrong exclusion).  ``at_time == now`` refines
        on exact boxes and is the plain :meth:`range_query`.
        """
        if at_time < self._now:
            raise ValueError(f"time-slice query in the past: {at_time} < now={self._now}")
        if at_time == self._now:
            return self.range_query(box)
        counters = self.counters
        results = []
        for eid in self._anchors:
            # Swept boxes only cover anchor→horizon; beyond that, predict
            # directly (the tree filter would under-approximate).
            counters.refine_tests += 1
            if self._predicted_box(eid, at_time).intersects(box):
                results.append(eid)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Exact kNN via widening fetches (swept-box distance lower-bounds
        exact distance, same argument as the LUR-tree)."""
        if k <= 0 or not self._exact:
            return []
        counters = self.counters
        fetch = max(k * 2, k + 8)
        while True:
            loose = self._tree.knn(point, min(fetch, len(self._exact)))
            scored = []
            for _, eid in loose:
                counters.refine_tests += 1
                scored.append((self._exact[eid].min_distance_to_point(point), eid))
            scored.sort()
            exact_top = scored[:k]
            if len(loose) >= len(self._exact):
                return exact_top
            worst_loose = loose[-1][0]
            if len(exact_top) == k and exact_top[-1][0] <= worst_loose:
                return exact_top
            fetch *= 2

    def __len__(self) -> int:
        return len(self._exact)

    def memory_bytes(self) -> int:
        return self._tree.memory_bytes()
