"""Deprecated free-function surface of the grid joins.

The implementations live in :class:`repro.joins.strategies.GridJoin`
(registry name ``"grid"``, the vectorized session-batched probe; the
scalar per-probe baseline remains as ``"grid_scalar"``) and
:class:`repro.joins.strategies.TinyCellJoin` (``"tiny_cell"``); submit
specs through :class:`repro.joins.JoinSession`.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.strategies import GridJoin, TinyCellJoin


def grid_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    cell_size: float | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Index A in a uniform grid (one pass), batch-probe with all B boxes."""
    deprecated_join("grid_join", "grid")
    return GridJoin(cell_size=cell_size).join(
        items_a, items_b, counters if counters is not None else Counters()
    )


def tiny_cell_self_join(
    items: Sequence[Item],
    cell_size: float | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Self-join with cells smaller than the smallest element (§4.3)."""
    deprecated_join("tiny_cell_self_join", "tiny_cell")
    return TinyCellJoin(cell_size=cell_size).self_join(
        items, counters if counters is not None else Counters()
    )
