"""Grid-based spatial joins, including the tiny-cell trick (§4.3).

Two variants of the paper's grid research direction:

* :func:`grid_join` — build a uniform grid over one input in a single pass,
  probe it with the other input's boxes.  "Only objects in grid cells need to
  be compared with each other, thereby substantially reducing the
  comparisons."
* :func:`tiny_cell_self_join` — the paper's refinement: "if the grid cell
  size is smaller than the smallest element size, then objects in the same
  cell intersect by definition"; same-cell co-residents are emitted without a
  comparison, and only neighbouring-cell pairs are tested.  To keep
  replication in check, elements are registered by centre only and
  neighbouring cells within the element reach are probed — exactly the
  "elements may not be assigned to all intersecting cells, but elements in
  neighboring cells need to be compared" compromise.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.uniform_grid import UniformGrid
from repro.engine import QuerySession
from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters


def grid_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    cell_size: float | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Index A in a uniform grid (one pass), batch-probe with all B boxes.

    The probe side runs through a :class:`~repro.engine.QuerySession`, so
    the whole of B is answered by the grid's vectorized kernel (the
    session's batch executor) instead of one Python-dispatched
    ``range_query`` per element — the join *is* the synapse-detection batch
    workload.
    """
    counters = counters if counters is not None else Counters()
    if not items_a or not items_b:
        return []
    hull = union_all(box for _, box in items_a).union(
        union_all(box for _, box in items_b)
    )
    grid = UniformGrid(
        universe=hull.expanded(max(hull.margin() * 0.005, 1e-9)),
        cell_size=cell_size,
        counters=counters,
    )
    grid.bulk_load(items_a)
    session = QuerySession(grid)
    hits = session.range_query([box for _, box in items_b])
    pairs: list[tuple[int, int]] = []
    for (eid_b, _), matches in zip(items_b, hits):
        for eid_a in matches:
            pairs.append((eid_a, eid_b))
    # The grid's elem_tests during probes are the join's comparisons.
    counters.comparisons += counters.elem_tests
    counters.elem_tests = 0
    return pairs


def tiny_cell_self_join(
    items: Sequence[Item],
    cell_size: float | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Self-join with cells smaller than the smallest element.

    Elements are hashed by centre into cells of side ``cell_size`` (default:
    0.9 × the smallest element extent).  Same-cell pairs are reported with
    **zero** intersection tests — with the cell smaller than every element,
    two elements whose centres share a cell must overlap.  Pairs spanning
    different cells are found by probing the neighbour window each element's
    box can reach, with exact tests.

    Degenerate inputs (point elements → zero minimum extent) fall back to a
    density-based cell size and test all pairs exactly, since the "intersect
    by definition" shortcut requires a positive minimum element size.
    """
    counters = counters if counters is not None else Counters()
    if len(items) < 2:
        return []
    dims = items[0][1].dims
    min_extent = min(min(box.extents()) for _, box in items)
    shortcut_valid = min_extent > 0.0
    if cell_size is None:
        if shortcut_valid:
            cell_size = 0.9 * min_extent
        else:
            hull = union_all(box for _, box in items)
            cell_size = max(max(hull.extents()) / max(len(items), 1), 1e-9)
    elif cell_size >= min_extent:
        shortcut_valid = False

    hull = union_all(box for _, box in items)

    def cell_of(box: AABB) -> tuple[int, ...]:
        center = box.center()
        return tuple(
            int(math.floor((center[axis] - hull.lo[axis]) / cell_size))
            for axis in range(dims)
        )

    cells: dict[tuple[int, ...], list[Item]] = {}
    for eid, box in items:
        cells.setdefault(cell_of(box), []).append((eid, box))

    pairs: list[tuple[int, int]] = []
    emitted: set[tuple[int, int]] = set()

    # Same-cell pairs: intersect by definition when cells are tiny enough.
    for bucket in cells.values():
        for i in range(len(bucket)):
            eid_a, box_a = bucket[i]
            for j in range(i + 1, len(bucket)):
                eid_b, box_b = bucket[j]
                if shortcut_valid:
                    pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                    pairs.append(pair)
                    emitted.add(pair)
                else:
                    counters.comparisons += 1
                    if box_a.intersects(box_b):
                        pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                        pairs.append(pair)
                        emitted.add(pair)

    # Cross-cell pairs: probe the neighbour window each box can reach.  Two
    # intersecting boxes have centres at most (extent_a + extent_b)/2 apart
    # per axis, so the window must cover half the element's own extent plus
    # half the dataset-wide maximum extent.
    max_extent = [max(box.hi[axis] - box.lo[axis] for _, box in items) for axis in range(dims)]
    for eid_a, box_a in items:
        home = cell_of(box_a)
        reach = [
            int(
                math.ceil(
                    ((box_a.hi[axis] - box_a.lo[axis]) / 2.0 + max_extent[axis] / 2.0)
                    / cell_size
                )
            )
            + 1
            for axis in range(dims)
        ]
        for key in _neighbourhood(home, reach):
            if key == home:
                continue
            counters.cells_probed += 1
            for eid_b, box_b in cells.get(key, ()):
                if eid_a == eid_b:
                    continue
                pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                if pair in emitted:
                    continue
                counters.comparisons += 1
                if box_a.intersects(box_b):
                    pairs.append(pair)
                    emitted.add(pair)
    return pairs


def _neighbourhood(center: tuple[int, ...], reach: list[int]):
    """All cells within ``reach[axis]`` of ``center`` per axis."""
    if len(center) == 1:
        for i in range(center[0] - reach[0], center[0] + reach[0] + 1):
            yield (i,)
        return
    for i in range(center[0] - reach[0], center[0] + reach[0] + 1):
        for tail in _neighbourhood(center[1:], reach[1:]):
            yield (i, *tail)
