"""Join strategies: every join algorithm behind one interface.

Each algorithm the paper surveys (§3.2/3.3/4.3) is a :class:`JoinStrategy`
registered in :data:`JOIN_REGISTRY`.  The contract every strategy honours:

* ``join(items_a, items_b, counters)`` returns **exactly** the ordered pair
  set the nested loop would — every intersecting ``(a, b)`` exactly once;
* ``self_join(items, counters)`` returns every unordered intersecting pair
  exactly once as ``(min_id, max_id)``;
* ``distance_candidates(...)`` returns a complete candidate set for the
  within-ε predicate (a superset of the true answer, refined by the
  session);
* pairwise work is charged to ``counters.comparisons`` — the currency the
  paper argues with ("the number of comparisons (the major bulk of work for
  in-memory spatial joins)").

Scalar baselines (``nested_loop``, ``grid_scalar``, ``pbsm_scalar``,
``touch``, ``tiny_cell``) keep the per-pair Python loops the paper's cost
model counts; the vectorized strategies (``block_nested``, ``sweepline``,
``grid``, ``pbsm``, ``tree``) run the same algorithms on the array kernels
of :mod:`repro.joins.kernels` and the query engine.  The oracle suite
(``tests/test_join_session.py``) asserts every registry entry agrees with
the nested loop on every dataset shape.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.core.uniform_grid import UniformGrid
from repro.engine import QuerySession
from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item
from repro.indexes.bulkload import str_pack
from repro.indexes.rtree import Node
from repro.instrumentation.counters import Counters
from repro.joins import kernels

Pairs = list[tuple[int, int]]


class JoinStrategy(ABC):
    """One join algorithm, interchangeable with every other registry entry."""

    #: Registry key; subclasses set it and :func:`register` indexes on it.
    name: str = "strategy"
    #: Whether the strategy answers binary (A ⋈ B) joins.
    binary: bool = True
    #: Whether the strategy is safe to run inside forked shard workers.
    #: A strategy holding writable process state (e.g. open file
    #: descriptors forked children would write through) must set False.
    forkable: bool = True
    #: Custom sharding contract, checked by the sharded executor *before*
    #: its generic element-range paths.  ``"tile_runs"`` (the spill join)
    #: means: partition in the parent via ``plan_tile_runs`` and merge the
    #: resulting mapped runs in pool workers — never fork the strategy
    #: wholesale.  ``None`` means generic sharding applies.
    shard_protocol: str | None = None

    @abstractmethod
    def join(self, items_a: Sequence[Item], items_b: Sequence[Item], counters: Counters) -> Pairs:
        """All ``(a, b)`` id pairs of A × B with intersecting boxes, each once."""

    def self_join(self, items: Sequence[Item], counters: Counters) -> Pairs:
        """All unordered intersecting pairs, as ``(min_id, max_id)``, each once.

        Default: run the binary join of the set against itself and keep the
        ``a < b`` half — every unordered pair appears exactly twice in the
        ordered result (once per orientation) plus the ``(i, i)`` diagonal,
        so the filter reports it exactly once.  Strategies with a cheaper
        native self path override this.
        """
        return [(a, b) for a, b in self.join(items, items, counters) if a < b]

    def distance_candidates(
        self,
        items_a: Sequence[Item],
        items_b: Sequence[Item] | None,
        epsilon: float,
        counters: Counters,
    ) -> Pairs:
        """Complete candidate pairs for the within-ε predicate.

        Default filter: expand every box by ε/2 per side and run the plain
        intersection join — exact distance ≤ ε implies the expanded boxes
        intersect.  ``items_b=None`` means self-join candidates
        (``a < b``).  Strategies with a native distance filter (the tree's
        bounded traversal) override this with something tighter.
        """
        expanded_a = [(eid, box.expanded(epsilon / 2.0)) for eid, box in items_a]
        if items_b is None:
            return self.self_join(expanded_a, counters)
        expanded_b = [(eid, box.expanded(epsilon / 2.0)) for eid, box in items_b]
        return self.join(expanded_a, expanded_b, counters)


# -- registry ------------------------------------------------------------------

#: Name → strategy class for every shipped join algorithm.
JOIN_REGISTRY: dict[str, type[JoinStrategy]] = {}


def register(cls: type[JoinStrategy]) -> type[JoinStrategy]:
    JOIN_REGISTRY[cls.name] = cls
    return cls


def available_join_strategies() -> list[str]:
    """Registered strategy names, sorted."""
    return sorted(JOIN_REGISTRY)


def make_join_strategy(name: str, **kwargs: object) -> JoinStrategy:
    """Construct a registered strategy by name (kwargs go to its ``__init__``)."""
    try:
        cls = JOIN_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown join strategy {name!r}; available: {available_join_strategies()}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]


def _hull(*item_sets: Sequence[Item]) -> AABB:
    return union_all(box for items in item_sets for _, box in items)


# -- nested loop (the oracle) ----------------------------------------------------


@register
class NestedLoopJoin(JoinStrategy):
    """The O(n·m) scalar baseline and correctness oracle.

    "Not using any index structure results in a nested loop join with n²
    comparisons" (§4.3).  Every other strategy is tested against this one.
    """

    name = "nested_loop"

    def join(self, items_a, items_b, counters):
        pairs: Pairs = []
        for eid_a, box_a in items_a:
            for eid_b, box_b in items_b:
                counters.comparisons += 1
                if box_a.intersects(box_b):
                    pairs.append((eid_a, eid_b))
        return pairs

    def self_join(self, items, counters):
        pairs: Pairs = []
        n = len(items)
        for i in range(n):
            eid_a, box_a = items[i]
            for j in range(i + 1, n):
                eid_b, box_b = items[j]
                counters.comparisons += 1
                if box_a.intersects(box_b):
                    pairs.append((eid_a, eid_b) if eid_a < eid_b else (eid_b, eid_a))
        return pairs


@register
class BlockNestedJoin(JoinStrategy):
    """The nested loop on the blocked dense-overlap kernel.

    Same n·m comparisons, executed as bounded bool blocks instead of Python
    iterations — the planner's choice for small inputs where partitioning
    set-up would dominate.
    """

    name = "block_nested"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        eids_a, boxes_a = kernels.pack_items(items_a)
        eids_b, boxes_b = kernels.pack_items(items_b)
        ai, bi = kernels.block_pairs(boxes_a, boxes_b, counters)
        return list(zip(eids_a[ai].tolist(), eids_b[bi].tolist()))

    def self_join(self, items, counters):
        if len(items) < 2:
            return []
        eids, boxes = kernels.pack_items(items)
        ai, bi = kernels.block_pairs(boxes, boxes, counters)
        keep = eids[ai] < eids[bi]
        return list(zip(eids[ai[keep]].tolist(), eids[bi[keep]].tolist()))


# -- plane sweep -----------------------------------------------------------------


@register
class SweeplineJoin(JoinStrategy):
    """Sort + plane sweep along axis 0, vectorized.

    One of the two algorithms "specifically designed for use in memory"
    before TOUCH (§3.2).  Both inputs are sorted by their lower x
    coordinate; every intersecting pair has exactly one of its lower-x
    bounds inside the other's x range, so two ``searchsorted`` window sweeps
    enumerate each candidate exactly once, and the remaining axes are tested
    with one array expression per sweep.  The paper's criticism survives
    vectorization unchanged: pruning is only by x, so ``comparisons`` counts
    every x-overlapping pair, however far apart in y/z.
    """

    name = "sweepline"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        eids_a, boxes_a = kernels.pack_items(items_a)
        eids_b, boxes_b = kernels.pack_items(items_b)
        pairs: Pairs = []
        # Sweep 1: B elements whose lo-x lies within [a.lo_x, a.hi_x].
        pairs.extend(
            self._sweep(eids_a, boxes_a, eids_b, boxes_b, counters, strict=False)
        )
        # Sweep 2 (mirror): A elements whose lo-x lies strictly inside
        # (b.lo_x, b.hi_x] — strict, so ties report only in sweep 1.
        pairs.extend(
            (a, b)
            for b, a in self._sweep(eids_b, boxes_b, eids_a, boxes_a, counters, strict=True)
        )
        return pairs

    # Candidate pairs materialized per slab; x-clustered inputs can produce
    # windows far larger than the output, and the slab keeps that bounded.
    _SLAB = 1 << 22

    @classmethod
    def _sweep(cls, eids_out, boxes_out, eids_in, boxes_in, counters, *, strict):
        order = np.argsort(boxes_in[:, 0, 0], kind="stable")
        lo_sorted = boxes_in[order, 0, 0]
        side = "right" if strict else "left"
        starts = np.searchsorted(lo_sorted, boxes_out[:, 0, 0], side=side)
        stops = np.searchsorted(lo_sorted, boxes_out[:, 1, 0], side="right")
        counts = np.maximum(stops - starts, 0)
        cumulative = np.cumsum(counts)
        total = int(cumulative[-1]) if counts.shape[0] else 0
        if total == 0:
            return []
        counters.comparisons += total
        pairs = []
        edges = np.searchsorted(cumulative, np.arange(0, total, cls._SLAB), side="left")
        edges = np.append(edges, counts.shape[0])
        for lo_row, hi_row in zip(edges[:-1], edges[1:]):
            if lo_row == hi_row:
                continue
            rows, cols = kernels.expand_ranges(starts[lo_row:hi_row], stops[lo_row:hi_row])
            if rows.shape[0] == 0:
                continue
            rows = rows + lo_row
            inner = order[cols]
            a, b = boxes_out[rows], boxes_in[inner]
            ok = np.all(
                (a[:, 0, 1:] <= b[:, 1, 1:]) & (b[:, 0, 1:] <= a[:, 1, 1:]), axis=1
            )
            pairs.extend(zip(eids_out[rows[ok]].tolist(), eids_in[inner[ok]].tolist()))
        return pairs


# -- grid joins ------------------------------------------------------------------


class _GridJoinBase(JoinStrategy):
    """Shared build-the-grid-over-A plumbing for both grid variants."""

    def __init__(self, cell_size: float | None = None) -> None:
        self.cell_size = cell_size

    def _build(self, items_a: Sequence[Item], hull: AABB, scratch: Counters) -> UniformGrid:
        grid = UniformGrid(
            universe=hull.expanded(max(hull.margin() * 0.005, 1e-9)),
            cell_size=self.cell_size,
            counters=scratch,
        )
        grid.bulk_load(items_a)
        return grid


@register
class GridJoin(_GridJoinBase):
    """The paper's §4.3 direction on the vectorized kernels.

    Index A in a uniform grid (one linear pass — the preprocessing the paper
    wants cheap), then answer the whole probe side as one
    :class:`~repro.engine.QuerySession` batch, so the join rides the grid's
    vectorized range kernel instead of a per-element ``range_query`` loop.
    The grid's element tests during the probes are the join's comparisons.
    """

    name = "grid"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        scratch = Counters()
        grid = self._build(items_a, _hull(items_a, items_b), scratch)
        session = QuerySession(grid)
        hits = session.range_query([box for _, box in items_b])
        counters.comparisons += scratch.elem_tests
        counters.cells_probed += scratch.cells_probed
        pairs: Pairs = []
        for (eid_b, _), matches in zip(items_b, hits):
            for eid_a in matches:
                pairs.append((eid_a, eid_b))
        return pairs

    def self_join(self, items, counters):
        if len(items) < 2:
            return []
        scratch = Counters()
        grid = self._build(items, _hull(items), scratch)
        session = QuerySession(grid)
        hits = session.range_query([box for _, box in items])
        counters.comparisons += scratch.elem_tests
        counters.cells_probed += scratch.cells_probed
        # Each unordered pair surfaces from both probes; keep the probe
        # whose id is smaller, so the pair reports exactly once.
        pairs: Pairs = []
        for (eid, _), matches in zip(items, hits):
            for other in matches:
                if eid < other:
                    pairs.append((eid, other))
        return pairs


@register
class GridScalarJoin(_GridJoinBase):
    """The same grid join, probing with one scalar ``range_query`` per B box.

    The pre-batching shape of the algorithm — kept as the measured baseline
    the vectorized :class:`GridJoin` is benchmarked against
    (``benchmarks/bench_joins.py``).
    """

    name = "grid_scalar"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        scratch = Counters()
        grid = self._build(items_a, _hull(items_a, items_b), scratch)
        pairs: Pairs = []
        for eid_b, box_b in items_b:
            for eid_a in grid.range_query(box_b):
                pairs.append((eid_a, eid_b))
        counters.comparisons += scratch.elem_tests
        counters.cells_probed += scratch.cells_probed
        return pairs


# -- PBSM ------------------------------------------------------------------------


def _default_tiles(n_total: int, dims: int) -> int:
    target_tiles = max(n_total / 4.0, 1.0)
    return max(1, int(round(target_tiles ** (1.0 / dims))))


class _PBSMBase(JoinStrategy):
    def __init__(self, tiles_per_axis: int | None = None) -> None:
        self.tiles_per_axis = tiles_per_axis

    def _tiles(self, items_a, items_b, dims) -> int:
        if self.tiles_per_axis is not None:
            return self.tiles_per_axis
        return _default_tiles(len(items_a) + len(items_b), dims)


@register
class PBSMJoin(_PBSMBase):
    """Partition Based Spatial-Merge (Patel & DeWitt, SIGMOD'96), vectorized.

    The paper recommends exactly this shape for memory: "An approach based
    on a grid (similar to PBSM) optimized for memory ... will certainly
    speed up the preprocessing/indexing and thus the overall join" (§3.3).
    Partitioning, the per-tile cross products and the reference-point dedup
    all run as array expressions (:func:`repro.joins.kernels.pbsm_pairs`);
    a pair is reported only by the tile containing the lower corner of the
    two boxes' intersection, so replication never duplicates output.
    """

    name = "pbsm"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        eids_a, boxes_a = kernels.pack_items(items_a)
        eids_b, boxes_b = kernels.pack_items(items_b)
        hull_lo = np.minimum(boxes_a[:, 0, :].min(axis=0), boxes_b[:, 0, :].min(axis=0))
        hull_hi = np.maximum(boxes_a[:, 1, :].max(axis=0), boxes_b[:, 1, :].max(axis=0))
        tiles = self._tiles(items_a, items_b, boxes_a.shape[2])
        ai, bi = kernels.pbsm_pairs(
            boxes_a, boxes_b, hull_lo, hull_hi, tiles, counters
        )
        return list(zip(eids_a[ai].tolist(), eids_b[bi].tolist()))


@register
class PBSMScalarJoin(_PBSMBase):
    """PBSM with dict-of-buckets partitioning and per-pair Python tests.

    The pre-vectorization shape, kept as the measured baseline for
    :class:`PBSMJoin` (``benchmarks/bench_joins.py``).
    """

    name = "pbsm_scalar"

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        hull = _hull(items_a, items_b)
        dims = hull.dims
        tiles_per_axis = self._tiles(items_a, items_b, dims)
        sides = tuple(max(extent / tiles_per_axis, 1e-12) for extent in hull.extents())

        def tile_window(box: AABB) -> tuple[tuple[int, ...], tuple[int, ...]]:
            lo, hi = [], []
            for axis in range(dims):
                lo_idx = int((box.lo[axis] - hull.lo[axis]) / sides[axis])
                hi_idx = int((box.hi[axis] - hull.lo[axis]) / sides[axis])
                lo.append(max(0, min(lo_idx, tiles_per_axis - 1)))
                hi.append(max(0, min(hi_idx, tiles_per_axis - 1)))
            return tuple(lo), tuple(hi)

        tiles_a: dict[tuple[int, ...], list[Item]] = {}
        tiles_b: dict[tuple[int, ...], list[Item]] = {}
        for tiles, items in ((tiles_a, items_a), (tiles_b, items_b)):
            for eid, box in items:
                lo, hi = tile_window(box)
                for key in _window_keys(lo, hi):
                    tiles.setdefault(key, []).append((eid, box))

        def owning_tile(overlap: AABB) -> tuple[int, ...]:
            key = []
            for axis in range(dims):
                idx = int((overlap.lo[axis] - hull.lo[axis]) / sides[axis])
                key.append(max(0, min(idx, tiles_per_axis - 1)))
            return tuple(key)

        pairs: Pairs = []
        for key, bucket_a in tiles_a.items():
            bucket_b = tiles_b.get(key)
            if not bucket_b:
                continue
            for eid_a, box_a in bucket_a:
                for eid_b, box_b in bucket_b:
                    counters.comparisons += 1
                    overlap = box_a.intersection(box_b)
                    if overlap is None:
                        continue
                    if owning_tile(overlap) == key:
                        pairs.append((eid_a, eid_b))
        return pairs


def _window_keys(lo: tuple[int, ...], hi: tuple[int, ...]):
    if len(lo) == 1:
        for i in range(lo[0], hi[0] + 1):
            yield (i,)
        return
    for i in range(lo[0], hi[0] + 1):
        for tail in _window_keys(lo[1:], hi[1:]):
            yield (i, *tail)


# -- tree join (carried-set traversal) ---------------------------------------------


@register
class TreeJoin(JoinStrategy):
    """STR-packed R-tree join with the batch-kNN carried-set traversal.

    Builds the tree over A and answers the whole probe side in one traversal
    (:func:`repro.joins.kernels.tree_pairs`): each node is expanded at most
    once per batch, carrying exactly the probes whose gap bound reaches its
    MBR — the pruning discipline of the seeded best-first kNN kernel with
    the bound fixed per probe.  For distance joins the bound *is* ε: the
    box-gap filter is complete (the gap lower-bounds the exact distance) and
    strictly tighter than ε-expanded box intersection, so distance joins
    prune with per-probe bounds instead of inflating every box.
    """

    name = "tree"

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        eids_b, boxes_b = kernels.pack_items(items_b)
        bounds = np.zeros(boxes_b.shape[0])
        probes, hits = kernels.tree_pairs(
            items_a, boxes_b, bounds, counters, self.max_entries
        )
        return list(zip(hits.tolist(), eids_b[probes].tolist()))

    def distance_candidates(self, items_a, items_b, epsilon, counters):
        probe_items = items_a if items_b is None else items_b
        eids_p, boxes_p = kernels.pack_items(probe_items)
        if not items_a or not probe_items:
            return []
        bounds = np.full(boxes_p.shape[0], float(epsilon))
        probes, hits = kernels.tree_pairs(
            items_a, boxes_p, bounds, counters, self.max_entries
        )
        if items_b is None:
            keep = hits < eids_p[probes]
            return list(zip(hits[keep].tolist(), eids_p[probes[keep]].tolist()))
        return list(zip(hits.tolist(), eids_p[probes].tolist()))


# -- TOUCH -----------------------------------------------------------------------


@register
class TouchJoin(JoinStrategy):
    """TOUCH: hierarchical data-oriented partitioning, assign-and-probe
    (Nobari, Tauheed, Heinis, Karras, Bressan, Ailamaki — SIGMOD'13).

    The authors' own pre-paper join, cited in §3.2 as outperforming both the
    nested loop and the sweep line in memory: bulk-build an R-tree hierarchy
    over A, *assign* each B element to the lowest node whose subtree could
    hold all its matches, then *probe* each leaf's A elements against the B
    buckets assigned along its ancestor path — spatially distant pairs never
    meet, because containment stopped them at disjoint branches.
    """

    name = "touch"

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries

    def join(self, items_a, items_b, counters):
        if not items_a or not items_b:
            return []
        root, _height, _count = str_pack(list(items_a), self.max_entries, Node)
        root_node: Node = root  # type: ignore[assignment]
        buckets: dict[int, list[Item]] = {}

        for eid_b, box_b in items_b:
            # Descend while exactly one child MBR intersects the element:
            # only then is the whole candidate set guaranteed to be in one
            # subtree.  Zero intersecting children means no A element can
            # match — drop.
            node = root_node
            placed = True
            while not node.is_leaf:
                hits: list[Node] = []
                for entry_box, child in node.entries:
                    counters.node_tests += 1
                    if entry_box.intersects(box_b):
                        hits.append(child)  # type: ignore[arg-type]
                        if len(hits) > 1:
                            break
                if not hits:
                    placed = False
                    break
                if len(hits) > 1:
                    break
                node = hits[0]
            if placed:
                buckets.setdefault(id(node), []).append((eid_b, box_b))

        pairs: Pairs = []
        self._probe(root_node, [], buckets, pairs, counters)
        return pairs

    def _probe(self, node: Node, ancestors, buckets, pairs, counters) -> None:
        own = buckets.get(id(node))
        if own:
            ancestors = ancestors + [own]
        if node.is_leaf:
            if ancestors:
                for box_a, eid_a in node.entries:
                    for bucket in ancestors:
                        for eid_b, box_b in bucket:
                            counters.comparisons += 1
                            if box_a.intersects(box_b):
                                pairs.append((eid_a, eid_b))
            return
        for _, child in node.entries:
            self._probe(child, ancestors, buckets, pairs, counters)  # type: ignore[arg-type]


# -- tiny-cell self join -----------------------------------------------------------


@register
class TinyCellJoin(JoinStrategy):
    """Self-join with cells smaller than the smallest element (§4.3).

    The paper's refinement of the grid direction: "if the grid cell size is
    smaller than the smallest element size, then objects in the same cell
    intersect by definition" — same-cell co-residents are emitted with zero
    comparisons, and only neighbouring-cell pairs are tested.  Self-join
    only; the planner never routes binary specs here.
    """

    name = "tiny_cell"
    binary = False

    def __init__(self, cell_size: float | None = None) -> None:
        self.cell_size = cell_size

    def join(self, items_a, items_b, counters):
        raise NotImplementedError("tiny_cell is a self-join strategy")

    def self_join(self, items, counters):
        if len(items) < 2:
            return []
        dims = items[0][1].dims
        min_extent = min(min(box.extents()) for _, box in items)
        shortcut_valid = min_extent > 0.0
        cell_size = self.cell_size
        if cell_size is None:
            if shortcut_valid:
                cell_size = 0.9 * min_extent
            else:
                hull = _hull(items)
                cell_size = max(max(hull.extents()) / max(len(items), 1), 1e-9)
        elif cell_size >= min_extent:
            shortcut_valid = False

        hull = _hull(items)

        def cell_of(box: AABB) -> tuple[int, ...]:
            center = box.center()
            return tuple(
                int(math.floor((center[axis] - hull.lo[axis]) / cell_size))
                for axis in range(dims)
            )

        cells: dict[tuple[int, ...], list[Item]] = {}
        for eid, box in items:
            cells.setdefault(cell_of(box), []).append((eid, box))

        pairs: Pairs = []
        emitted: set[tuple[int, int]] = set()

        # Same-cell pairs: intersect by definition when cells are tiny enough.
        for bucket in cells.values():
            for i in range(len(bucket)):
                eid_a, box_a = bucket[i]
                for j in range(i + 1, len(bucket)):
                    eid_b, box_b = bucket[j]
                    if shortcut_valid:
                        pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                        pairs.append(pair)
                        emitted.add(pair)
                    else:
                        counters.comparisons += 1
                        if box_a.intersects(box_b):
                            pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                            pairs.append(pair)
                            emitted.add(pair)

        # Cross-cell pairs: probe the neighbour window each box can reach.
        # Two intersecting boxes have centres at most (extent_a + extent_b)/2
        # apart per axis, so the window covers half the element's own extent
        # plus half the dataset-wide maximum extent.
        max_extent = [
            max(box.hi[axis] - box.lo[axis] for _, box in items) for axis in range(dims)
        ]
        for eid_a, box_a in items:
            home = cell_of(box_a)
            reach = [
                int(
                    math.ceil(
                        ((box_a.hi[axis] - box_a.lo[axis]) / 2.0 + max_extent[axis] / 2.0)
                        / cell_size
                    )
                )
                + 1
                for axis in range(dims)
            ]
            window = _window_keys(
                tuple(c - r for c, r in zip(home, reach)),
                tuple(c + r for c, r in zip(home, reach)),
            )
            for key in window:
                if key == home:
                    continue
                counters.cells_probed += 1
                for eid_b, box_b in cells.get(key, ()):
                    if eid_a == eid_b:
                        continue
                    pair = (min(eid_a, eid_b), max(eid_a, eid_b))
                    if pair in emitted:
                        continue
                    counters.comparisons += 1
                    if box_a.intersects(box_b):
                        pairs.append(pair)
                        emitted.add(pair)
        return pairs


# -- adapter for user-supplied callables -------------------------------------------


class CallableJoin(JoinStrategy):
    """Adapts a bare ``(items_a, items_b, counters) -> pairs`` callable.

    Back-compat bridge for the pre-session ``box_join=`` hooks
    (:meth:`repro.joins.synapse.SynapseDetector.detect` and
    :func:`repro.joins.synapse.distance_join`); not registered — construct
    it explicitly.
    """

    name = "callable"

    def __init__(self, fn: Callable[..., Pairs]) -> None:
        self.fn = fn

    def join(self, items_a, items_b, counters):
        return self.fn(items_a, items_b, counters=counters)
