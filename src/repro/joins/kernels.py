"""Vectorized candidate-pair kernels for the join strategies.

Every kernel works on packed box arrays (``(n, 2, d)`` float64, the same
layout the query engine's batch kernels use) and returns candidate pairs as
parallel integer row arrays — no Python-level pair loops.  Three families:

* :func:`block_pairs` — blocked all-pairs ``batch_intersects``: the
  vectorized nested loop.  O(n·m) comparisons but at kernel speed; the
  memory cap bounds each bool block.
* :func:`pbsm_pairs` — the fully vectorized Partition Based Spatial-Merge:
  tile replication, per-tile cross products, and reference-point dedup are
  all array expressions (one ``repeat``/``cumsum`` expansion instead of a
  dict-of-buckets), processed in bounded slabs.  :func:`replica_tile_pairs`
  is its merge phase alone, over pre-gathered replica arrays — the kernel
  the out-of-core PBSM streams spilled partitions through.
* :func:`tree_pairs` — candidate generation over an STR-packed R-tree with
  the *carried-query-set* traversal of :mod:`repro.indexes.batch_knn`: every
  node is expanded at most once per batch with the subset of probes whose
  per-probe gap bound still reaches it.  With bounds of 0 this is a batched
  intersection join; with bounds of ε it is the distance join's filter, no
  box expansion needed — exactly the "batched joins reusing the kNN
  traversal's seeded bounds" direction the ROADMAP names.

Shared helpers :func:`pack_items` and :func:`expand_ranges` are the packing
and window-expansion idioms the strategies compose.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.aabb import boxes_to_array
from repro.indexes.base import Item
from repro.indexes.bulkload import str_pack
from repro.indexes.rtree import Node
from repro.instrumentation.counters import Counters

# Bool-matrix entries per all-pairs block; 1 << 24 keeps each block around
# 16 MB and measures fastest on the n=100k workload.
_BLOCK_CELLS = 1 << 24

# Candidate pairs per PBSM slab: tile cross products are materialized in
# slabs of at most this many pairs, so adversarial inputs (everything in one
# tile) degrade to bounded-memory batches instead of one giant allocation.
_SLAB_PAIRS = 1 << 22


def pack_items(items: Sequence[Item]) -> tuple[np.ndarray, np.ndarray]:
    """``(eids, boxes)`` arrays for a list of ``(eid, AABB)`` items."""
    n = len(items)
    eids = np.fromiter((eid for eid, _ in items), dtype=np.int64, count=n)
    boxes = boxes_to_array([box for _, box in items])
    return eids, boxes


def expand_ranges(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row index windows ``[starts, stops)`` into pair arrays.

    Returns ``(rows, cols)`` where row ``i`` contributes the column indices
    ``starts[i] .. stops[i]-1``: the vectorized form of the nested
    "for each element, for each index in its window" loop every partitioned
    join bottoms out in.
    """
    counts = np.maximum(stops - starts, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(starts.shape[0], dtype=np.int64), counts)
    bases = np.concatenate([[0], np.cumsum(counts)[:-1]])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(bases, counts)
    return rows, starts[rows] + offsets


# -- blocked all-pairs ---------------------------------------------------------


def block_pairs(
    boxes_a: np.ndarray,
    boxes_b: np.ndarray,
    counters: Counters,
    block_cells: int = _BLOCK_CELLS,
) -> tuple[np.ndarray, np.ndarray]:
    """All intersecting ``(row_a, row_b)`` pairs by blocked dense overlap.

    The vectorized nested loop: every pair is tested, but d·n·m float
    comparisons run in the kernel instead of n·m Python iterations.
    """
    n, m = boxes_a.shape[0], boxes_b.shape[0]
    if n == 0 or m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    counters.comparisons += n * m
    rows_per_block = max(1, block_cells // max(m, 1))
    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []
    for start in range(0, n, rows_per_block):
        chunk = boxes_a[start : start + rows_per_block]
        overlap = np.all(
            (chunk[:, None, 0, :] <= boxes_b[None, :, 1, :])
            & (boxes_b[None, :, 0, :] <= chunk[:, None, 1, :]),
            axis=-1,
        )
        ai, bi = np.nonzero(overlap)
        out_a.append(ai + start)
        out_b.append(bi)
    return np.concatenate(out_a), np.concatenate(out_b)


# -- vectorized PBSM -----------------------------------------------------------


def tile_layout(
    hull_lo: np.ndarray, hull_hi: np.ndarray, tiles_per_axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(sides, strides)`` of a uniform tiling of the hull."""
    extents = hull_hi - hull_lo
    sides = np.maximum(extents / tiles_per_axis, 1e-12)
    dims = hull_lo.shape[0]
    strides = np.empty(dims, dtype=np.int64)
    strides[-1] = 1
    for axis in range(dims - 2, -1, -1):
        strides[axis] = strides[axis + 1] * tiles_per_axis
    return sides, strides


def _tile_replicas(
    boxes: np.ndarray,
    hull_lo: np.ndarray,
    sides: np.ndarray,
    strides: np.ndarray,
    tiles_per_axis: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Replicate each box into every tile it overlaps.

    Returns ``(rows, keys)``: the source row of each replica and the linear
    tile key it lands in — the array form of PBSM's partition phase.
    """
    lo_idx = np.clip(
        ((boxes[:, 0, :] - hull_lo) / sides).astype(np.int64), 0, tiles_per_axis - 1
    )
    hi_idx = np.clip(
        ((boxes[:, 1, :] - hull_lo) / sides).astype(np.int64), 0, tiles_per_axis - 1
    )
    spans = hi_idx - lo_idx + 1
    counts = spans.prod(axis=1)
    rows, flat = expand_ranges(np.zeros_like(counts), counts)
    keys = np.zeros(rows.shape[0], dtype=np.int64)
    # Decompose the flat within-window offset into per-axis tile coordinates
    # (row-major, last axis fastest), entirely in integer array arithmetic.
    rep_spans = spans[rows]
    rep_lo = lo_idx[rows]
    for axis in range(boxes.shape[2] - 1, -1, -1):
        coord = rep_lo[:, axis] + flat % rep_spans[:, axis]
        flat //= rep_spans[:, axis]
        keys += coord * strides[axis]
    return rows, keys


def _owning_keys(
    overlap_lo: np.ndarray,
    hull_lo: np.ndarray,
    sides: np.ndarray,
    strides: np.ndarray,
    tiles_per_axis: int,
) -> np.ndarray:
    """Linear key of the tile containing each overlap's lower corner — the
    unique reporter of the standard reference-point dedup."""
    idx = np.clip(
        ((overlap_lo - hull_lo) / sides).astype(np.int64), 0, tiles_per_axis - 1
    )
    return idx @ strides


def pbsm_pairs(
    boxes_a: np.ndarray,
    boxes_b: np.ndarray,
    hull_lo: np.ndarray,
    hull_hi: np.ndarray,
    tiles_per_axis: int,
    counters: Counters,
    slab_pairs: int = _SLAB_PAIRS,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Partition Based Spatial-Merge: ``(row_a, row_b)`` pairs.

    Partition (replicate into tiles), sort replicas by tile, form every
    tile's |A_t| × |B_t| cross product with one ``repeat``/``cumsum``
    expansion, test intersection for the whole slab at once, and keep a pair
    only in the tile owning its overlap's lower corner.  Slabs cap peak
    memory; results are deduplicated by construction, never by hashing.
    """
    sides, strides = tile_layout(hull_lo, hull_hi, tiles_per_axis)
    rows_a, keys_a = _tile_replicas(boxes_a, hull_lo, sides, strides, tiles_per_axis)
    rows_b, keys_b = _tile_replicas(boxes_b, hull_lo, sides, strides, tiles_per_axis)
    counters.cells_probed += int(keys_a.shape[0] + keys_b.shape[0])

    order_a = np.argsort(keys_a, kind="stable")
    order_b = np.argsort(keys_b, kind="stable")
    rows_a, keys_a = rows_a[order_a], keys_a[order_a]
    rows_b, keys_b = rows_b[order_b], keys_b[order_b]

    uniq_a, start_a = np.unique(keys_a, return_index=True)
    uniq_b, start_b = np.unique(keys_b, return_index=True)
    count_a = np.diff(np.append(start_a, keys_a.shape[0]))
    count_b = np.diff(np.append(start_b, keys_b.shape[0]))

    common, ia, ib = np.intersect1d(uniq_a, uniq_b, return_indices=True)
    if common.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ca, cb = count_a[ia], count_b[ib]
    sa, sb = start_a[ia], start_b[ib]
    pair_counts = ca * cb

    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []
    # Slab the common tiles so each materialized cross product stays bounded.
    slab_edges = [0]
    running = 0
    for g, p in enumerate(pair_counts):
        running += int(p)
        if running >= slab_pairs:
            slab_edges.append(g + 1)
            running = 0
    if slab_edges[-1] != common.shape[0]:
        slab_edges.append(common.shape[0])

    for lo_g, hi_g in zip(slab_edges[:-1], slab_edges[1:]):
        g_cb = cb[lo_g:hi_g]
        g_pairs = pair_counts[lo_g:hi_g]
        groups, local = expand_ranges(np.zeros_like(g_pairs), g_pairs)
        total = groups.shape[0]
        if total == 0:
            continue
        i = local // g_cb[groups]
        j = local % g_cb[groups]
        a_rep = sa[lo_g:hi_g][groups] + i
        b_rep = sb[lo_g:hi_g][groups] + j
        ai, bi = rows_a[a_rep], rows_b[b_rep]
        counters.comparisons += total

        la, lb = boxes_a[ai], boxes_b[bi]
        overlap_lo = np.maximum(la[:, 0, :], lb[:, 0, :])
        overlap_hi = np.minimum(la[:, 1, :], lb[:, 1, :])
        intersecting = np.all(overlap_lo <= overlap_hi, axis=1)
        owners = _owning_keys(overlap_lo, hull_lo, sides, strides, tiles_per_axis)
        keep = intersecting & (owners == common[lo_g:hi_g][groups])
        out_a.append(ai[keep])
        out_b.append(bi[keep])

    if not out_a:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(out_a), np.concatenate(out_b)


def replica_tile_pairs(
    eids_a: np.ndarray,
    boxes_a: np.ndarray,
    keys_a: np.ndarray,
    eids_b: np.ndarray,
    boxes_b: np.ndarray,
    keys_b: np.ndarray,
    hull_lo: np.ndarray,
    sides: np.ndarray,
    strides: np.ndarray,
    tiles_per_axis: int,
    counters: Counters,
    slab_pairs: int = _SLAB_PAIRS,
) -> tuple[np.ndarray, np.ndarray]:
    """The PBSM merge phase over pre-gathered, key-sorted replica arrays.

    Where :func:`pbsm_pairs` partitions *and* merges in one call over the
    full input, this kernel is the merge alone: the caller hands it one
    partition's worth of replicas — per-replica ``(eid, box, tile key)``
    with keys sorted ascending — which is exactly what the out-of-core PBSM
    (:mod:`repro.exec.external_join`) reads back from a spill file.  Pairs
    keep the global reference-point dedup: a pair is reported only by the
    tile owning its overlap's lower corner, so partitions never duplicate
    output even though boxes are replicated across tiles *and* partitions.

    Returns ``(ids_a, ids_b)`` element-id arrays (not row indices — the
    original rows are gone once a partition is spilled).
    """
    if eids_a.shape[0] == 0 or eids_b.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    uniq_a, start_a = np.unique(keys_a, return_index=True)
    uniq_b, start_b = np.unique(keys_b, return_index=True)
    count_a = np.diff(np.append(start_a, keys_a.shape[0]))
    count_b = np.diff(np.append(start_b, keys_b.shape[0]))

    common, ia, ib = np.intersect1d(uniq_a, uniq_b, return_indices=True)
    if common.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ca, cb = count_a[ia], count_b[ib]
    sa, sb = start_a[ia], start_b[ib]
    pair_counts = ca * cb

    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []
    slab_edges = [0]
    running = 0
    for g, p in enumerate(pair_counts):
        running += int(p)
        if running >= slab_pairs:
            slab_edges.append(g + 1)
            running = 0
    if slab_edges[-1] != common.shape[0]:
        slab_edges.append(common.shape[0])

    for lo_g, hi_g in zip(slab_edges[:-1], slab_edges[1:]):
        g_cb = cb[lo_g:hi_g]
        g_pairs = pair_counts[lo_g:hi_g]
        groups, local = expand_ranges(np.zeros_like(g_pairs), g_pairs)
        total = groups.shape[0]
        if total == 0:
            continue
        i = local // g_cb[groups]
        j = local % g_cb[groups]
        a_rep = sa[lo_g:hi_g][groups] + i
        b_rep = sb[lo_g:hi_g][groups] + j
        counters.comparisons += total

        la, lb = boxes_a[a_rep], boxes_b[b_rep]
        overlap_lo = np.maximum(la[:, 0, :], lb[:, 0, :])
        overlap_hi = np.minimum(la[:, 1, :], lb[:, 1, :])
        intersecting = np.all(overlap_lo <= overlap_hi, axis=1)
        owners = _owning_keys(overlap_lo, hull_lo, sides, strides, tiles_per_axis)
        keep = intersecting & (owners == common[lo_g:hi_g][groups])
        out_a.append(eids_a[a_rep[keep]])
        out_b.append(eids_b[b_rep[keep]])

    if not out_a:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(out_a), np.concatenate(out_b)


# -- STR-tree carried-set traversal --------------------------------------------


def _box_gap_matrix(probe_boxes: np.ndarray, entry_boxes: np.ndarray) -> np.ndarray:
    """Euclidean gaps between probe boxes and node entries: ``(probes, entries)``.

    The box-join analogue of the batch-kNN traversal's ``_entry_distances``
    point kernel: per-axis gap is ``max(entry.lo - probe.hi,
    probe.lo - entry.hi, 0)``; zero means intersecting (closed intervals).
    """
    gaps = np.maximum(
        np.maximum(
            entry_boxes[None, :, 0, :] - probe_boxes[:, None, 1, :],
            probe_boxes[:, None, 0, :] - entry_boxes[None, :, 1, :],
        ),
        0.0,
    )
    return np.sqrt(np.einsum("ped,ped->pe", gaps, gaps))


def tree_pairs(
    items_a: Sequence[Item],
    probe_boxes: np.ndarray,
    bounds: np.ndarray,
    counters: Counters,
    max_entries: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidates via one carried-set traversal of an STR tree over A.

    ``bounds`` is the per-probe gap budget: 0 for an intersection join, ε
    for a distance join's filter (the box gap lower-bounds the exact
    geometry distance, so ``gap <= ε`` is a complete and *tighter* filter
    than ε-expanded box intersection).  Every node is visited at most once
    per batch, carrying exactly the probes whose bound still reaches its
    MBR — the same pruning discipline as the seeded best-first kNN
    traversal, with the bound fixed per probe instead of shrinking.

    Returns ``(probe_rows, eids)``: for each candidate, the probe row and
    the id of the A element within its bound.
    """
    m = probe_boxes.shape[0]
    if m == 0 or not items_a:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    root, _height, _count = str_pack(list(items_a), max_entries, Node)
    root_node: Node = root  # type: ignore[assignment]
    packed: dict[int, tuple[bool, np.ndarray, object]] = {}

    def expand(node: Node) -> tuple[bool, np.ndarray, object]:
        cached = packed.get(id(node))
        if cached is not None:
            return cached
        boxes = boxes_to_array([box for box, _ in node.entries])
        if node.is_leaf:
            refs: object = np.fromiter(
                (ref for _, ref in node.entries), dtype=np.int64, count=len(node.entries)
            )
        else:
            refs = [child for _, child in node.entries]
        packed[id(node)] = (node.is_leaf, boxes, refs)
        return packed[id(node)]

    out_probes: list[np.ndarray] = []
    out_eids: list[np.ndarray] = []
    stack: list[tuple[Node, np.ndarray]] = [(root_node, np.arange(m, dtype=np.int64))]
    while stack:
        node, carried = stack.pop()
        is_leaf, entry_boxes, refs = expand(node)
        if entry_boxes.shape[0] == 0:
            continue
        gaps = _box_gap_matrix(probe_boxes[carried], entry_boxes)
        within = gaps <= bounds[carried][:, None]
        if is_leaf:
            counters.elem_tests += gaps.size
            counters.comparisons += gaps.size
            rows, cols = np.nonzero(within)
            if rows.shape[0]:
                out_probes.append(carried[rows])
                out_eids.append(refs[cols])  # type: ignore[index]
        else:
            counters.node_tests += gaps.size
            for entry_i, child in enumerate(refs):  # type: ignore[arg-type]
                sub = carried[within[:, entry_i]]
                if sub.shape[0]:
                    counters.pointer_follows += 1
                    stack.append((child, sub))
    if not out_probes:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(out_probes), np.concatenate(out_eids)
