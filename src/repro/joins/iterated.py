"""Iterated spatial self-joins across simulation steps.

Section 4.1 cites Sowell et al., *An Experimental Analysis of Iterated
Spatial Joins in Main Memory*: when a join must be recomputed every time
step, the interesting trade-off is **recompute** (rebuild the partitioning
and join from scratch — the throwaway philosophy) versus **incremental**
(maintain the join result, patching only the pairs whose elements moved).
The paper's own conclusion ("Maintaining a data structure supporting the
spatial join will thus almost always pay off") is exactly what this module
lets benchmarks measure.

:class:`IteratedSelfJoin` maintains the set of intersecting pairs of one
dataset under per-step motion:

* ``strategy="recompute"`` — each step rebuilds a uniform grid and re-runs
  the self-join;
* ``strategy="incremental"`` — the grid absorbs the step's moves (cheap:
  few cell switches under simulation motion), then only the moved elements
  re-probe their neighbourhoods; pairs between unmoved elements are carried
  over untouched.

Both strategies maintain exactly the same pair set (property-tested against
the nested-loop oracle after every step).  All probes — the initial full
join and each step's re-probe set — are issued through a
:class:`~repro.engine.QuerySession` as one batch, so the join rides the
grid's vectorized kernel instead of a per-element ``range_query`` loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.uniform_grid import UniformGrid
from repro.engine import QuerySession
from repro.geometry.aabb import AABB
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters

Move = tuple[int, AABB, AABB]


@dataclass(frozen=True)
class PairDelta:
    """The exact pair-set change produced by one :meth:`IteratedSelfJoin.step`.

    ``added`` and ``removed`` are disjoint sets of ``(low id, high id)``
    tuples; folding every step's delta into the initial pair set reproduces
    :attr:`IteratedSelfJoin.pairs` — the contract the continuous-query tier
    (:mod:`repro.continuous`) builds on.
    """

    added: frozenset
    removed: frozenset

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


class IteratedSelfJoin:
    """Maintains the intersecting-pair set of a moving dataset.

    Parameters
    ----------
    items:
        Initial ``(eid, box)`` state.
    universe:
        Simulation domain for the underlying grid.
    strategy:
        ``"incremental"`` (default) or ``"recompute"``.
    cell_size:
        Grid resolution (analytical-model optimum recommended).
    """

    def __init__(
        self,
        items: Sequence[Item],
        universe: AABB,
        strategy: str = "incremental",
        cell_size: float | None = None,
        counters: Counters | None = None,
    ) -> None:
        if strategy not in ("incremental", "recompute"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        self.strategy = strategy
        self.universe = universe
        self.cell_size = cell_size
        self.counters = counters if counters is not None else Counters()
        self._boxes: dict[int, AABB] = dict(items)
        self._grid = UniformGrid(
            universe=universe, cell_size=cell_size, counters=self.counters
        )
        self._grid.bulk_load(list(self._boxes.items()))
        self._session = QuerySession(self._grid)
        # eid -> set of current partners (symmetric).
        self._partners: dict[int, set[int]] = {eid: set() for eid in self._boxes}
        self._full_join()

    # -- public surface -----------------------------------------------------------

    @property
    def pairs(self) -> set[tuple[int, int]]:
        """The current intersecting pairs, as (low id, high id) tuples."""
        out: set[tuple[int, int]] = set()
        for eid, partners in self._partners.items():
            for other in partners:
                if eid < other:
                    out.add((eid, other))
        return out

    def pair_count(self) -> int:
        return sum(len(p) for p in self._partners.values()) // 2

    def step(self, moves: Sequence[Move]) -> PairDelta:
        """Fold one simulation step's motion into the pair set.

        Returns the step's exact :class:`PairDelta` (pairs that appeared and
        pairs that dissolved), so subscribers can consume the join as a
        delta stream instead of re-reading :attr:`pairs` each step."""
        if self.strategy == "recompute":
            before = self.pairs
            for eid, old_box, new_box in moves:
                if eid not in self._boxes or self._boxes[eid] != old_box:
                    raise KeyError(f"element {eid} with box {old_box} not tracked")
                self._boxes[eid] = new_box
            self._grid = UniformGrid(
                universe=self.universe, cell_size=self.cell_size, counters=self.counters
            )
            self._grid.bulk_load(list(self._boxes.items()))
            self._session = QuerySession(self._grid)
            self._partners = {eid: set() for eid in self._boxes}
            self._full_join()
            after = self.pairs
            return PairDelta(added=frozenset(after - before), removed=frozenset(before - after))

        # Incremental: update the grid first so probes see final positions.
        moved: list[int] = []
        for eid, old_box, new_box in moves:
            if eid not in self._boxes or self._boxes[eid] != old_box:
                raise KeyError(f"element {eid} with box {old_box} not tracked")
            self._grid.update(eid, old_box, new_box)
            self._boxes[eid] = new_box
            moved.append(eid)
        # Retract every pair touching a moved element, then re-probe the
        # whole moved set as one session batch.  Only pairs touching the
        # moved set can change, so the delta is computed from that
        # neighbourhood alone — never from a full pair-set diff.
        before_local: set[tuple[int, int]] = set()
        for eid in moved:
            for other in self._partners[eid]:
                before_local.add((eid, other) if eid < other else (other, eid))
                self._partners[other].discard(eid)
            self._partners[eid] = set()
        self._probe(moved)
        after_local: set[tuple[int, int]] = set()
        for eid in moved:
            for other in self._partners[eid]:
                after_local.add((eid, other) if eid < other else (other, eid))
        return PairDelta(
            added=frozenset(after_local - before_local),
            removed=frozenset(before_local - after_local),
        )

    # -- internals ---------------------------------------------------------------------

    def _probe(self, eids: Sequence[int]) -> None:
        """Batch-probe ``eids``' boxes and fold the hits into the pair set."""
        if not eids:
            return
        hits = self._session.range_query([self._boxes[eid] for eid in eids])
        for eid, others in zip(eids, hits):
            partners = self._partners[eid]
            for other in others:
                if other == eid:
                    continue
                partners.add(other)
                self._partners[other].add(eid)

    def _full_join(self) -> None:
        self._probe(list(self._boxes))
