"""Shared deprecation nudge for the pre-session join free functions."""

from __future__ import annotations

import warnings


def deprecated_join(function: str, strategy: str) -> None:
    warnings.warn(
        f"{function}() is deprecated; submit a JoinSpec through "
        f"repro.joins.JoinSession (strategy {strategy!r} in JOIN_REGISTRY).",
        DeprecationWarning,
        stacklevel=3,
    )
