"""Spatial join algorithms surveyed in Sections 3.2/3.3 and 4.3.

All joins share one contract: given two item lists (``(eid, AABB)`` pairs),
return the list of id pairs whose boxes intersect.  Every algorithm counts
its pairwise ``comparisons`` in the shared counters — the currency the paper
uses to argue about in-memory joins ("the number of comparisons (the major
bulk of work for in-memory spatial joins)").

* :func:`~repro.joins.nested_loop.nested_loop_join` — the O(n·m) baseline;
* :func:`~repro.joins.sweepline.sweepline_join` — sort + plane sweep; "does
  not ensure that only spatially close objects are compared" in y/z;
* :func:`~repro.joins.pbsm.pbsm_join` — Partition Based Spatial-Merge
  (Patel & DeWitt): uniform tiles + per-tile join + reference-point dedup;
* :func:`~repro.joins.touch.touch_join` — TOUCH (Nobari et al., SIGMOD'13):
  hierarchical data-oriented partitioning, assign-and-probe;
* :func:`~repro.joins.grid_join.grid_join` — the paper's §4.3 research
  direction, including the tiny-cell "intersect by definition" variant;
* :mod:`~repro.joins.synapse` — the neuroscience application: distance join
  over capsule morphologies to place synapses.
"""

from repro.joins.nested_loop import nested_loop_join, nested_loop_self_join
from repro.joins.sweepline import sweepline_join
from repro.joins.pbsm import pbsm_join
from repro.joins.touch import touch_join
from repro.joins.grid_join import grid_join, tiny_cell_self_join
from repro.joins.synapse import SynapseDetector, distance_join
from repro.joins.iterated import IteratedSelfJoin

__all__ = [
    "nested_loop_join",
    "nested_loop_self_join",
    "sweepline_join",
    "pbsm_join",
    "touch_join",
    "grid_join",
    "tiny_cell_self_join",
    "distance_join",
    "SynapseDetector",
    "IteratedSelfJoin",
]
