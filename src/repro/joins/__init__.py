"""The spatial-join subsystem: specs, planner, strategies, kernels.

Spatial joins dominate the paper's workloads — synapse detection (§2.2),
per-step collision self-joins, mesh intersection — and every algorithm it
surveys (§3.2/3.3/4.3) lives here behind one architecture, mirroring the
query side's session design:

``JoinSpec → JoinSession (planner) → JoinStrategy → kernels``

* **Specs** (:mod:`repro.joins.spec`) describe *what* to join:
  :class:`SelfJoinSpec`, :class:`PairJoinSpec`, :class:`DistanceJoinSpec`,
  :class:`SynapseJoinSpec` — first-class values with ids and tags.
* **The session** (:mod:`repro.joins.session`) plans and runs them:
  deferred :class:`JoinHandle` results, a size-based planner over the
  strategy registry, pluggable executors
  (:class:`InlineJoinExecutor` / :class:`ShardedJoinExecutor` — the latter
  partitions the probe side across a fork pool with structural cross-shard
  dedup), vectorized refinement, shared :class:`JoinStats`.
* **Strategies** (:mod:`repro.joins.strategies`) are the algorithms, all
  registered in :data:`JOIN_REGISTRY` and all returning the exact
  nested-loop pair set: ``nested_loop``, ``block_nested``, ``sweepline``,
  ``grid`` / ``grid_scalar``, ``pbsm`` / ``pbsm_scalar``, ``tree``,
  ``touch``, ``tiny_cell``.
* **Kernels** (:mod:`repro.joins.kernels`,
  :mod:`repro.geometry.refine`) are the NumPy hot paths: blocked all-pairs
  overlap, fully vectorized PBSM tiling, the carried-set STR-tree
  traversal (the batch-kNN pruning discipline with per-probe ε bounds),
  and array-wide capsule/box refinement.

:class:`IteratedSelfJoin` maintains a self-join under per-step motion
(Section 4.1's recompute-vs-incremental trade-off).  The pre-session free
functions (``nested_loop_join``, ``grid_join``, ``pbsm_join``, ...) remain
as deprecation shims.
"""

from repro.joins.spec import (
    DistanceJoinSpec,
    JoinSpec,
    JoinStats,
    PairJoinSpec,
    SelfJoinSpec,
    Synapse,
    SynapseJoinSpec,
)
from repro.joins.strategies import (
    JOIN_REGISTRY,
    CallableJoin,
    JoinStrategy,
    available_join_strategies,
    make_join_strategy,
)
from repro.joins.session import (
    InlineJoinExecutor,
    JoinExecutor,
    JoinHandle,
    JoinPlan,
    JoinSession,
    ShardedJoinExecutor,
)
from repro.joins.iterated import IteratedSelfJoin, PairDelta
from repro.joins.synapse import SynapseDetector, distance_join

# Deprecated free-function shims (see the per-module docstrings).
from repro.joins.nested_loop import nested_loop_join, nested_loop_self_join
from repro.joins.sweepline import sweepline_join
from repro.joins.pbsm import pbsm_join
from repro.joins.touch import touch_join
from repro.joins.grid_join import grid_join, tiny_cell_self_join

__all__ = [
    # the session architecture
    "JoinSession",
    "JoinHandle",
    "JoinPlan",
    "JoinSpec",
    "SelfJoinSpec",
    "PairJoinSpec",
    "DistanceJoinSpec",
    "SynapseJoinSpec",
    "JoinStats",
    "JoinExecutor",
    "InlineJoinExecutor",
    "ShardedJoinExecutor",
    "JoinStrategy",
    "JOIN_REGISTRY",
    "available_join_strategies",
    "make_join_strategy",
    "CallableJoin",
    # applications
    "Synapse",
    "SynapseDetector",
    "IteratedSelfJoin",
    "PairDelta",
    # deprecated shims
    "nested_loop_join",
    "nested_loop_self_join",
    "sweepline_join",
    "pbsm_join",
    "touch_join",
    "grid_join",
    "tiny_cell_self_join",
    "distance_join",
]
