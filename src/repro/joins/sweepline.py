"""Deprecated free-function surface of the plane-sweep join.

The implementation lives in :class:`repro.joins.strategies.SweeplineJoin`
(registry name ``"sweepline"``, vectorized since the JoinSession redesign);
submit specs through :class:`repro.joins.JoinSession`.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.strategies import SweeplineJoin


def sweepline_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Plane sweep along axis 0 (see :class:`~repro.joins.strategies.SweeplineJoin`)."""
    deprecated_join("sweepline_join", "sweepline")
    return SweeplineJoin().join(items_a, items_b, counters if counters is not None else Counters())
