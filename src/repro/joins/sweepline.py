"""Plane-sweep spatial join.

One of the two algorithms that were "specifically designed for use in
memory" before TOUCH (§3.2).  Both inputs are sorted by their lower x
coordinate; a sweep advances through the union, keeping per-input active
lists of intervals whose x range overlaps the sweep position, and compares
new arrivals against the opposite active list on the remaining dimensions.

The paper's criticism is visible in the counters: pruning is only by x, so
"the sweep line approach does not ensure that only spatially close objects
are compared" — datasets clustered in y/z produce comparison counts far above
the output size, which ``bench_joins.py`` reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters


def sweepline_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Forward plane sweep along axis 0."""
    counters = counters if counters is not None else Counters()
    if not items_a or not items_b:
        return []

    a_sorted = sorted(items_a, key=lambda item: item[1].lo[0])
    b_sorted = sorted(items_b, key=lambda item: item[1].lo[0])
    pairs: list[tuple[int, int]] = []
    i = 0
    j = 0
    while i < len(a_sorted) and j < len(b_sorted):
        if a_sorted[i][1].lo[0] <= b_sorted[j][1].lo[0]:
            eid_a, box_a = a_sorted[i]
            i += 1
            # Scan forward through B while x ranges can still overlap.
            k = j
            while k < len(b_sorted) and b_sorted[k][1].lo[0] <= box_a.hi[0]:
                eid_b, box_b = b_sorted[k]
                k += 1
                counters.comparisons += 1
                if _overlap_from_axis(box_a, box_b, 1):
                    pairs.append((eid_a, eid_b))
        else:
            eid_b, box_b = b_sorted[j]
            j += 1
            k = i
            while k < len(a_sorted) and a_sorted[k][1].lo[0] <= box_b.hi[0]:
                eid_a, box_a = a_sorted[k]
                k += 1
                counters.comparisons += 1
                if _overlap_from_axis(box_a, box_b, 1):
                    pairs.append((eid_a, eid_b))
    return pairs


def _overlap_from_axis(box_a, box_b, start_axis: int) -> bool:
    """Overlap test on the axes the sweep has not already resolved.

    The sweep established overlap on axis 0 (one lower bound lies within the
    other's x range); the remaining axes are tested here.
    """
    for axis in range(start_axis, box_a.dims):
        if box_a.lo[axis] > box_b.hi[axis] or box_b.lo[axis] > box_a.hi[axis]:
            return False
    return True
