"""Nested-loop spatial join: the quadratic baseline and correctness oracle.

"Not using any index structure results in a nested loop join with n²
comparisons" (§4.3).  Every other join in the package is property-tested
against this one.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters


def nested_loop_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """All ``(a, b)`` id pairs with intersecting boxes, by brute force."""
    counters = counters if counters is not None else Counters()
    pairs: list[tuple[int, int]] = []
    for eid_a, box_a in items_a:
        for eid_b, box_b in items_b:
            counters.comparisons += 1
            if box_a.intersects(box_b):
                pairs.append((eid_a, eid_b))
    return pairs


def nested_loop_self_join(
    items: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """All unordered intersecting pairs within one dataset (a < b by id).

    This is the paper's collision-detection use: "the entire model needs to
    be spatially joined with itself at every simulation step".
    """
    counters = counters if counters is not None else Counters()
    pairs: list[tuple[int, int]] = []
    n = len(items)
    for i in range(n):
        eid_a, box_a = items[i]
        for j in range(i + 1, n):
            eid_b, box_b = items[j]
            counters.comparisons += 1
            if box_a.intersects(box_b):
                pair = (eid_a, eid_b) if eid_a < eid_b else (eid_b, eid_a)
                pairs.append(pair)
    return pairs
