"""Deprecated free-function surface of the nested-loop join.

The implementation lives in
:class:`repro.joins.strategies.NestedLoopJoin` (registry name
``"nested_loop"``); submit specs through :class:`repro.joins.JoinSession`.
These shims keep the pre-session call sites working.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.strategies import NestedLoopJoin


def nested_loop_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """All ``(a, b)`` id pairs with intersecting boxes, by brute force."""
    deprecated_join("nested_loop_join", "nested_loop")
    return NestedLoopJoin().join(items_a, items_b, counters if counters is not None else Counters())


def nested_loop_self_join(
    items: Sequence[Item],
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """All unordered intersecting pairs within one dataset (a < b by id)."""
    deprecated_join("nested_loop_self_join", "nested_loop")
    return NestedLoopJoin().self_join(items, counters if counters is not None else Counters())
