"""Deprecated free-function surface of the TOUCH join.

The implementation lives in :class:`repro.joins.strategies.TouchJoin`
(registry name ``"touch"``); submit specs through
:class:`repro.joins.JoinSession`.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.strategies import TouchJoin


def touch_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    max_entries: int = 16,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Join A and B via hierarchical assignment over an STR tree on A."""
    deprecated_join("touch_join", "touch")
    return TouchJoin(max_entries=max_entries).join(
        items_a, items_b, counters if counters is not None else Counters()
    )
