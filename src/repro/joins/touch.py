"""TOUCH: in-memory spatial join by hierarchical data-oriented partitioning
(Nobari, Tauheed, Heinis, Karras, Bressan, Ailamaki — SIGMOD'13).

The authors' own pre-paper join, cited in §3.2 as outperforming both the
nested loop and the sweep line in memory.  The algorithm:

1. bulk-build an R-tree-style hierarchy over dataset A (data-oriented
   partitioning — the "costly ... partitioning & indexing step prior to the
   join" the paper wants grids to replace);
2. *assign* each element of B to the **lowest** tree node whose MBR contains
   its box (elements spanning several children stick at the parent);
3. *probe*: for every node, join its assigned B bucket against all A
   elements stored in the node's subtree — spatially distant pairs never
   meet, because containment stopped them at disjoint branches.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.indexes.bulkload import str_pack
from repro.indexes.rtree import Node
from repro.instrumentation.counters import Counters


def touch_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    max_entries: int = 16,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Join A and B via hierarchical assignment over an STR tree on A."""
    counters = counters if counters is not None else Counters()
    if not items_a or not items_b:
        return []

    root, _height, _count = str_pack(list(items_a), max_entries, Node)
    root_node: Node = root  # type: ignore[assignment]
    buckets: dict[int, list[Item]] = {}

    for eid_b, box_b in items_b:
        # Descend while exactly one child MBR intersects the element: only
        # then is the whole candidate set guaranteed to be in one subtree.
        # Zero intersecting children means no A element can match — drop.
        node = root_node
        placed = True
        while not node.is_leaf:
            hits: list[Node] = []
            for entry_box, child in node.entries:
                counters.node_tests += 1
                if entry_box.intersects(box_b):
                    hits.append(child)  # type: ignore[arg-type]
                    if len(hits) > 1:
                        break
            if not hits:
                placed = False
                break
            if len(hits) > 1:
                break
            node = hits[0]
        if placed:
            buckets.setdefault(id(node), []).append((eid_b, box_b))

    # Cache each node's subtree A-items lazily during one post-order pass.
    pairs: list[tuple[int, int]] = []
    _probe(root_node, [], buckets, pairs, counters)
    return pairs


def _probe(
    node: Node,
    ancestors_buckets: list[list[Item]],
    buckets: dict[int, list[Item]],
    pairs: list[tuple[int, int]],
    counters: Counters,
) -> None:
    """Depth-first: join every A leaf item against the B buckets assigned to
    the leaf's ancestors (and itself)."""
    own = buckets.get(id(node))
    if own:
        ancestors_buckets = ancestors_buckets + [own]
    if node.is_leaf:
        if ancestors_buckets:
            for box_entry in node.entries:
                box_a, eid_a = box_entry[0], box_entry[1]
                for bucket in ancestors_buckets:
                    for eid_b, box_b in bucket:
                        counters.comparisons += 1
                        if box_a.intersects(box_b):
                            pairs.append((eid_a, eid_b))
        return
    for entry_box, child in node.entries:
        # Prune: a subtree can only match buckets overlapping its MBR; the
        # per-item tests below handle exactness, this is a fast skip.
        _probe(child, ancestors_buckets, buckets, pairs, counters)  # type: ignore[arg-type]
