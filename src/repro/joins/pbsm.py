"""Deprecated free-function surface of the PBSM join.

The implementation lives in :class:`repro.joins.strategies.PBSMJoin`
(registry name ``"pbsm"``, vectorized since the JoinSession redesign; the
dict-of-buckets baseline remains as ``"pbsm_scalar"``); submit specs
through :class:`repro.joins.JoinSession`.
"""

from __future__ import annotations

from typing import Sequence

from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.strategies import PBSMJoin


def pbsm_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    tiles_per_axis: int | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Grid-partitioned join with reference-point deduplication."""
    deprecated_join("pbsm_join", "pbsm")
    return PBSMJoin(tiles_per_axis=tiles_per_axis).join(
        items_a, items_b, counters if counters is not None else Counters()
    )
