"""Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD'96).

Both inputs are partitioned into the tiles of a uniform grid (elements are
replicated into every tile they overlap); each tile is then joined locally.
Duplicate pairs from replication are suppressed with the standard
*reference-point* method: a pair is reported only by the tile containing the
lower corner of the two boxes' intersection.

The paper recommends exactly this shape for memory: "An approach based on a
grid (similar to PBSM) optimized for memory may not necessarily speed up the
join, but will certainly speed up the preprocessing/indexing and thus the
overall join" (§3.3) — partitioning is one linear pass, no tree build.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters


def pbsm_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    tiles_per_axis: int | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Grid-partitioned join with reference-point deduplication.

    ``tiles_per_axis`` defaults to a density heuristic targeting a few
    elements of each input per tile.
    """
    counters = counters if counters is not None else Counters()
    if not items_a or not items_b:
        return []

    hull = union_all(box for _, box in items_a).union(
        union_all(box for _, box in items_b)
    )
    dims = hull.dims
    if tiles_per_axis is None:
        target_tiles = max((len(items_a) + len(items_b)) / 4.0, 1.0)
        tiles_per_axis = max(1, int(round(target_tiles ** (1.0 / dims))))

    sides = tuple(
        max(extent / tiles_per_axis, 1e-12) for extent in hull.extents()
    )

    def tile_window(box: AABB) -> tuple[tuple[int, ...], tuple[int, ...]]:
        lo = []
        hi = []
        for axis in range(dims):
            lo_idx = int((box.lo[axis] - hull.lo[axis]) / sides[axis])
            hi_idx = int((box.hi[axis] - hull.lo[axis]) / sides[axis])
            lo.append(max(0, min(lo_idx, tiles_per_axis - 1)))
            hi.append(max(0, min(hi_idx, tiles_per_axis - 1)))
        return tuple(lo), tuple(hi)

    tiles_a: dict[tuple[int, ...], list[Item]] = {}
    tiles_b: dict[tuple[int, ...], list[Item]] = {}
    for tiles, items in ((tiles_a, items_a), (tiles_b, items_b)):
        for eid, box in items:
            lo, hi = tile_window(box)
            for key in _window_keys(lo, hi):
                tiles.setdefault(key, []).append((eid, box))

    pairs: list[tuple[int, int]] = []
    for key, bucket_a in tiles_a.items():
        bucket_b = tiles_b.get(key)
        if not bucket_b:
            continue
        for eid_a, box_a in bucket_a:
            for eid_b, box_b in bucket_b:
                counters.comparisons += 1
                overlap = box_a.intersection(box_b)
                if overlap is None:
                    continue
                if _owning_tile(overlap, hull, sides, tiles_per_axis) == key:
                    pairs.append((eid_a, eid_b))
    return pairs


def _owning_tile(
    overlap: AABB,
    hull: AABB,
    sides: tuple[float, ...],
    tiles_per_axis: int,
) -> tuple[int, ...]:
    """The tile containing the overlap's lower corner — the unique reporter."""
    key = []
    for axis in range(hull.dims):
        idx = int((overlap.lo[axis] - hull.lo[axis]) / sides[axis])
        key.append(max(0, min(idx, tiles_per_axis - 1)))
    return tuple(key)


def _window_keys(lo: tuple[int, ...], hi: tuple[int, ...]):
    if len(lo) == 1:
        for i in range(lo[0], hi[0] + 1):
            yield (i,)
        return
    for i in range(lo[0], hi[0] + 1):
        for tail in _window_keys(lo[1:], hi[1:]):
            yield (i, *tail)
