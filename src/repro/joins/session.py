"""JoinSession: the declarative front door for every spatial join.

The query side got this treatment in PR 3 (:mod:`repro.engine.session`);
this module is the join counterpart, completing the session architecture:

* Joins are **first-class values** — :class:`~repro.joins.spec.SelfJoinSpec`,
  :class:`~repro.joins.spec.PairJoinSpec`,
  :class:`~repro.joins.spec.DistanceJoinSpec` and
  :class:`~repro.joins.spec.SynapseJoinSpec` describe *what* to join;
* ``session.submit(spec)`` returns a deferred :class:`JoinHandle`
  (flush-on-read, exactly like query handles); ``session.run(spec)`` is the
  immediate form;
* a small **planner** picks the strategy per spec — tiny inputs run the
  scalar nested loop (partitioning set-up would dominate), everything else
  the vectorized grid join — overridable by pinning a ``strategy`` or
  supplying a ``policy`` callable, with every algorithm in
  :data:`~repro.joins.strategies.JOIN_REGISTRY` interchangeable;
* **executors** own *where* the filter phase runs:
  :class:`InlineJoinExecutor` in-process,
  :class:`ShardedJoinExecutor` across a fork pool partitioning the probe
  side.  Cross-shard deduplication is structural, not hash-based: each
  worker joins the full build side against its probe chunk and reports an
  unordered pair only when its probe element is the pair's maximum id, so
  every pair is emitted by exactly one shard;
* **refinement** (the exact-geometry phase of distance and synapse joins)
  runs on the vectorized pair kernels of :mod:`repro.geometry.refine` —
  one array expression over all candidates instead of a Python call per
  pair.

Accounting flows into one shared :class:`~repro.joins.spec.JoinStats`
(candidates / refined / result pairs / comparisons plus strategy- and
executor-routing maps), which
:func:`repro.analysis.session_report.join_report` renders next to the query
session's telemetry.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.session import _fork_is_safe
from repro.exec.budget import MemoryBudget, pbsm_working_set_bytes
from repro.obs import MetricsRegistry, capture_worker, ingest_telemetry
from repro.obs import propagation_context as _obs_context
from repro.obs import span as _span
from repro.exec.external_join import SpillPBSMJoin, spill_page_size
from repro.exec.spill import SpillManager
from repro.geometry.refine import batch_box_gaps, batch_capsule_gaps, pack_segments
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins import kernels
from repro.joins.spec import (
    DistanceJoinSpec,
    JoinSpec,
    JoinStats,
    PairJoinSpec,
    SelfJoinSpec,
    Synapse,
    SynapseJoinSpec,
    apposition_point,
)
from repro.joins.strategies import (
    JOIN_REGISTRY,
    JoinStrategy,
    Pairs,
    make_join_strategy,
)

# -- deferred results ----------------------------------------------------------


class JoinHandle:
    """A deferred join result, resolved when its session flushes.

    ``result()`` triggers the owning session's flush when still pending
    (flush-on-read).  The value is the spec's natural result: sorted id
    pairs for box/distance joins, :class:`~repro.joins.spec.Synapse` records
    for synapse specs.

    Like query handles, join handles are ``await``-able once an
    :class:`~repro.serving.async_executor.AsyncExecutor` has attached a
    waiter; without one, ``await handle`` degrades to the synchronous
    flush-on-read path.
    """

    __slots__ = ("spec", "tag", "_session", "_value", "_error", "_resolved", "_waiter")

    def __init__(self, session: "JoinSession", spec: JoinSpec) -> None:
        self.spec = spec
        self.tag = spec.tag
        self._session = session
        self._value: Any = None
        self._error: BaseException | None = None
        self._resolved = False
        self._waiter: Any = None  # asyncio.Future, attached by AsyncExecutor

    @property
    def resolved(self) -> bool:
        return self._resolved

    def result(self) -> Any:
        if not self._resolved:
            try:
                self._session.flush()
            except Exception:
                # Mirror ResultHandle: a read only reports what happened to
                # its own submission; cross-spec errors surface on explicit
                # flush().
                if not self._resolved:
                    raise
        if not self._resolved:
            raise RuntimeError("flush did not settle this handle")
        if self._error is not None:
            raise self._error
        return self._value

    def __await__(self):
        if not self._resolved and self._waiter is not None:
            yield from self._waiter.__await__()
        return self.result()

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._resolved = True
        self._session = None

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._resolved = True
        self._session = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self._resolved else "pending"
        return f"<JoinHandle {state} spec={self.spec!r}>"


# -- executors -----------------------------------------------------------------


class JoinExecutor(ABC):
    """Runs one planned filter phase; interchangeable like query executors."""

    name: str = "executor"

    @abstractmethod
    def self_pairs(self, strategy: JoinStrategy, items: Sequence[Item], counters: Counters) -> Pairs:
        """Unordered intersecting pairs (``a < b``), each exactly once."""

    @abstractmethod
    def pair_pairs(
        self,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        items_b: Sequence[Item],
        counters: Counters,
    ) -> Pairs:
        """Ordered A ⋈ B pairs, each exactly once."""

    @abstractmethod
    def distance_pairs(
        self,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        items_b: Sequence[Item] | None,
        epsilon: float,
        counters: Counters,
    ) -> Pairs:
        """Complete within-ε candidate pairs (unordered when ``items_b`` is None)."""


class InlineJoinExecutor(JoinExecutor):
    """Single-process execution: the strategy runs as called."""

    name = "inline"

    def self_pairs(self, strategy, items, counters):
        return strategy.self_join(items, counters)

    def pair_pairs(self, strategy, items_a, items_b, counters):
        return strategy.join(items_a, items_b, counters)

    def distance_pairs(self, strategy, items_a, items_b, epsilon, counters):
        return strategy.distance_candidates(items_a, items_b, epsilon, counters)


# Worker-side view of (strategy, build items, probe items, epsilon, mode,
# obs_ctx); assigned only inside forked children via the pool initializer,
# so concurrent sessions in the parent never race on it.
_JOIN_SHARD_STATE: tuple | None = None


def _init_join_shard(state) -> None:
    global _JOIN_SHARD_STATE
    _JOIN_SHARD_STATE = state


def _run_join_shard(bounds: tuple[int, int]) -> tuple[Pairs, Counters, dict | None]:
    assert _JOIN_SHARD_STATE is not None, "join shard worker started without state"
    strategy, items_a, probes, epsilon, mode, obs_ctx = _JOIN_SHARD_STATE
    chunk = probes[bounds[0] : bounds[1]]
    counters = Counters()
    with capture_worker("join_shard", obs_ctx, mode=mode, counters=counters) as cap:
        if mode == "pair":
            pairs = strategy.join(items_a, chunk, counters)
        elif mode == "self":
            # Direct self-join sharding: the full set arrives sorted by id and
            # chunks are contiguous, so this shard's probes can only form new
            # pairs with the id-*prefix* ending at the chunk — joining against
            # the whole set (the old binary expansion) would test every pair
            # from both sides.  Reporter rule unchanged: the shard holding the
            # pair's larger id emits it, so no hashing, no double counting.
            pairs = [(a, b) for a, b in strategy.join(items_a[: bounds[1]], chunk, counters) if a < b]
        elif mode == "distance_pair":
            pairs = strategy.distance_candidates(items_a, chunk, epsilon, counters)
        elif mode == "distance_self":
            pairs = [
                (a, b)
                for a, b in strategy.distance_candidates(
                    items_a[: bounds[1]], chunk, epsilon, counters
                )
                if a < b
            ]
        else:  # pragma: no cover - executor only emits the four modes
            raise ValueError(f"unknown join shard mode: {mode!r}")
        cap.set_attr("pairs", len(pairs))
    return pairs, counters, cap.telemetry


class ShardedJoinExecutor(JoinExecutor):
    """Partitions the probe side of a join across a fork pool.

    Each worker inherits the build side through ``fork``, runs the planned
    strategy over ``(A, probe chunk)``, and ships back its pairs plus the
    :class:`~repro.instrumentation.counters.Counters` it charged; the parent
    concatenates pairs and merges counters.  Self (and distance-self) joins
    are sharded *directly*: the set is sorted by id, chunks are contiguous,
    and each worker joins its chunk against only the id-prefix ending at
    that chunk, keeping pairs whose probe element is the larger id.  Every
    unordered pair still lands in exactly one shard's output (its larger
    id lives in exactly one chunk, and the smaller id is always in that
    chunk's prefix), so cross-shard results need no dedup pass — and the
    summed comparison count is ~(s+1)/2s of the old full-set binary
    expansion instead of 2x the inline self-join.

    Remaining structural price: every worker repeats the strategy's build
    phase over its prefix; sharing the build across workers is a ROADMAP
    follow-up.

    By default the shards run on the persistent
    :class:`~repro.serving.pool.WorkerPool`: both join sides are published
    once as shared-memory ``(eids, boxes)`` tables (the self-join sides in
    id-sorted order, which the prefix rule requires) and each flush ships
    only shard bounds out and pairs back.  Strategies that cannot cross a
    process boundary by pickle (e.g. a closure-carrying ``CallableJoin``)
    use the legacy per-flush fork path instead.

    Parameters
    ----------
    workers:
        Pool size (default: CPU count, capped at 8).
    min_shard:
        Smallest worthwhile probe chunk; smaller jobs (and strategies
        without a binary form, and platforms with no multiprocess path)
        fall back to :class:`InlineJoinExecutor`.
    pool:
        ``None`` (default) — the process-wide
        :func:`~repro.serving.pool.default_pool`; a
        :class:`~repro.serving.pool.WorkerPool` — that pool; ``False`` —
        always the legacy per-flush fork path (the benchmark baseline).
    """

    name = "sharded"

    def __init__(
        self, workers: int | None = None, min_shard: int = 2048, pool: Any = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_shard < 1:
            raise ValueError(f"min_shard must be >= 1, got {min_shard}")
        cpus = multiprocessing.cpu_count()
        self.workers = workers if workers is not None else min(cpus, 8)
        self.min_shard = min_shard
        self.pool = pool
        self._fallback = InlineJoinExecutor()
        self._portable: dict[int, tuple[JoinStrategy, bool]] = {}

    def _resolve_pool(self):
        if self.pool is False:
            return None
        if self.pool is not None:
            return self.pool
        from repro.serving.pool import default_pool

        return default_pool()

    def _strategy_is_portable(self, strategy: JoinStrategy) -> bool:
        """Can ``strategy`` ride a task message to a pool worker?

        The legacy fork path never pickles the strategy, so closure-carrying
        strategies worked there; probe once per instance and route the
        unpicklable ones back through fork.
        """
        cached = self._portable.get(id(strategy))
        if cached is not None and cached[0] is strategy:
            return cached[1]
        try:
            pickle.dumps(strategy)
            portable = True
        except Exception:
            portable = False
        self._portable[id(strategy)] = (strategy, portable)
        return portable

    def _run_pooled(
        self,
        pool,
        mode: str,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        probes: Sequence[Item],
        epsilon: float,
        counters: Counters,
        shards: int,
    ) -> Pairs:
        if mode in ("self", "distance_self"):
            build = chunk_side = pool.ensure_items(probes, sort_by_id=True)
        else:
            build = pool.ensure_items(items_a)
            chunk_side = pool.ensure_items(probes)
        parts = pool.run_join_shards(strategy, mode, build, chunk_side, epsilon, shards)
        pairs: Pairs = []
        for shard_pairs, shard_counters in parts:
            pairs.extend(shard_pairs)
            counters.merge(shard_counters)
        return pairs

    def _run_inline(
        self,
        mode: str,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        probes: Sequence[Item],
        epsilon: float,
        counters: Counters,
    ) -> Pairs:
        if mode == "pair":
            return self._fallback.pair_pairs(strategy, items_a, probes, counters)
        if mode == "self":
            return self._fallback.self_pairs(strategy, probes, counters)
        if mode == "distance_pair":
            return self._fallback.distance_pairs(strategy, items_a, probes, epsilon, counters)
        return self._fallback.distance_pairs(strategy, probes, None, epsilon, counters)

    def _run_tile_runs(
        self,
        mode: str,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        probes: Sequence[Item],
        epsilon: float,
        counters: Counters,
    ) -> Pairs:
        """The ``tile_runs`` shard protocol (``pbsm_spill``).

        The parent partitions once (histogram + gather/spill), then hands
        workers *tile runs* — spilled ``(eids, boxes, keys)`` segment ranges
        exported as :class:`~repro.exec.spill.MappedRun` descriptors — to
        merge against their own read-only mapping of the spill file.  A tile
        lives in exactly one run and the reference-point dedup is global, so
        per-run results are disjoint and concatenate to the exact inline
        answer, in the same order.  Self and distance modes reduce to the
        binary plan exactly as the strategy's own defaults do (join the set
        against itself and keep ``a < b``; expand boxes by ε/2).
        """
        if mode == "pair":
            build, probe_side = items_a, probes
        elif mode == "self":
            build = probe_side = probes
        elif mode == "distance_pair":
            build = [(eid, box.expanded(epsilon / 2.0)) for eid, box in items_a]
            probe_side = [(eid, box.expanded(epsilon / 2.0)) for eid, box in probes]
        else:  # distance_self
            build = probe_side = [
                (eid, box.expanded(epsilon / 2.0)) for eid, box in probes
            ]
        self_mode = mode in ("self", "distance_self")

        plan = strategy.plan_tile_runs(build, probe_side, counters)
        if plan is None:
            # The join would not spill — the inline strategy is both exact
            # and faster than shipping a single resident run anywhere.
            return self._run_inline(mode, strategy, items_a, probes, epsilon, counters)
        try:
            parts = None
            pool = self._resolve_pool()
            if pool is not None:
                try:
                    tasks = plan.run_tasks()
                    parts = pool.run_tile_runs(tasks)
                    counters.tile_runs_dispatched += len(tasks)
                except Exception:
                    # Pool-infrastructure failure: the inline merge below
                    # reproduces any genuine join error.
                    parts = None
            if parts is not None:
                id_arrays = []
                for ids_a, ids_b, worker_counters in parts:
                    counters.merge(worker_counters)
                    id_arrays.append((ids_a, ids_b))
            else:
                id_arrays = [
                    plan.merge_inline(run, counters) for run in range(plan.runs)
                ]
        finally:
            plan.release()
        pairs: Pairs = []
        for ids_a, ids_b in id_arrays:
            pairs.extend(zip(ids_a.tolist(), ids_b.tolist()))
        if self_mode:
            pairs = [(a, b) for a, b in pairs if a < b]
        return pairs

    def _run(
        self,
        mode: str,
        strategy: JoinStrategy,
        items_a: Sequence[Item],
        probes: Sequence[Item],
        epsilon: float,
        counters: Counters,
    ) -> Pairs:
        # Custom shard protocols come first: the spill join must never take
        # the generic fork/pool paths (forked children would duplicate the
        # partition passes; its contract is parent-partition + mapped runs).
        if getattr(strategy, "shard_protocol", None) == "tile_runs":
            return self._run_tile_runs(mode, strategy, items_a, probes, epsilon, counters)
        shards = min(self.workers, len(probes) // self.min_shard)
        use_pool = shards >= 2 and strategy.binary and strategy.forkable
        if use_pool:
            pool = self._resolve_pool()
            if pool is not None and self._strategy_is_portable(strategy):
                try:
                    return self._run_pooled(
                        pool, mode, strategy, items_a, probes, epsilon, counters, shards
                    )
                except Exception:
                    # Pool-infrastructure failure: the fork/inline paths
                    # below reproduce any genuine join error.
                    pass
        if shards < 2 or not strategy.binary or not strategy.forkable or not _fork_is_safe():
            return self._run_inline(mode, strategy, items_a, probes, epsilon, counters)

        if mode in ("self", "distance_self"):
            # Direct self-join sharding needs id-contiguous chunks: worker k
            # joins chunk k against the sorted prefix items[:end_k].
            ordered = sorted(probes, key=lambda item: item[0])
            items_a = probes = ordered

        edges = np.linspace(0, len(probes), shards + 1).astype(int)
        state = (strategy, items_a, probes, epsilon, mode, _obs_context())
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=shards, initializer=_init_join_shard, initargs=(state,)) as pool:
            parts = pool.map(_run_join_shard, list(zip(edges[:-1], edges[1:])))
        pairs: Pairs = []
        for shard_pairs, shard_counters, telemetry in parts:
            pairs.extend(shard_pairs)
            counters.merge(shard_counters)
            ingest_telemetry(telemetry)
        return pairs

    def self_pairs(self, strategy, items, counters):
        return self._run("self", strategy, items, items, 0.0, counters)

    def pair_pairs(self, strategy, items_a, items_b, counters):
        return self._run("pair", strategy, items_a, items_b, 0.0, counters)

    def distance_pairs(self, strategy, items_a, items_b, epsilon, counters):
        if items_b is None:
            return self._run("distance_self", strategy, items_a, items_a, epsilon, counters)
        return self._run("distance_pair", strategy, items_a, items_b, epsilon, counters)


# -- planning ------------------------------------------------------------------

#: Specs whose total input size is at or below this run the scalar nested
#: loop: partitioning/packing set-up would outweigh the quadratic scan.
INLINE_JOIN_CUTOFF = 64

JoinPolicy = Callable[[JoinSpec], JoinStrategy]


@dataclass(frozen=True)
class JoinPlan:
    """One planning decision: which strategy and executor answer a spec."""

    spec: JoinSpec
    strategy: JoinStrategy
    executor: JoinExecutor


def _spec_size(spec: JoinSpec) -> int:
    if spec.kind == "self":
        return len(spec.items)
    if spec.kind == "pair":
        return len(spec.items_a) + len(spec.items_b)
    if spec.kind == "distance":
        return len(spec.items_a) + (len(spec.items_b) if spec.items_b is not None else 0)
    return len(spec.dataset)


# -- the session ---------------------------------------------------------------


class JoinSession:
    """The single public entry point for spatial joins.

    Parameters
    ----------
    strategy:
        Pin every spec to one strategy — a registry name (``"pbsm"``) or a
        :class:`~repro.joins.strategies.JoinStrategy` instance — bypassing
        the planner.
    policy:
        Override the planner with ``(spec) -> JoinStrategy``; ignored when
        ``strategy`` is pinned.
    executor:
        Where the filter phase runs (default in-process; pass
        ``ShardedJoinExecutor(...)`` to partition the probe side).
    counters:
        Shared :class:`~repro.instrumentation.counters.Counters` the
        strategies charge (one is created when omitted).
    inline_cutoff:
        Largest total input the planner routes to the scalar nested loop.
    budget:
        A :class:`~repro.exec.budget.MemoryBudget` (or raw byte limit)
        governing the session's join working sets.  When a spec's estimated
        working set exceeds the limit, the planner routes it to the
        out-of-core ``pbsm_spill`` strategy, which partitions through the
        session's :class:`~repro.exec.spill.SpillManager`; spill traffic
        and the budget high-water surface in :attr:`stats`.
    spill_dir:
        Directory for the session's spill files (default: a private tmpdir
        created on first spill).  Either way, :meth:`close` — or leaving a
        ``with`` block — removes them.

    Deferred and immediate styles, mirroring :class:`~repro.engine.QuerySession`::

        session = JoinSession()
        handle = session.submit(SelfJoinSpec(items))       # deferred
        pairs = handle.result()                            # flush-on-read

        pairs = session.run(PairJoinSpec(items_a, items_b))  # immediate
        synapses = session.run(SynapseJoinSpec(dataset, epsilon=0.05))

        with JoinSession(budget=256 * 1024 * 1024) as session:   # out-of-core
            pairs = session.run(PairJoinSpec(huge_a, huge_b))    # spills
    """

    def __init__(
        self,
        *,
        strategy: str | JoinStrategy | None = None,
        policy: JoinPolicy | None = None,
        executor: JoinExecutor | None = None,
        counters: Counters | None = None,
        inline_cutoff: int = INLINE_JOIN_CUTOFF,
        budget: MemoryBudget | int | None = None,
        spill_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if isinstance(strategy, str):
            strategy = make_join_strategy(strategy)
        self._pinned = strategy
        self._policy = policy
        self._executor = executor if executor is not None else InlineJoinExecutor()
        self.counters = counters if counters is not None else Counters()
        self.inline_cutoff = inline_cutoff
        self.budget = MemoryBudget.coerce(budget)
        # Registry mirrors of the stats fields, cached once per session.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_high_water = self.metrics.gauge("join.queue.high_water")
        self._m_flushes = self.metrics.counter("join.flushes")
        self._m_flush_seconds = self.metrics.histogram("join.flush.seconds")
        self._m_spec_seconds = self.metrics.histogram("join.spec.seconds")
        self._spill_dir = spill_dir
        self._spill: SpillManager | None = None
        self._spill_strategy: SpillPBSMJoin | None = None
        self.stats = JoinStats()
        self._pending: list[tuple[JoinSpec, JoinHandle, JoinStrategy | None]] = []
        self._small = make_join_strategy("nested_loop")
        self._default = make_join_strategy("grid")
        # Concurrency: `_lock` guards the pending list; `_flush_lock`
        # serializes whole flushes so a competing flush-on-read never sees
        # drained-but-unresolved handles (same discipline as QuerySession).
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the session's spill files (idempotent; also runs on
        ``with`` exit).  The session remains usable — a later spill simply
        opens a fresh manager."""
        if self._spill is not None:
            self._spill.close()
            self._spill = None
            self._spill_strategy = None

    def __enter__(self) -> "JoinSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def spill_manager(self) -> SpillManager:
        """The session's spill manager (created on first use)."""
        if self._spill is None or self._spill.closed:
            chunk_budget = self.budget.limit // 4 if self.budget.limit else None
            self._spill = SpillManager(
                dir=self._spill_dir,
                page_size=spill_page_size(chunk_budget),
                counters=self.counters,
            )
            self._spill_strategy = None
        return self._spill

    # -- planning -------------------------------------------------------------

    def estimated_working_set(self, spec: JoinSpec) -> int:
        """Bytes the in-memory partitioned join would hold for ``spec``."""
        if spec.kind == "pair":
            n_a, n_b = len(spec.items_a), len(spec.items_b)
            items = spec.items_a or spec.items_b
        elif spec.kind == "self":
            n_a = n_b = len(spec.items)
            items = spec.items
        elif spec.kind == "distance":
            n_a = len(spec.items_a)
            n_b = len(spec.items_b) if spec.items_b is not None else n_a
            items = spec.items_a
        else:
            n_a = n_b = len(spec.dataset)
            items = spec.dataset.items
        dims = items[0][1].dims if items else 3
        return pbsm_working_set_bytes(n_a, n_b, dims)

    def choose_strategy(self, spec: JoinSpec) -> JoinStrategy:
        """The planner: tiny inputs scan, in-memory sets ride the grid, and
        working sets over the session budget spill.

        A pinned ``strategy`` or a session ``policy`` overrides this
        entirely; any :data:`~repro.joins.strategies.JOIN_REGISTRY` entry is
        a valid answer because all strategies return identical pair sets.
        """
        if self._pinned is not None:
            return self._pinned
        if self._policy is not None:
            return self._policy(spec)
        if _spec_size(spec) <= self.inline_cutoff:
            return self._small
        if self.budget.limit is not None and self.estimated_working_set(spec) > self.budget.limit:
            if self._spill_strategy is None:
                self._spill_strategy = SpillPBSMJoin(
                    budget=self.budget, spill=self.spill_manager()
                )
            return self._spill_strategy
        return self._default

    def plan(self, spec: JoinSpec, strategy: str | JoinStrategy | None = None) -> JoinPlan:
        """The planning decision for ``spec``, without executing it.

        ``strategy`` overrides the planner for this one spec (a registry
        name or an instance) — the per-call analogue of pinning.
        """
        if isinstance(strategy, str):
            strategy = make_join_strategy(strategy)
        if strategy is None:
            strategy = self.choose_strategy(spec)
        return JoinPlan(spec=spec, strategy=strategy, executor=self._executor)

    # -- submission -----------------------------------------------------------

    def submit(self, spec: JoinSpec, strategy: str | JoinStrategy | None = None) -> JoinHandle:
        """Buffer one join spec; returns its deferred handle.

        ``strategy`` pins this one spec to a registry name or instance,
        bypassing the planner for it alone.
        """
        if getattr(spec, "kind", None) not in ("self", "pair", "distance", "synapse"):
            raise TypeError(f"not a join spec: {spec!r}")
        if isinstance(strategy, str):
            strategy = make_join_strategy(strategy)
        handle = JoinHandle(self, spec)
        with self._lock:
            self._pending.append((spec, handle, strategy))
            if len(self._pending) > self.stats.queue_high_water:
                self.stats.queue_high_water = len(self._pending)
            self._m_high_water.track_max(len(self._pending))
        return handle

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush(self) -> None:
        """Execute every buffered spec and resolve the handles.

        A spec whose execution raises settles its handle with that error;
        the other specs still run, and the first error propagates once the
        buffer is settled (the same containment contract as query flushes).

        Flushes are serialized across threads, and a spec that fails while
        the session's spill manager is open releases the spill files
        immediately: a strategy that dies mid-merge leaves partitions
        parked on disk, and deferring cleanup to :meth:`close` would leak
        the tmpdir for the session's whole remaining lifetime.  The next
        over-budget spec simply opens a fresh manager.
        """
        with self._flush_lock:
            with self._lock:
                pending, self._pending = self._pending, []
            if not pending:
                return
            start = time.perf_counter()
            first_error: Exception | None = None
            try:
                with _span("join.flush", specs=len(pending)):
                    for spec, handle, strategy in pending:
                        try:
                            handle._resolve(self._execute(spec, strategy))
                        except Exception as error:
                            handle._fail(error)
                            if self._spill is not None:
                                self.close()
                            if first_error is None:
                                first_error = error
            finally:
                elapsed = time.perf_counter() - start
                self.stats.flush_seconds += elapsed
                self._m_flushes.inc()
                self._m_flush_seconds.observe(elapsed)
            if first_error is not None:
                raise first_error

    def run(self, spec: JoinSpec, strategy: str | JoinStrategy | None = None) -> Any:
        """Submit + flush + read: the immediate surface."""
        return self.submit(spec, strategy).result()

    # -- execution ------------------------------------------------------------

    def _execute(self, spec: JoinSpec, strategy: str | JoinStrategy | None = None) -> Any:
        plan = self.plan(spec, strategy)
        strategy, executor = plan.strategy, plan.executor
        before = self.counters.snapshot()
        spec_start = time.perf_counter()
        with _span(
            "join.spec",
            counters=self.counters,
            kind=spec.kind,
            strategy=strategy.name,
            executor=executor.name,
            size=_spec_size(spec),
        ):
            if spec.kind == "self":
                pairs = executor.self_pairs(strategy, spec.items, self.counters)
                self.stats.candidates += len(pairs)
                result: Any = sorted(pairs)
                self.stats.pairs += len(result)
            elif spec.kind == "pair":
                pairs = executor.pair_pairs(strategy, spec.items_a, spec.items_b, self.counters)
                self.stats.candidates += len(pairs)
                result = sorted(pairs)
                self.stats.pairs += len(result)
            elif spec.kind == "distance":
                result = self._execute_distance(spec, strategy, executor)
            else:
                result = self._execute_synapse(spec, strategy, executor)
        self._m_spec_seconds.observe(time.perf_counter() - spec_start)
        self.metrics.counter(f"join.strategy.{strategy.name}").inc()
        self.metrics.counter(f"join.executor.{executor.name}").inc()
        self.metrics.counter("join.specs").inc()
        self.stats.joins += 1
        delta = self.counters.diff(before)
        self.stats.comparisons += delta.comparisons
        self.stats.tiles_spilled += delta.tiles_spilled
        self.stats.spill_bytes_written += delta.spill_bytes_written
        self.stats.spill_bytes_read += delta.spill_bytes_read
        self.stats.zero_copy_reads += delta.zero_copy_reads
        self.stats.mapped_bytes += delta.mapped_bytes
        self.stats.tile_runs_dispatched += delta.tile_runs_dispatched
        self.stats.budget_high_water = max(
            self.stats.budget_high_water, self.budget.high_water
        )
        self.stats.record_run(strategy.name, executor.name)
        return result

    def _execute_distance(
        self, spec: DistanceJoinSpec, strategy: JoinStrategy, executor: JoinExecutor
    ) -> Pairs:
        candidates = executor.distance_pairs(
            strategy, spec.items_a, None if spec.is_self else spec.items_b, spec.epsilon, self.counters
        )
        self.stats.candidates += len(candidates)
        if not candidates:
            return []
        if spec.refine is not None:
            self.stats.refined += len(candidates)
            self.counters.refine_tests += len(candidates)
            kept = [(a, b) for a, b in candidates if spec.refine(a, b)]
        else:
            # Boxes are the geometry: refine with the vectorized box-gap
            # kernel (one array expression over all candidates).
            kept = self._refine_box_gaps(spec, candidates)
        result = sorted(kept)
        self.stats.pairs += len(result)
        return result

    def _refine_box_gaps(self, spec: DistanceJoinSpec, candidates: Pairs) -> Pairs:
        eids_a, boxes_a = kernels.pack_items(list(spec.items_a))
        if spec.is_self:
            eids_b, boxes_b = eids_a, boxes_a
        else:
            eids_b, boxes_b = kernels.pack_items(list(spec.items_b))
        rows_a = _rows_of(eids_a, np.fromiter((a for a, _ in candidates), np.int64, len(candidates)))
        rows_b = _rows_of(eids_b, np.fromiter((b for _, b in candidates), np.int64, len(candidates)))
        gaps = batch_box_gaps(boxes_a[rows_a], boxes_b[rows_b])
        self.stats.refined += len(candidates)
        self.counters.refine_tests += len(candidates)
        keep = np.nonzero(gaps <= spec.epsilon)[0]
        return [candidates[i] for i in keep.tolist()]

    def _execute_synapse(
        self, spec: SynapseJoinSpec, strategy: JoinStrategy, executor: JoinExecutor
    ) -> list[Synapse]:
        dataset = spec.dataset
        items = dataset.items
        candidates = executor.distance_pairs(strategy, items, None, spec.epsilon, self.counters)
        self.stats.candidates += len(candidates)
        if not candidates:
            return []

        eids = np.fromiter(dataset.capsules.keys(), dtype=np.int64, count=len(dataset.capsules))
        order = np.argsort(eids)
        eids_sorted = eids[order]
        capsules_sorted = [dataset.capsules[int(e)] for e in eids_sorted]
        neurons_sorted = np.fromiter(
            (dataset.neuron_of[int(e)] for e in eids_sorted), dtype=np.int64, count=eids_sorted.shape[0]
        )
        starts, ends, radii = pack_segments(capsules_sorted)

        cand_a = np.fromiter((a for a, _ in candidates), np.int64, len(candidates))
        cand_b = np.fromiter((b for _, b in candidates), np.int64, len(candidates))
        # Registry strategies emit each pair exactly once, but a
        # user-supplied CallableJoin carries no such guarantee — and the
        # synapse contract promises duplicate unordered pairs are excluded.
        cand_pairs = np.unique(np.stack([cand_a, cand_b], axis=1), axis=0)
        cand_a, cand_b = cand_pairs[:, 0], cand_pairs[:, 1]
        rows_a = np.searchsorted(eids_sorted, cand_a)
        rows_b = np.searchsorted(eids_sorted, cand_b)

        # Same-neuron pairs never form synapses — exclude before the (more
        # expensive) exact-geometry refinement.
        cross = neurons_sorted[rows_a] != neurons_sorted[rows_b]
        rows_a, rows_b = rows_a[cross], rows_b[cross]
        if rows_a.shape[0] == 0:
            return []
        gaps = batch_capsule_gaps(
            starts[rows_a], ends[rows_a], radii[rows_a],
            starts[rows_b], ends[rows_b], radii[rows_b],
        )
        self.stats.refined += int(rows_a.shape[0])
        self.counters.refine_tests += int(rows_a.shape[0])
        keep = np.nonzero(gaps <= spec.epsilon)[0]

        synapses: list[Synapse] = []
        for i in keep.tolist():
            ra, rb = int(rows_a[i]), int(rows_b[i])
            ea, eb = int(eids_sorted[ra]), int(eids_sorted[rb])
            if ea > eb:
                ea, eb = eb, ea
                ra, rb = rb, ra
            synapses.append(
                Synapse(
                    segment_a=ea,
                    segment_b=eb,
                    neuron_a=int(neurons_sorted[ra]),
                    neuron_b=int(neurons_sorted[rb]),
                    gap=float(gaps[i]),
                    location=apposition_point(capsules_sorted[ra], capsules_sorted[rb]),
                )
            )
        synapses.sort(key=lambda s: (s.segment_a, s.segment_b))
        self.stats.pairs += len(synapses)
        return synapses


def _rows_of(sorted_or_raw_eids: np.ndarray, wanted: np.ndarray) -> np.ndarray:
    """Row indices of ``wanted`` ids inside an eid array (ids are unique)."""
    order = np.argsort(sorted_or_raw_eids)
    pos = np.searchsorted(sorted_or_raw_eids[order], wanted)
    return order[pos]
