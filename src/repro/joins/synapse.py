"""Synapse detection: the paper's flagship spatial-join application.

"Neuroscientists simulating the co-growth of neurons ... need to perform a
spatial join to determine the location of synapses: wherever two neurons are
within a given distance of each other, they will form a synapse to
communicate with each other." (§2.2, citing Kozloski et al.)

Since the JoinSession redesign the pipeline lives in the session layer:
:class:`~repro.joins.spec.SynapseJoinSpec` describes the predicate, the
planner picks the filter strategy, and refinement runs on the vectorized
capsule kernel (:func:`repro.geometry.refine.batch_capsule_gaps`).
:class:`SynapseDetector` remains the convenient application wrapper;
:func:`distance_join` is a deprecated shim over
:class:`~repro.joins.spec.DistanceJoinSpec`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.datasets.neuroscience import NeuronDataset
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins._shims import deprecated_join
from repro.joins.session import JoinSession
from repro.joins.spec import DistanceJoinSpec, Synapse, SynapseJoinSpec
from repro.joins.strategies import CallableJoin, JoinStrategy

# A box-join algorithm: (items_a, items_b, counters) -> id pairs.
BoxJoin = Callable[[Sequence[Item], Sequence[Item], Counters], list[tuple[int, int]]]

__all__ = ["BoxJoin", "Synapse", "SynapseDetector", "distance_join"]


def distance_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    epsilon: float,
    refine: Callable[[int, int], bool],
    box_join: BoxJoin | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Deprecated shim: pairs within ``epsilon``, via expand-filter-refine.

    Submit a :class:`~repro.joins.spec.DistanceJoinSpec` through
    :class:`~repro.joins.JoinSession` instead.  A supplied ``box_join``
    callable still runs the filter, wrapped as a
    :class:`~repro.joins.strategies.CallableJoin`.
    """
    deprecated_join("distance_join", "pbsm")
    session = JoinSession(counters=counters)
    strategy: JoinStrategy | None = CallableJoin(box_join) if box_join is not None else "pbsm"  # type: ignore[assignment]
    spec = DistanceJoinSpec(items_a, items_b, epsilon, refine)
    return session.run(spec, strategy=strategy)


class SynapseDetector:
    """Within-ε self-join over a neuron dataset's capsule segments.

    A thin application wrapper: builds a
    :class:`~repro.joins.spec.SynapseJoinSpec` and runs it through a
    :class:`~repro.joins.JoinSession` (one is created per detector unless
    supplied, so repeated detections share planner telemetry).

    Parameters
    ----------
    dataset:
        The morphologies.
    epsilon:
        Apposition threshold (µm): surfaces closer than this form a synapse
        candidate.
    session:
        An existing :class:`~repro.joins.JoinSession` to run in (shares
        stats/counters with other joins of the same workload).
    """

    def __init__(
        self,
        dataset: NeuronDataset,
        epsilon: float = 0.05,
        session: JoinSession | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.dataset = dataset
        self.epsilon = epsilon
        self.session = session if session is not None else JoinSession()
        self.counters = self.session.counters

    @property
    def stats(self):
        """The owning session's :class:`~repro.joins.spec.JoinStats`."""
        return self.session.stats

    def detect(
        self,
        box_join: BoxJoin | None = None,
        strategy: str | JoinStrategy | None = None,
    ) -> list[Synapse]:
        """Run the join and materialize synapse records.

        Same-neuron segment pairs are excluded (a neuron does not synapse
        onto itself through adjacent segments), as are duplicate unordered
        pairs.  ``strategy`` pins the filter to a
        :data:`~repro.joins.strategies.JOIN_REGISTRY` entry; the legacy
        ``box_join`` callable is still honoured via
        :class:`~repro.joins.strategies.CallableJoin`.
        """
        if box_join is not None and strategy is not None:
            raise ValueError("pass either box_join or strategy, not both")
        if box_join is not None:
            strategy = CallableJoin(box_join)
        spec = SynapseJoinSpec(self.dataset, epsilon=self.epsilon)
        return self.session.run(spec, strategy=strategy)
