"""Synapse detection: the paper's flagship spatial-join application.

"Neuroscientists simulating the co-growth of neurons ... need to perform a
spatial join to determine the location of synapses: wherever two neurons are
within a given distance of each other, they will form a synapse to
communicate with each other." (§2.2, citing Kozloski et al.)

:func:`distance_join` lifts any box join into a within-ε join (filter on
ε-expanded boxes, refine on exact geometry); :class:`SynapseDetector` applies
it to a :class:`~repro.datasets.neuroscience.NeuronDataset`, excluding
same-neuron pairs and reporting synapse locations at the segments' closest
approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.datasets.neuroscience import NeuronDataset
from repro.geometry.primitives import Capsule
from repro.indexes.base import Item
from repro.instrumentation.counters import Counters
from repro.joins.pbsm import pbsm_join

# A box-join algorithm: (items_a, items_b, counters) -> id pairs.
BoxJoin = Callable[[Sequence[Item], Sequence[Item], Counters], list[tuple[int, int]]]


def distance_join(
    items_a: Sequence[Item],
    items_b: Sequence[Item],
    epsilon: float,
    refine: Callable[[int, int], bool],
    box_join: BoxJoin | None = None,
    counters: Counters | None = None,
) -> list[tuple[int, int]]:
    """Pairs within distance ``epsilon``, via expand-filter-refine.

    ``refine(a, b)`` must decide the exact predicate (e.g. capsule distance
    ≤ ε); the box filter only prunes.  Box expansion by ε/2 per side keeps
    the filter complete: exact distance ≤ ε implies the expanded boxes
    intersect.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    counters = counters if counters is not None else Counters()
    join = box_join if box_join is not None else pbsm_join
    expanded_a = [(eid, box.expanded(epsilon / 2.0)) for eid, box in items_a]
    expanded_b = [(eid, box.expanded(epsilon / 2.0)) for eid, box in items_b]
    candidates = join(expanded_a, expanded_b, counters=counters)
    results = []
    for eid_a, eid_b in candidates:
        counters.refine_tests += 1
        if refine(eid_a, eid_b):
            results.append((eid_a, eid_b))
    return results


@dataclass
class Synapse:
    """A detected apposition between two neuron segments."""

    segment_a: int
    segment_b: int
    neuron_a: int
    neuron_b: int
    gap: float
    location: tuple[float, float, float]


class SynapseDetector:
    """Within-ε self-join over a neuron dataset's capsule segments.

    Parameters
    ----------
    dataset:
        The morphologies.
    epsilon:
        Apposition threshold (µm): surfaces closer than this form a synapse
        candidate.
    """

    def __init__(self, dataset: NeuronDataset, epsilon: float = 0.05) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.dataset = dataset
        self.epsilon = epsilon
        self.counters = Counters()

    def detect(self, box_join: BoxJoin | None = None) -> list[Synapse]:
        """Run the join and materialize synapse records.

        Same-neuron segment pairs are excluded (a neuron does not synapse
        onto itself through adjacent segments), as are duplicate unordered
        pairs.
        """
        items = self.dataset.items
        capsules = self.dataset.capsules
        neuron_of = self.dataset.neuron_of

        def refine(eid_a: int, eid_b: int) -> bool:
            return capsules[eid_a].distance_to(capsules[eid_b]) <= self.epsilon

        raw = distance_join(
            items, items, self.epsilon, refine, box_join=box_join, counters=self.counters
        )
        synapses = []
        seen: set[tuple[int, int]] = set()
        for eid_a, eid_b in raw:
            if eid_a == eid_b:
                continue
            if neuron_of[eid_a] == neuron_of[eid_b]:
                continue
            pair = (min(eid_a, eid_b), max(eid_a, eid_b))
            if pair in seen:
                continue
            seen.add(pair)
            cap_a = capsules[pair[0]]
            cap_b = capsules[pair[1]]
            synapses.append(
                Synapse(
                    segment_a=pair[0],
                    segment_b=pair[1],
                    neuron_a=neuron_of[pair[0]],
                    neuron_b=neuron_of[pair[1]],
                    gap=cap_a.distance_to(cap_b),
                    location=_apposition_point(cap_a, cap_b),
                )
            )
        return synapses


def _apposition_point(a: Capsule, b: Capsule) -> tuple[float, float, float]:
    """Midpoint between the two segment midpoints — a stable, cheap stand-in
    for the exact closest-approach point (sufficient for placement stats)."""
    mid_a = a.axis.midpoint()
    mid_b = b.axis.midpoint()
    return tuple((p + q) / 2.0 for p, q in zip(mid_a, mid_b))  # type: ignore[return-value]
