"""Join specifications: first-class values describing one spatial join.

Mirroring the query side (:mod:`repro.engine.session`, where queries are
``RangeQuery``/``KNNQuery``/``PointQuery`` values), a join is described by a
**spec** and executed by a :class:`~repro.joins.session.JoinSession`:

* :class:`SelfJoinSpec` — all unordered intersecting pairs within one
  dataset (the paper's collision-detection use: "the entire model needs to
  be spatially joined with itself at every simulation step");
* :class:`PairJoinSpec` — A ⋈ B: all ``(a, b)`` pairs with intersecting
  boxes;
* :class:`DistanceJoinSpec` — pairs within distance ε, via the
  expand-filter-refine pipeline (§2.2's synapse join is the motivating
  workload);
* :class:`SynapseJoinSpec` — the full neuroscience predicate: a within-ε
  self-join over a neuron dataset's capsule segments, excluding same-neuron
  pairs, materializing :class:`Synapse` records.

Specs carry a unique ``jid`` and an optional caller ``tag`` so telemetry
(:class:`JoinStats`, :func:`repro.analysis.session_report.join_report`) can
attribute work, exactly as query values do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

from repro.datasets.neuroscience import NeuronDataset
from repro.geometry.primitives import Capsule
from repro.indexes.base import Item

_JIDS = itertools.count()


def _next_jid() -> int:
    return next(_JIDS)


def _as_items(items: Sequence[Item]) -> tuple[Item, ...]:
    return tuple(items)


# -- specs ---------------------------------------------------------------------


@dataclass(frozen=True)
class SelfJoinSpec:
    """All unordered intersecting pairs ``(a, b)`` with ``a < b`` in one set."""

    items: tuple[Item, ...]
    tag: Any = None
    jid: int = field(default_factory=_next_jid, compare=False)

    kind = "self"

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", _as_items(self.items))


@dataclass(frozen=True)
class PairJoinSpec:
    """All ``(a, b)`` pairs of A × B whose boxes intersect."""

    items_a: tuple[Item, ...]
    items_b: tuple[Item, ...]
    tag: Any = None
    jid: int = field(default_factory=_next_jid, compare=False)

    kind = "pair"

    def __post_init__(self) -> None:
        object.__setattr__(self, "items_a", _as_items(self.items_a))
        object.__setattr__(self, "items_b", _as_items(self.items_b))


@dataclass(frozen=True)
class DistanceJoinSpec:
    """Pairs within distance ``epsilon``, by expand-filter-refine.

    ``items_b=None`` makes it a self-join (unordered pairs, ``a < b``).
    ``refine(a, b)`` decides the exact predicate on the ids; when ``None``
    the stored boxes *are* the geometry and the exact predicate is the box
    gap (``AABB.min_distance_to_box``) — refined with the vectorized
    :func:`repro.geometry.refine.batch_box_gaps` kernel.
    """

    items_a: tuple[Item, ...]
    items_b: tuple[Item, ...] | None
    epsilon: float
    refine: Callable[[int, int], bool] | None = None
    tag: Any = None
    jid: int = field(default_factory=_next_jid, compare=False)

    kind = "distance"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        object.__setattr__(self, "items_a", _as_items(self.items_a))
        if self.items_b is not None:
            object.__setattr__(self, "items_b", _as_items(self.items_b))

    @property
    def is_self(self) -> bool:
        return self.items_b is None


@dataclass(frozen=True)
class SynapseJoinSpec:
    """Synapse detection: within-ε capsule self-join over a neuron dataset.

    "wherever two neurons are within a given distance of each other, they
    will form a synapse to communicate with each other" (§2.2).  Same-neuron
    segment pairs are excluded; the result is a list of :class:`Synapse`
    records ordered by ``(segment_a, segment_b)``.
    """

    dataset: NeuronDataset
    epsilon: float = 0.05
    tag: Any = None
    jid: int = field(default_factory=_next_jid, compare=False)

    kind = "synapse"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")


JoinSpec = Union[SelfJoinSpec, PairJoinSpec, DistanceJoinSpec, SynapseJoinSpec]


# -- results -------------------------------------------------------------------


@dataclass
class Synapse:
    """A detected apposition between two neuron segments."""

    segment_a: int
    segment_b: int
    neuron_a: int
    neuron_b: int
    gap: float
    location: tuple[float, float, float]


def apposition_point(a: Capsule, b: Capsule) -> tuple[float, float, float]:
    """Midpoint between the two segment midpoints — a stable, cheap stand-in
    for the exact closest-approach point (sufficient for placement stats)."""
    mid_a = a.axis.midpoint()
    mid_b = b.axis.midpoint()
    return tuple((p + q) / 2.0 for p, q in zip(mid_a, mid_b))  # type: ignore[return-value]


# -- stats ---------------------------------------------------------------------


@dataclass
class JoinStats:
    """Shared accounting across every join strategy and executor.

    ``comparisons`` is the paper's currency ("the number of comparisons (the
    major bulk of work for in-memory spatial joins)"); ``candidates`` counts
    filter-phase output pairs and ``refined`` the exact-geometry tests run on
    them, so the filter/refine split is visible per session.  The routing
    maps mirror :class:`~repro.engine.session.SessionStats.executor_runs` —
    :func:`repro.analysis.session_report.join_report` renders them the same
    way.

    Out-of-core execution adds the spill funnel: ``tiles_spilled`` counts
    tile/partition arrays evicted through the session's
    :class:`~repro.exec.spill.SpillManager`, ``spill_bytes_written`` /
    ``spill_bytes_read`` the logical bytes shipped out and back, and
    ``budget_high_water`` the closest the session's
    :class:`~repro.exec.budget.MemoryBudget` came to its limit (a gauge —
    merges take the max, not the sum).

    The zero-copy storage fields complete the funnel: ``zero_copy_reads`` /
    ``mapped_bytes`` count spill reads served as NumPy views over the
    mmap-backed page store (and the bytes those views exposed without a
    copy), and ``tile_runs_dispatched`` the spilled tile runs handed to
    pool workers as mapped-file descriptors by the sharded executor.
    """

    joins: int = 0
    candidates: int = 0
    pairs: int = 0
    refined: int = 0
    comparisons: int = 0
    tiles_spilled: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    zero_copy_reads: int = 0
    mapped_bytes: int = 0
    tile_runs_dispatched: int = 0
    budget_high_water: int = 0
    strategy_runs: dict[str, int] = field(default_factory=dict)
    executor_runs: dict[str, int] = field(default_factory=dict)
    # Serving telemetry, mirroring SessionStats: the deepest the spec
    # buffer got (a gauge), flush counts per cause, and total wall-clock
    # inside flush().
    queue_high_water: int = 0
    flush_triggers: dict[str, int] = field(default_factory=dict)
    flush_seconds: float = 0.0

    def record_run(self, strategy_name: str, executor_name: str) -> None:
        self.strategy_runs[strategy_name] = self.strategy_runs.get(strategy_name, 0) + 1
        self.executor_runs[executor_name] = self.executor_runs.get(executor_name, 0) + 1

    def record_trigger(self, cause: str) -> None:
        self.flush_triggers[cause] = self.flush_triggers.get(cause, 0) + 1

    def merge(self, other: "JoinStats") -> None:
        self.joins += other.joins
        self.candidates += other.candidates
        self.pairs += other.pairs
        self.refined += other.refined
        self.comparisons += other.comparisons
        self.tiles_spilled += other.tiles_spilled
        self.spill_bytes_written += other.spill_bytes_written
        self.spill_bytes_read += other.spill_bytes_read
        self.zero_copy_reads += other.zero_copy_reads
        self.mapped_bytes += other.mapped_bytes
        self.tile_runs_dispatched += other.tile_runs_dispatched
        self.budget_high_water = max(self.budget_high_water, other.budget_high_water)
        for name, runs in other.strategy_runs.items():
            self.strategy_runs[name] = self.strategy_runs.get(name, 0) + runs
        for name, runs in other.executor_runs.items():
            self.executor_runs[name] = self.executor_runs.get(name, 0) + runs
        self.queue_high_water = max(self.queue_high_water, other.queue_high_water)
        for cause, count in other.flush_triggers.items():
            self.flush_triggers[cause] = self.flush_triggers.get(cause, 0) + count
        self.flush_seconds += other.flush_seconds
