"""repro — spatial data management for the simulation sciences.

A full reproduction of the systems landscape of *Spatial Data Management
Challenges in the Simulation Sciences* (Heinis, Tauheed, Ailamaki — EDBT
2014): the surveyed indexes, the storage substrates behind the paper's
experiments, the simulation workloads that motivate them, and the paper's
proposed grid-based research direction as a working library.

Quick start::

    from repro import AABB, RTree, UniformGrid
    from repro.datasets import uniform_boxes

    items = uniform_boxes(n=10_000, universe=AABB((0, 0, 0), (100, 100, 100)), seed=1)
    index = UniformGrid()
    index.bulk_load(items)
    hits = index.range_query(AABB((10, 10, 10), (20, 20, 20)))

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every reproduced figure.
"""

from repro.geometry import AABB, Capsule, Point, Segment, Sphere
from repro.instrumentation import Counters, DiskCostModel, MemoryCostModel, TimeBreakdown
from repro.indexes import (
    CRTree,
    DiskRTree,
    KDTree,
    LinearScan,
    LooseOctree,
    Octree,
    QuadTree,
    RPlusTree,
    RStarTree,
    RTree,
    SpatialIndex,
)
from repro.core import (
    AdaptiveSimulationIndex,
    GridCostModel,
    MaintenanceCosts,
    MultiResolutionGrid,
    SpatialLSH,
    UniformGrid,
    UpdateEconomics,
    optimal_cell_size,
)
from repro.moving import BottomUpRTree, BufferedRTree, LURTree, ThrowawayIndex, TPRIndex
from repro.mesh import DLS, FLAT, Mesh, Octopus
from repro.sim import TimeSteppedSimulation

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "Point",
    "Sphere",
    "Segment",
    "Capsule",
    "Counters",
    "DiskCostModel",
    "MemoryCostModel",
    "TimeBreakdown",
    "SpatialIndex",
    "LinearScan",
    "RTree",
    "RStarTree",
    "RPlusTree",
    "DiskRTree",
    "CRTree",
    "KDTree",
    "QuadTree",
    "Octree",
    "LooseOctree",
    "UniformGrid",
    "MultiResolutionGrid",
    "SpatialLSH",
    "AdaptiveSimulationIndex",
    "GridCostModel",
    "optimal_cell_size",
    "MaintenanceCosts",
    "UpdateEconomics",
    "LURTree",
    "BufferedRTree",
    "BottomUpRTree",
    "ThrowawayIndex",
    "TPRIndex",
    "Mesh",
    "DLS",
    "Octopus",
    "FLAT",
    "TimeSteppedSimulation",
    "__version__",
]
