"""repro — spatial data management for the simulation sciences.

A full reproduction of the systems landscape of *Spatial Data Management
Challenges in the Simulation Sciences* (Heinis, Tauheed, Ailamaki — EDBT
2014): the surveyed indexes, the storage substrates behind the paper's
experiments, the simulation workloads that motivate them, and the paper's
proposed grid-based research direction as a working library.

Quick start::

    from repro import AABB, RTree, UniformGrid
    from repro.datasets import uniform_boxes

    items = uniform_boxes(n=10_000, universe=AABB((0, 0, 0), (100, 100, 100)), seed=1)
    index = UniformGrid()
    index.bulk_load(items)
    hits = index.range_query(AABB((10, 10, 10), (20, 20, 20)))

Analysis workloads issue queries by the million per simulation step; issue
those through a :class:`QuerySession` — the single public query surface over
every index.  Queries are first-class values with deferred results, and the
session's buffer flushes them through pluggable executors: a cost heuristic
routes each batch to the scalar or vectorized-kernel path, and a sharded
process pool can be pinned per session (``executor=ShardedExecutor(...)``)::

    import numpy as np
    from repro import KNNQuery, QuerySession, RangeQuery

    session = QuerySession(index)

    # declarative: submit query values, read deferred handles (one flush)
    handle = session.submit(RangeQuery(AABB((10, 10, 10), (20, 20, 20))))
    nearest = session.submit(KNNQuery((50.0, 50.0, 50.0), k=8))
    ids, neighbours = handle.result(), nearest.result()

    # array-in / array-out: kernel-speed submission for analysis loops
    boxes = np.random.default_rng(0).uniform(0, 90, size=(10_000, 1, 3))
    boxes = np.concatenate([boxes, boxes + 10.0], axis=1)   # (m, 2, d)
    hit_lists = session.range_query(boxes)                  # one id list per box
    neighbours = session.knn(boxes[:, 0, :], k=8)           # (distance, id) lists
    stabs = session.point_query(boxes[:, 0, :])             # containment per point

Every index supports ``batch_range_query`` / ``batch_knn`` (a naive loop by
default); LinearScan, the grids and the R-tree family override them with
vectorized kernels, and ``supports_batch_kind()`` reports which.  The
``BatchQueryEngine`` remains the kernel layer behind the session's batch
executor.  See ``examples/query_session.py`` for deferred handles and
sharded execution, and ``examples/batch_analysis.py`` for a full batched
synapse-style analysis.  ``INDEX_REGISTRY`` / ``make_index`` enumerate every
shipped index by name.

Spatial joins get the same treatment: describe the join as a spec and
submit it through a :class:`JoinSession`, whose planner routes it to one of
the registered strategies (``JOIN_REGISTRY`` — nested loop, plane sweep,
PBSM, grid, STR-tree traversal, TOUCH, tiny-cell; all returning the exact
nested-loop pair set)::

    from repro import JoinSession, SelfJoinSpec, SynapseJoinSpec

    session = JoinSession()
    pairs = session.run(SelfJoinSpec(items))             # collision self-join
    synapses = session.run(SynapseJoinSpec(dataset, epsilon=0.05))
    pinned = session.run(SelfJoinSpec(items), strategy="pbsm")

See ``examples/join_session.py`` for the planner, deferred handles, the
sharded executor and the telemetry report.

For concurrent clients, the serving tier puts both sessions behind the
event loop: a :class:`ServingSession` batches awaitable requests under a
:class:`FlushPolicy` and executes shards on a persistent shared-memory
:class:`WorkerPool` (indexes cross the process boundary once, as
snapshots — not once per flush)::

    async with ServingSession(index) as serving:
        ids = await serving.range_query(AABB((10, 10, 10), (20, 20, 20)))
        nearest = await serving.knn((50.0, 50.0, 50.0), k=8)
        pairs = await serving.join(SelfJoinSpec(items))

See ``examples/serving.py`` for N concurrent clients over one pool.

Moving datasets — the paper's structural-plasticity workload — get
*continuous* queries: submit a spec once to a :class:`ContinuousSession` and
each ``tick(updates)`` yields an exact delta (results added / removed, pairs
added / dissolved) maintained by a planner that routes per tick between full
recompute, incremental safe-region maintenance, and predictive TPR/LUR
evaluation::

    from repro import ContinuousSession, ContinuousRangeQuery, ContinuousJoinSpec

    session = ContinuousSession(items, universe)
    region = session.subscribe(ContinuousRangeQuery(box))
    contacts = session.subscribe(ContinuousJoinSpec(epsilon=0.05))
    deltas = session.tick(moves)        # {cqid: Delta(added=…, removed=…)}

The serving tier pushes the same streams to async clients
(:class:`ContinuousServing`); see ``examples/continuous_monitoring.py``.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every reproduced figure.
"""

from repro.geometry import AABB, Capsule, Point, Segment, Sphere
from repro.instrumentation import Counters, DiskCostModel, MemoryCostModel, TimeBreakdown
from repro.indexes import (
    CRTree,
    DiskRTree,
    KDTree,
    LinearScan,
    LooseOctree,
    Octree,
    QuadTree,
    RPlusTree,
    RStarTree,
    RTree,
    SpatialIndex,
)
from repro.core import (
    AdaptiveSimulationIndex,
    GridCostModel,
    MaintenanceCosts,
    MultiResolutionGrid,
    SpatialLSH,
    UniformGrid,
    UpdateEconomics,
    optimal_cell_size,
)
from repro.engine import (
    BatchExecutor,
    BatchQueryEngine,
    BatchStats,
    InlineExecutor,
    KNNQuery,
    PointQuery,
    Query,
    QuerySession,
    RangeQuery,
    ResultHandle,
    SessionStats,
    ShardedExecutor,
)
from repro.registry import INDEX_REGISTRY, available_indexes, make_index
from repro.joins import (
    DistanceJoinSpec,
    IteratedSelfJoin,
    JOIN_REGISTRY,
    JoinSession,
    JoinStats,
    JoinStrategy,
    PairJoinSpec,
    SelfJoinSpec,
    ShardedJoinExecutor,
    Synapse,
    SynapseDetector,
    SynapseJoinSpec,
    available_join_strategies,
    make_join_strategy,
)
from repro.exec import (
    MemoryBudget,
    SpillManager,
    external_bulk_load,
    pbsm_working_set_bytes,
)
from repro.serving import (
    AsyncExecutor,
    ContinuousServing,
    DeltaStream,
    FlushPolicy,
    ServingSession,
    WorkerPool,
    default_pool,
    shutdown_default_pool,
)
from repro.continuous import (
    ContinuousJoinSpec,
    ContinuousKNNQuery,
    ContinuousRangeQuery,
    ContinuousSession,
    ContinuousStats,
    Delete,
    Delta,
    Insert,
    Subscription,
)
from repro.approx import (
    SPLIT_RULES,
    SpillTree,
    SplitRule,
    available_split_rules,
    make_split_rule,
)
from repro.moving import BottomUpRTree, BufferedRTree, LURTree, ThrowawayIndex, TPRIndex
from repro.mesh import DLS, FLAT, Mesh, Octopus
from repro.sim import TimeSteppedSimulation
from repro.obs import (
    MetricsRegistry,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    global_registry,
    render_json,
    render_prometheus,
    span,
    tracing_enabled,
)

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "Point",
    "Sphere",
    "Segment",
    "Capsule",
    "Counters",
    "DiskCostModel",
    "MemoryCostModel",
    "TimeBreakdown",
    "SpatialIndex",
    "QuerySession",
    "SessionStats",
    "Query",
    "RangeQuery",
    "KNNQuery",
    "PointQuery",
    "ResultHandle",
    "InlineExecutor",
    "BatchExecutor",
    "ShardedExecutor",
    "BatchQueryEngine",
    "BatchStats",
    "INDEX_REGISTRY",
    "available_indexes",
    "make_index",
    "JoinSession",
    "SelfJoinSpec",
    "PairJoinSpec",
    "DistanceJoinSpec",
    "SynapseJoinSpec",
    "JoinStats",
    "JoinStrategy",
    "JOIN_REGISTRY",
    "available_join_strategies",
    "make_join_strategy",
    "ShardedJoinExecutor",
    "Synapse",
    "SynapseDetector",
    "IteratedSelfJoin",
    "ContinuousSession",
    "ContinuousStats",
    "ContinuousRangeQuery",
    "ContinuousKNNQuery",
    "ContinuousJoinSpec",
    "Subscription",
    "Delta",
    "Insert",
    "Delete",
    "ContinuousServing",
    "DeltaStream",
    "AsyncExecutor",
    "FlushPolicy",
    "ServingSession",
    "WorkerPool",
    "default_pool",
    "shutdown_default_pool",
    "MemoryBudget",
    "SpillManager",
    "external_bulk_load",
    "pbsm_working_set_bytes",
    "LinearScan",
    "RTree",
    "RStarTree",
    "RPlusTree",
    "DiskRTree",
    "CRTree",
    "KDTree",
    "QuadTree",
    "Octree",
    "LooseOctree",
    "UniformGrid",
    "MultiResolutionGrid",
    "SpatialLSH",
    "AdaptiveSimulationIndex",
    "GridCostModel",
    "optimal_cell_size",
    "MaintenanceCosts",
    "UpdateEconomics",
    "SpillTree",
    "SplitRule",
    "SPLIT_RULES",
    "available_split_rules",
    "make_split_rule",
    "LURTree",
    "BufferedRTree",
    "BottomUpRTree",
    "ThrowawayIndex",
    "TPRIndex",
    "Mesh",
    "DLS",
    "Octopus",
    "FLAT",
    "TimeSteppedSimulation",
    "MetricsRegistry",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "global_registry",
    "render_json",
    "render_prometheus",
    "span",
    "tracing_enabled",
    "__version__",
]
