"""FLAT for in-memory, non-mesh datasets (after Tauheed et al., ICDE'12).

"For datasets other than meshes, disk-based FLAT adds connectivity
(neighborhood) information to the dataset and then uses it to execute spatial
queries (similar to DLS or OCTOPUS).  The same idea can potentially also be
used in memory."

The connectivity FLAT adds here is a **tile graph**: space is cut into
uniform tiles, each element is registered in the tiles it overlaps, and tiles
link to their face neighbours.  A query then needs only

1. a *seed*: one tile intersecting the query, found through a deliberately
   tiny and rarely-updated seed index (a coarse sample of occupied tiles);
2. a *crawl*: breadth-first over tile links, restricted to tiles
   intersecting the query — complete because the tiles overlapping an AABB
   always form a face-connected set.

Updates under motion are grid-like and local (an element re-registers only
when it changes tiles); the seed index tolerates staleness by falling back to
arithmetic tile addressing when a stale seed misses, so it "only needs to be
updated infrequently".
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geometry.aabb import AABB, union_all
from repro.indexes.base import Item, KNNResult, SpatialIndex, validate_items
from repro.instrumentation.counters import Counters

_BOX_BYTES_PER_DIM = 16

TileKey = tuple[int, ...]


class FLAT(SpatialIndex):
    """Tile-connectivity index with seed-and-crawl queries.

    Parameters
    ----------
    universe:
        Indexed region (derived from the first bulk load when omitted).
    tile_size:
        Tile side length; the usual grid-resolution trade-off applies.
    seed_sample:
        Number of occupied tiles kept in the (infrequently refreshed) seed
        index.
    """

    def __init__(
        self,
        universe: AABB | None = None,
        tile_size: float | None = None,
        seed_sample: int = 64,
        counters: Counters | None = None,
    ) -> None:
        super().__init__(counters)
        if tile_size is not None and tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {tile_size}")
        if seed_sample < 1:
            raise ValueError(f"seed_sample must be >= 1, got {seed_sample}")
        self._universe = universe
        self._tile_size = tile_size
        self.seed_sample = seed_sample
        self._tiles: dict[TileKey, dict[int, AABB]] = {}
        self._tiles_of: dict[int, tuple[TileKey, ...]] = {}
        self._boxes: dict[int, AABB] = {}
        self._seed_tiles: list[TileKey] = []

    # -- configuration -------------------------------------------------------------

    def _ensure_configured(self, items: list[Item]) -> None:
        if self._universe is None:
            hull = union_all(box for _, box in items)
            self._universe = hull.expanded(max(hull.margin() * 0.005, 1e-9))
        if self._tile_size is None:
            from repro.core.resolution import default_cell_size

            self._tile_size = default_cell_size(
                max(len(items), 1), self._universe, target_per_cell=4.0
            )

    def refresh_seeds(self) -> None:
        """Resample the seed index (the infrequent maintenance)."""
        occupied = [key for key, bucket in self._tiles.items() if bucket]
        stride = max(1, len(occupied) // self.seed_sample)
        self._seed_tiles = occupied[::stride][: self.seed_sample]

    # -- maintenance ------------------------------------------------------------------

    def bulk_load(self, items: Iterable[Item]) -> None:
        materialized = validate_items(items)
        self._tiles = {}
        self._tiles_of = {}
        self._boxes = {}
        if not materialized:
            self._seed_tiles = []
            return
        self._ensure_configured(materialized)
        for eid, box in materialized:
            self._place(eid, box)
        self.refresh_seeds()

    def insert(self, eid: int, box: AABB) -> None:
        if eid in self._boxes:
            raise ValueError(f"element {eid} already present")
        self._ensure_configured([(eid, box)])
        self._place(eid, box)
        self.counters.inserts += 1

    def delete(self, eid: int, box: AABB) -> None:
        if eid not in self._boxes or self._boxes[eid] != box:
            raise KeyError(f"element {eid} with box {box} not in index")
        self._unplace(eid)
        self.counters.deletes += 1

    def update(self, eid: int, old_box: AABB, new_box: AABB) -> None:
        """Local re-registration only when the tile set changes."""
        if eid not in self._boxes or self._boxes[eid] != old_box:
            raise KeyError(f"element {eid} with box {old_box} not in index")
        new_tiles = tuple(self._covered_tiles(new_box))
        if new_tiles == self._tiles_of[eid]:
            self._boxes[eid] = new_box
            for key in new_tiles:
                self._tiles[key][eid] = new_box
        else:
            self._unplace(eid)
            self._place(eid, new_box)
        self.counters.updates += 1

    # -- queries -------------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        """Seed-and-crawl over the tile graph."""
        if not self._boxes:
            return []
        # Tiles tile the *universe*; elements beyond it sit clamped in edge
        # tiles.  Crawl therefore follows the query clipped (projected) onto
        # the universe, while elements are tested against the original box.
        assert self._universe is not None
        tile_query = box.intersection(self._universe)
        if tile_query is None:
            lo = [min(max(c, a), b) for c, a, b in zip(box.lo, self._universe.lo, self._universe.hi)]
            hi = [min(max(c, a), b) for c, a, b in zip(box.hi, self._universe.lo, self._universe.hi)]
            tile_query = AABB(lo, hi)
        seed = self._find_seed(tile_query)
        if seed is None:
            return []
        counters = self.counters
        dims = box.dims
        seen_tiles = {seed}
        stack = [seed]
        results: list[int] = []
        reported: set[int] = set()
        while stack:
            key = stack.pop()
            counters.cells_probed += 1
            bucket = self._tiles.get(key)
            if bucket:
                counters.bytes_touched += len(bucket) * (dims * _BOX_BYTES_PER_DIM + 8)
                for eid, elem_box in bucket.items():
                    if eid in reported:
                        continue
                    counters.elem_tests += 1
                    if elem_box.intersects(box):
                        reported.add(eid)
                        results.append(eid)
            for neighbor in self._tile_neighbors(key):
                if neighbor in seen_tiles:
                    continue
                counters.pointer_follows += 1
                if self._tile_box(neighbor).intersects(tile_query):
                    seen_tiles.add(neighbor)
                    stack.append(neighbor)
        return results

    def knn(self, point: Sequence[float], k: int) -> KNNResult:
        """Expanding-probe kNN over the tile graph (grid-style doubling)."""
        if k <= 0 or not self._boxes or self._universe is None:
            return []
        assert self._tile_size is not None
        import heapq

        radius = self._tile_size
        limit = self._universe.max_distance_to_point(point) + self._tile_size
        while True:
            probe = AABB.from_center(tuple(point), radius)
            candidates = self.range_query(probe)
            scored = [
                (self._boxes[eid].min_distance_to_point(point), eid) for eid in candidates
            ]
            confirmed = [(d, e) for d, e in scored if d <= radius]
            if len(confirmed) >= k:
                return heapq.nsmallest(k, scored)
            if radius > limit:
                scored.sort()
                return scored[:k]
            radius *= 2.0

    def __len__(self) -> int:
        return len(self._boxes)

    # -- internals --------------------------------------------------------------------------

    def _tile_coord(self, value: float, axis: int) -> int:
        assert self._universe is not None and self._tile_size is not None
        raw = int(math.floor((value - self._universe.lo[axis]) / self._tile_size))
        top = int(math.ceil(self._universe.extents()[axis] / self._tile_size)) - 1
        return max(0, min(raw, max(top, 0)))

    def _covered_tiles(self, box: AABB) -> Iterable[TileKey]:
        dims = box.dims
        lo = [self._tile_coord(box.lo[axis], axis) for axis in range(dims)]
        hi = [self._tile_coord(box.hi[axis], axis) for axis in range(dims)]
        return _iter_window(lo, hi)

    def _tile_box(self, key: TileKey) -> AABB:
        assert self._universe is not None and self._tile_size is not None
        lo = [self._universe.lo[axis] + key[axis] * self._tile_size for axis in range(len(key))]
        hi = [c + self._tile_size for c in lo]
        return AABB(lo, hi)

    def _tile_neighbors(self, key: TileKey) -> Iterable[TileKey]:
        for axis in range(len(key)):
            for delta in (-1, 1):
                coord = key[axis] + delta
                if coord < 0:
                    continue
                yield key[:axis] + (coord,) + key[axis + 1 :]

    def _find_seed(self, box: AABB) -> TileKey | None:
        """A tile intersecting the query: try the (possibly stale) seed
        index first, then arithmetic addressing of the query centre."""
        for key in self._seed_tiles:
            self.counters.hash_probes += 1
            if self._tile_box(key).intersects(box):
                return key
        center = box.center()
        return tuple(self._tile_coord(center[axis], axis) for axis in range(box.dims))

    def _place(self, eid: int, box: AABB) -> None:
        keys = tuple(self._covered_tiles(box))
        for key in keys:
            self._tiles.setdefault(key, {})[eid] = box
        self._boxes[eid] = box
        self._tiles_of[eid] = keys

    def _unplace(self, eid: int) -> None:
        for key in self._tiles_of.pop(eid):
            bucket = self._tiles.get(key)
            if bucket is not None:
                bucket.pop(eid, None)
                if not bucket:
                    del self._tiles[key]
        del self._boxes[eid]


def _iter_window(lo: list[int], hi: list[int]) -> Iterable[TileKey]:
    if len(lo) == 1:
        for i in range(lo[0], hi[0] + 1):
            yield (i,)
        return
    for i in range(lo[0], hi[0] + 1):
        for tail in _iter_window(lo[1:], hi[1:]):
            yield (i, *tail)
