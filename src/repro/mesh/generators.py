"""Structured tetrahedral mesh generators (convex, and concave via carving).

Each unit cube of an ``nx × ny × nz`` grid is split into six tetrahedra with
the Kuhn (Freudenthal) decomposition — one tet per permutation of the axes,
marching from the cube's low corner to its high corner.  Kuhn subdivision is
face-compatible across neighbouring cubes, so the resulting mesh is a proper
conforming tetrahedralization with full face adjacency.

:func:`carve_hole` removes the cells inside a region, producing the concave
("mesh with holes") cases where DLS's single directed walk gets stuck and
OCTOPUS's multi-seed strategy is required.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.geometry.aabb import AABB
from repro.mesh.connectivity import Mesh


def structured_tet_mesh(
    nx: int,
    ny: int,
    nz: int,
    spacing: float = 1.0,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> Mesh:
    """A conforming tet mesh of an ``nx × ny × nz`` box, 6 tets per cube."""
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")

    def vid(i: int, j: int, k: int) -> int:
        return (i * (ny + 1) + j) * (nz + 1) + k

    points = np.empty(((nx + 1) * (ny + 1) * (nz + 1), 3), dtype=float)
    for i in range(nx + 1):
        for j in range(ny + 1):
            for k in range(nz + 1):
                points[vid(i, j, k)] = (
                    origin[0] + i * spacing,
                    origin[1] + j * spacing,
                    origin[2] + k * spacing,
                )

    unit_steps = {0: (1, 0, 0), 1: (0, 1, 0), 2: (0, 0, 1)}
    cells: list[tuple[int, ...]] = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                base = (i, j, k)
                for order in permutations(range(3)):
                    corner = list(base)
                    tet = [vid(*corner)]
                    for axis in order:
                        step = unit_steps[axis]
                        corner = [c + s for c, s in zip(corner, step)]
                        tet.append(vid(*corner))
                    cells.append(tuple(tet))
    return Mesh(points, cells)


def carve_hole(mesh: Mesh, hole: AABB) -> Mesh:
    """A new mesh without the cells whose centroid falls inside ``hole``.

    Vertex set is compacted; adjacency is rebuilt.  Carving through the full
    depth of a mesh produces the concave topology that defeats single-seed
    directed walks.
    """
    keep = [cell for cell in mesh.cells if not hole.contains_point(mesh.centroid(cell.cid))]
    if not keep:
        raise ValueError("hole swallows the entire mesh")
    used_vertices = sorted({v for cell in keep for v in cell.vertices})
    remap = {old: new for new, old in enumerate(used_vertices)}
    points = mesh.points[used_vertices]
    cells = [tuple(remap[v] for v in cell.vertices) for cell in keep]
    return Mesh(points, cells)
