"""Unstructured mesh representation with face adjacency.

Simulation meshes (finite-element tetrahedralizations, the paper's
earthquake/material models) are graphs as much as geometries: each cell knows
its face neighbours, and DLS/OCTOPUS exploit that connectivity instead of a
separate index.  The mesh is deliberately mutable — :meth:`Mesh.move_vertex`
lets simulations deform it in place, after which cell geometry accessors
reflect the new state with **no index maintenance at all**, which is the
entire point of the dataset-as-index family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.aabb import AABB


@dataclass(frozen=True)
class MeshCell:
    """A mesh cell: an id and the ids of its vertices (4 for a tet)."""

    cid: int
    vertices: tuple[int, ...]


class Mesh:
    """Cells over shared vertices, with face-adjacency precomputed.

    Parameters
    ----------
    points:
        Vertex coordinates, shape (n_vertices, dims).
    cells:
        Vertex-id tuples, one per cell.  Two cells are neighbours when they
        share a full face (``len(vertices) - 1`` common vertices).
    """

    def __init__(self, points: np.ndarray, cells: Sequence[tuple[int, ...]]) -> None:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be a (n, dims) array")
        self.points = points
        self.cells: list[MeshCell] = [
            MeshCell(cid, tuple(vertices)) for cid, vertices in enumerate(cells)
        ]
        self._adjacency: list[list[int]] = [[] for _ in self.cells]
        self._build_adjacency()

    def _build_adjacency(self) -> None:
        """Link cells sharing a face (a size |cell|-1 vertex subset)."""
        face_owner: dict[tuple[int, ...], int] = {}
        for cell in self.cells:
            arity = len(cell.vertices)
            for drop in range(arity):
                face = tuple(sorted(v for i, v in enumerate(cell.vertices) if i != drop))
                other = face_owner.pop(face, None)
                if other is None:
                    face_owner[face] = cell.cid
                else:
                    self._adjacency[cell.cid].append(other)
                    self._adjacency[other].append(cell.cid)
        # Faces still in face_owner are boundary faces.
        self._boundary: set[int] = {cid for cid in (face_owner.values())}

    # -- graph views ------------------------------------------------------------

    def neighbors(self, cid: int) -> list[int]:
        return self._adjacency[cid]

    @property
    def boundary_cells(self) -> list[int]:
        """Cells owning at least one unshared (surface) face."""
        return sorted(self._boundary)

    def __len__(self) -> int:
        return len(self.cells)

    # -- geometry views -----------------------------------------------------------

    def cell_points(self, cid: int) -> np.ndarray:
        return self.points[list(self.cells[cid].vertices)]

    def centroid(self, cid: int) -> tuple[float, ...]:
        return tuple(self.cell_points(cid).mean(axis=0))

    def bounds(self, cid: int) -> AABB:
        pts = self.cell_points(cid)
        return AABB(pts.min(axis=0), pts.max(axis=0))

    def hull(self) -> AABB:
        return AABB(self.points.min(axis=0), self.points.max(axis=0))

    # -- mutation (simulation deformation) -------------------------------------------

    def move_vertex(self, vid: int, delta: Sequence[float]) -> None:
        """Displace one vertex; adjacent cell geometry updates implicitly."""
        self.points[vid] += np.asarray(delta, dtype=float)

    def jitter(self, sigma: float, rng: np.random.Generator) -> None:
        """Plasticity-style motion: every vertex moves a little."""
        self.points += rng.normal(0.0, sigma, size=self.points.shape)

    # -- oracle -------------------------------------------------------------------------

    def scan_range(self, box: AABB) -> list[int]:
        """Brute-force range query over cell bounds (test oracle)."""
        return [cell.cid for cell in self.cells if self.bounds(cell.cid).intersects(box)]

    def connected_components(self) -> int:
        """Number of adjacency components (sanity checks on carved meshes)."""
        seen: set[int] = set()
        components = 0
        for start in range(len(self.cells)):
            if start in seen:
                continue
            components += 1
            stack = [start]
            seen.add(start)
            while stack:
                current = stack.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        return components
