"""DLS — Directed Local Search (Papadomanolakis et al., SIGMOD'06).

"DLS uses an approximate index as well as the mesh connectivity to execute
range queries: the approximate index (which only needs to be updated
infrequently) is used to find a start point near the query range and the mesh
connectivity is used to a) find the query range and b) to find all results in
the range.  DLS, however, only works for convex meshes (without holes)."

Implementation:

* the **approximate index** is a coarse uniform bucket grid holding one
  representative cell id per bucket, built once and refreshed only on demand
  (:meth:`DLS.refresh_seeds`) — deliberately allowed to go stale under mesh
  deformation;
* a query picks the nearest seeded bucket, **directed-walks** the adjacency
  graph greedily toward the query centre, then **floods** the connected
  region of intersecting cells.

On concave meshes the greedy walk can strand in a local minimum next to a
hole; :meth:`DLS.range_query` then raises :class:`WalkStuckError` rather than
silently returning partial results (OCTOPUS is the fix — see
:mod:`repro.mesh.octopus`).
"""

from __future__ import annotations

import math

from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.mesh.connectivity import Mesh


class WalkStuckError(RuntimeError):
    """The directed walk reached a local minimum outside the query range
    (the concave-mesh failure mode DLS is documented not to handle)."""


class DLS:
    """Directed local search over a mesh.

    Parameters
    ----------
    mesh:
        The mesh (queried through its live geometry — no copies).
    seed_resolution:
        Buckets per axis of the approximate seed grid.
    """

    def __init__(
        self,
        mesh: Mesh,
        seed_resolution: int = 8,
        counters: Counters | None = None,
    ) -> None:
        if seed_resolution < 1:
            raise ValueError(f"seed_resolution must be >= 1, got {seed_resolution}")
        self.mesh = mesh
        self.seed_resolution = seed_resolution
        self.counters = counters if counters is not None else Counters()
        self._seeds: dict[tuple[int, ...], int] = {}
        self._seed_hull: AABB | None = None
        self.refresh_seeds()

    # -- the approximate index ----------------------------------------------------

    def refresh_seeds(self) -> None:
        """Rebuild the coarse seed grid ("updated infrequently")."""
        self._seed_hull = self.mesh.hull()
        self._seeds = {}
        for cell in self.mesh.cells:
            key = self._bucket(self.mesh.centroid(cell.cid))
            # First cell wins: one representative per bucket is enough.
            self._seeds.setdefault(key, cell.cid)

    def _bucket(self, point: tuple[float, ...]) -> tuple[int, ...]:
        assert self._seed_hull is not None
        hull = self._seed_hull
        key = []
        for axis in range(hull.dims):
            extent = hull.hi[axis] - hull.lo[axis]
            if extent <= 0.0:
                key.append(0)
                continue
            idx = int((point[axis] - hull.lo[axis]) / extent * self.seed_resolution)
            key.append(max(0, min(self.seed_resolution - 1, idx)))
        return tuple(key)

    def _seed_for(self, point: tuple[float, ...]) -> int:
        """Nearest seeded bucket's representative (ring search outward)."""
        home = self._bucket(point)
        if home in self._seeds:
            return self._seeds[home]
        for radius in range(1, self.seed_resolution + 1):
            best = None
            for key, cid in self._seeds.items():
                self.counters.hash_probes += 1
                if max(abs(a - b) for a, b in zip(key, home)) <= radius:
                    best = cid
                    break
            if best is not None:
                return best
        # Mesh is non-empty by construction, so some seed always exists.
        return next(iter(self._seeds.values()))

    # -- query ------------------------------------------------------------------------

    def range_query(self, box: AABB) -> list[int]:
        """All cell ids whose bounds intersect ``box``.

        Raises :class:`WalkStuckError` when the directed walk cannot reach
        the query region (concave mesh), and returns ``[]`` when the walk
        terminates *at* the query region but no cell intersects (query in
        empty space outside the mesh).
        """
        start = self._walk_to(box, self._seed_for(box.center()))
        if start is None:
            return []
        return self._flood(box, start)

    # -- internals -----------------------------------------------------------------------

    def _walk_to(self, box: AABB, start: int) -> int | None:
        """Greedy descent by centroid distance to the query centre."""
        mesh = self.mesh
        target = box.center()
        current = start
        current_dist = _distance(mesh.centroid(current), target)
        visited = {current}
        while True:
            self.counters.elem_tests += 1
            if mesh.bounds(current).intersects(box):
                return current
            best = None
            best_dist = current_dist
            for neighbor in mesh.neighbors(current):
                self.counters.pointer_follows += 1
                if neighbor in visited:
                    continue
                dist = _distance(mesh.centroid(neighbor), target)
                if dist < best_dist:
                    best = neighbor
                    best_dist = dist
            if best is None:
                return self._local_minimum_fallback(box, current)
            visited.add(best)
            current = best
            current_dist = best_dist

    def _local_minimum_fallback(self, box: AABB, current: int) -> int | None:
        """Resolve a stranded walk.

        The walk stops at the cell whose centroid is locally nearest the
        query centre.  Queries clipping the mesh edge-on can still intersect
        *other* nearby cells, so we breadth-search the neighbourhood within
        an inflated probe box.  Finding nothing close by means either the
        query misses the mesh (empty result) or a hole blocked the path —
        the documented convex-only limitation, reported loudly.
        """
        mesh = self.mesh
        slack = _walk_slack(mesh, current)
        gap = mesh.bounds(current).min_distance_to_point(box.center())
        probe = box.expanded(gap + slack)
        stack = [current]
        seen = {current}
        while stack:
            cid = stack.pop()
            self.counters.elem_tests += 1
            if mesh.bounds(cid).intersects(box):
                return cid
            for neighbor in mesh.neighbors(cid):
                if neighbor in seen:
                    continue
                self.counters.pointer_follows += 1
                if mesh.bounds(neighbor).intersects(probe):
                    seen.add(neighbor)
                    stack.append(neighbor)
        if gap <= slack or not self.mesh.hull().intersects(box):
            # Either we arrived next to the query, or the query misses the
            # mesh hull entirely — a legitimately empty result.
            return None
        raise WalkStuckError(
            f"directed walk stranded at cell {current}, "
            f"{gap:.3g} away from the query; mesh is likely concave — use Octopus"
        )

    def _flood(self, box: AABB, start: int) -> list[int]:
        """Collect the connected region of cells intersecting ``box``."""
        mesh = self.mesh
        results = []
        stack = [start]
        seen = {start}
        while stack:
            cid = stack.pop()
            results.append(cid)
            for neighbor in mesh.neighbors(cid):
                if neighbor in seen:
                    continue
                self.counters.elem_tests += 1
                if mesh.bounds(neighbor).intersects(box):
                    seen.add(neighbor)
                    stack.append(neighbor)
        return results


def _distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def _walk_slack(mesh: Mesh, cid: int) -> float:
    """How close counts as 'arrived': a couple of local cell diameters."""
    bounds = mesh.bounds(cid)
    return 2.0 * math.sqrt(sum(e * e for e in bounds.extents()))
