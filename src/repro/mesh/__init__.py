"""Dataset-as-index approaches: DLS, OCTOPUS and FLAT (§4.3).

"A first research direction is to use indexes that predominantly depend on
the dataset itself for query execution.  The dataset is updated by the
simulation application anyway and is always up to date."

* :class:`~repro.mesh.connectivity.Mesh` — unstructured tetrahedral meshes
  with face adjacency, the substrate DLS/OCTOPUS walk on;
* :class:`~repro.mesh.dls.DLS` — approximate seed index + directed walk +
  connectivity flood; complete on **convex** meshes;
* :class:`~repro.mesh.octopus.Octopus` — in-memory, multiple surface seeds,
  handles **concave** meshes;
* :class:`~repro.mesh.flat.FLAT` — connectivity links added to non-mesh
  datasets (tile graph + small seed index), the in-memory transfer the paper
  proposes ("The same idea can potentially also be used in memory").

Mesh generators live in :mod:`repro.mesh.generators` (structured tet meshes,
convex and with carved holes).
"""

from repro.mesh.connectivity import Mesh, MeshCell
from repro.mesh.generators import structured_tet_mesh, carve_hole
from repro.mesh.dls import DLS
from repro.mesh.octopus import Octopus
from repro.mesh.flat import FLAT

__all__ = [
    "Mesh",
    "MeshCell",
    "structured_tet_mesh",
    "carve_hole",
    "DLS",
    "Octopus",
    "FLAT",
]
