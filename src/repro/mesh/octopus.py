"""OCTOPUS (Tauheed, Heinis, Ailamaki — ICDE'14): mesh queries in memory,
concave meshes included.

"OCTOPUS takes the DLS ideas into memory but also supports concave meshes.
To ensure that query execution still retrieves the entire range query result
in face of concave meshes, OCTOPUS takes as start point several elements on
the surface."

Strategy implemented here:

* seeds are **surface (boundary) cells** — cheap to enumerate from the mesh
  itself, no auxiliary structure to maintain under deformation;
* a query launches directed walks from the nearest surface seeds in turn;
  walks blocked by a hole simply fail over to the next seed (walks from
  enough directions cannot all be blocked by the same hole);
* every walk that reaches the query region floods it; flooding from multiple
  entry points also covers query regions the holes disconnect — the case a
  single-start flood provably misses.
"""

from __future__ import annotations

import math

from repro.geometry.aabb import AABB
from repro.instrumentation.counters import Counters
from repro.mesh.connectivity import Mesh


class Octopus:
    """Multi-surface-seed directed search over (possibly concave) meshes.

    Parameters
    ----------
    mesh:
        The mesh; queried through live geometry.
    max_seeds:
        Upper bound on surface seeds tried per query.  More seeds raise the
        cost floor but harden against adversarial hole layouts; 8 covers
        every carved benchmark mesh.
    """

    def __init__(
        self,
        mesh: Mesh,
        max_seeds: int = 8,
        counters: Counters | None = None,
    ) -> None:
        if max_seeds < 1:
            raise ValueError(f"max_seeds must be >= 1, got {max_seeds}")
        self.mesh = mesh
        self.max_seeds = max_seeds
        self.counters = counters if counters is not None else Counters()
        self._surface = mesh.boundary_cells

    def range_query(self, box: AABB) -> list[int]:
        """All cell ids intersecting ``box``, concave meshes included."""
        mesh = self.mesh
        target = box.center()
        seeds = sorted(
            self._surface,
            key=lambda cid: _distance(mesh.centroid(cid), target),
        )[: self.max_seeds]

        results: set[int] = set()
        flooded: set[int] = set()
        for seed in seeds:
            entry = self._walk(box, seed)
            if entry is None or entry in flooded:
                continue
            self._flood(box, entry, results, flooded)
        return sorted(results)

    # -- internals ---------------------------------------------------------------

    def _walk(self, box: AABB, start: int) -> int | None:
        """Greedy walk toward the query centre; None when blocked or arrived
        at a non-intersecting minimum."""
        mesh = self.mesh
        target = box.center()
        current = start
        current_dist = _distance(mesh.centroid(current), target)
        visited = {current}
        while True:
            self.counters.elem_tests += 1
            if mesh.bounds(current).intersects(box):
                return current
            best = None
            best_dist = current_dist
            for neighbor in mesh.neighbors(current):
                self.counters.pointer_follows += 1
                if neighbor in visited:
                    continue
                dist = _distance(mesh.centroid(neighbor), target)
                if dist < best_dist:
                    best = neighbor
                    best_dist = dist
            if best is None:
                return self._nudge(box, current)
            visited.add(best)
            current = best
            current_dist = best_dist

    def _nudge(self, box: AABB, current: int) -> int | None:
        """Bounded neighbourhood search around a stranded walk (queries that
        clip the mesh edge-on intersect cells the greedy path skirts)."""
        mesh = self.mesh
        bounds = mesh.bounds(current)
        slack = 2.0 * math.sqrt(sum(e * e for e in bounds.extents()))
        gap = bounds.min_distance_to_point(box.center())
        probe = box.expanded(gap + slack)
        stack = [current]
        seen = {current}
        while stack:
            cid = stack.pop()
            self.counters.elem_tests += 1
            if mesh.bounds(cid).intersects(box):
                return cid
            for neighbor in mesh.neighbors(cid):
                if neighbor in seen:
                    continue
                self.counters.pointer_follows += 1
                if mesh.bounds(neighbor).intersects(probe):
                    seen.add(neighbor)
                    stack.append(neighbor)
        return None

    def _flood(self, box: AABB, start: int, results: set[int], flooded: set[int]) -> None:
        mesh = self.mesh
        stack = [start]
        flooded.add(start)
        while stack:
            cid = stack.pop()
            results.add(cid)
            for neighbor in mesh.neighbors(cid):
                if neighbor in flooded:
                    continue
                self.counters.elem_tests += 1
                if mesh.bounds(neighbor).intersects(box):
                    flooded.add(neighbor)
                    stack.append(neighbor)


def _distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
