"""Continuous-query values, tick updates and the delta vocabulary.

A continuous query is submitted **once** and answered **forever**: the
paper's plasticity workload runs the same range / nearest-neighbour /
synapse-join analyses against neurons that move every simulation step.
Instead of re-asking, a client subscribes a spec value to a
:class:`~repro.continuous.session.ContinuousSession` and receives, per
``tick(updates)``, an exact :class:`Delta` — what entered the result and
what left it — never a full result set.

This module is the value layer:

* the spec values (:class:`ContinuousRangeQuery`, :class:`ContinuousKNNQuery`,
  :class:`ContinuousJoinSpec`), mirroring the one-shot
  :class:`~repro.engine.session.Query` / :class:`~repro.joins.spec.JoinSpec`
  vocabulary;
* the update vocabulary — plain ``(eid, old_box, new_box)`` move tuples
  (the :data:`~repro.sim.models.Move` convention used everywhere else) plus
  :class:`Insert` / :class:`Delete` records for churn;
* :class:`TickBatch` — one tick's updates normalized into net moved /
  inserted / deleted maps, the unit every maintenance policy consumes;
* :class:`Delta` — the per-tick result change, exact by the oracle suite's
  definition: folding every delta into the initial result reproduces a full
  recompute at every tick.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, Union

from repro.geometry.aabb import AABB

_cqid_counter = itertools.count(1)


def _next_cqid() -> int:
    return next(_cqid_counter)


# -- spec values ---------------------------------------------------------------


@dataclass(frozen=True)
class ContinuousRangeQuery:
    """A standing range query: which elements intersect ``box`` right now.

    The result is a set of element ids; deltas carry ids entering and
    leaving the box as elements move, appear and disappear.
    """

    box: AABB
    tag: Any = None
    cqid: int = field(default_factory=_next_cqid, compare=False)

    kind = "range"


@dataclass(frozen=True)
class ContinuousKNNQuery:
    """A standing k-nearest-neighbour query under the ``(distance, id)``
    deterministic tie-break contract shared with the one-shot engine.

    The subscription's ``current`` is the ordered ``[(distance, eid), ...]``
    list; deltas carry *membership* changes (the set of eids entering and
    leaving the top-k).  Distances of surviving members are exact on every
    tick: member motion is patched in place while the distance slack to the
    (k+1)-th neighbor proves the membership unchanged, and only a slack
    violation (or an outsider reaching the k-th distance) forces a
    recompute.
    """

    point: tuple[float, ...]
    k: int
    tag: Any = None
    cqid: int = field(default_factory=_next_cqid, compare=False)

    kind = "knn"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "point", tuple(float(c) for c in self.point))


@dataclass(frozen=True)
class ContinuousJoinSpec:
    """A standing self-join over the session's tracked elements.

    ``epsilon=0`` is the collision join (boxes intersect); ``epsilon > 0``
    is the within-ε distance join (box gap ≤ ε, the
    :class:`~repro.joins.spec.DistanceJoinSpec` predicate).  ``refine(a, b)``
    optionally sharpens the predicate on the ids — e.g. exact capsule gaps
    with same-neuron pairs excluded, the synapse-detection rule.  The refine
    callable must read *current* geometry (it is re-consulted whenever
    either endpoint changes).

    Results and deltas are unordered ``(low id, high id)`` pairs.
    """

    epsilon: float = 0.0
    refine: Callable[[int, int], bool] | None = None
    tag: Any = None
    cqid: int = field(default_factory=_next_cqid, compare=False)

    kind = "join"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")


ContinuousQuery = Union[ContinuousRangeQuery, ContinuousKNNQuery]
ContinuousSpec = Union[ContinuousRangeQuery, ContinuousKNNQuery, ContinuousJoinSpec]


# -- updates -------------------------------------------------------------------

Move = tuple[int, AABB, AABB]


@dataclass(frozen=True)
class Insert:
    """A new element appearing this tick (growth, in the paper's terms)."""

    eid: int
    box: AABB


@dataclass(frozen=True)
class Delete:
    """An element disappearing this tick (pruning / apoptosis)."""

    eid: int


Update = Union[Move, Insert, Delete]


@dataclass(frozen=True)
class TickBatch:
    """One tick's updates, normalized against the tick-start state.

    ``moved`` maps eid → ``(old_box, new_box)`` for elements present before
    and after the tick whose box changed; ``inserted`` maps eid → box for
    elements absent before; ``deleted`` maps eid → last box for elements
    absent after.  An element touched several times within one tick folds to
    its *net* effect (insert-then-move is an insert at the final box;
    move-then-delete is a delete), so every policy sees each eid at most
    once per tick.
    """

    moved: dict[int, tuple[AABB, AABB]]
    inserted: dict[int, AABB]
    deleted: dict[int, AABB]

    @property
    def is_empty(self) -> bool:
        return not (self.moved or self.inserted or self.deleted)

    @property
    def size(self) -> int:
        return len(self.moved) + len(self.inserted) + len(self.deleted)

    def affected_ids(self) -> set[int]:
        """Every eid whose membership or geometry changed this tick."""
        return set(self.moved) | set(self.inserted) | set(self.deleted)

    def moves(self) -> list[Move]:
        """The net motion as ``(eid, old, new)`` tuples (deterministic order)."""
        return [(eid, old, new) for eid, (old, new) in sorted(self.moved.items())]

    def mean_displacement(self) -> float:
        """Mean center displacement of moved elements (0.0 with no moves) —
        the planner's signal for predictive-index friendliness."""
        if not self.moved:
            return 0.0
        total = 0.0
        for old, new in self.moved.values():
            total += math.dist(old.center(), new.center())
        return total / len(self.moved)


def normalize_updates(
    updates: Iterable[Update], state: dict[int, AABB]
) -> TickBatch:
    """Fold a raw update sequence into a :class:`TickBatch`.

    ``state`` is the authoritative tick-start ``eid → box`` map; updates are
    validated against it in order (a move's ``old_box`` must match the
    element's current box, inserts must be fresh ids, deletes must exist),
    matching the strictness of every index's ``update`` contract.
    """
    moved: dict[int, tuple[AABB, AABB]] = {}
    inserted: dict[int, AABB] = {}
    deleted: dict[int, AABB] = {}

    def current_box(eid: int) -> AABB | None:
        if eid in inserted:
            return inserted[eid]
        if eid in moved:
            return moved[eid][1]
        if eid in deleted:
            return None
        return state.get(eid)

    for update in updates:
        if isinstance(update, Insert):
            eid, box = update.eid, update.box
            if current_box(eid) is not None:
                raise ValueError(f"insert of element {eid} already present")
            if eid in deleted:
                # delete-then-insert within one tick nets to a move.
                old = deleted.pop(eid)
                if old != box:
                    moved[eid] = (state[eid], box) if eid in state else (old, box)
                continue
            inserted[eid] = box
        elif isinstance(update, Delete):
            eid = update.eid
            box = current_box(eid)
            if box is None:
                raise KeyError(f"delete of unknown element {update.eid}")
            if eid in inserted:
                del inserted[eid]  # insert-then-delete nets to nothing
                continue
            moved.pop(eid, None)
            deleted[eid] = state[eid]
        else:
            eid, old_box, new_box = update
            have = current_box(eid)
            if have is None or have != old_box:
                raise KeyError(f"element {eid} with box {old_box} not tracked")
            if eid in inserted:
                inserted[eid] = new_box  # insert-then-move nets to one insert
                continue
            start = moved[eid][0] if eid in moved else state[eid]
            if start == new_box:
                moved.pop(eid, None)  # moved back: no net change
            else:
                moved[eid] = (start, new_box)
    return TickBatch(moved=moved, inserted=inserted, deleted=deleted)


# -- deltas --------------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """The exact change to one standing result over one tick.

    For range / kNN specs the elements are eids; for join specs they are
    ``(low id, high id)`` pairs.  ``added`` and ``removed`` are disjoint;
    an unchanged result yields an empty delta (and safe-region maintenance
    proves many of those without touching the index).
    """

    tick: int
    added: frozenset
    removed: frozenset

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def apply(self, current: set) -> set:
        """Fold this delta into a result set (the oracle-suite accumulator)."""
        if self.removed - current:
            raise ValueError(f"delta removes elements not in the result: {self.removed - current}")
        if self.added & current:
            raise ValueError(f"delta adds elements already in the result: {self.added & current}")
        return (current - self.removed) | self.added


def delta_between(tick: int, old: set, new: set) -> Delta:
    """The exact delta turning ``old`` into ``new``."""
    return Delta(tick=tick, added=frozenset(new - old), removed=frozenset(old - new))


def knn_ids(result: Sequence[tuple[float, int]]) -> set[int]:
    """Membership view of an ordered ``(distance, eid)`` kNN result."""
    return {eid for _, eid in result}
